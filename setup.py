"""Packaging for the repro library and its anonymization service.

``pip install -e .`` yields the importable ``repro`` package plus the
``repro-service`` and ``repro-experiments`` console scripts (the same front
ends as ``python -m repro.service`` / ``python -m repro.experiments.runner``).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single source of truth for the version: repro.__version__.
_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'^__version__ = "([^"]+)"', _INIT.read_text(), re.MULTILINE).group(1)

setup(
    name="repro-reconstruction-privacy",
    version=VERSION,
    description=(
        "Reproduction of 'Reconstruction Privacy: Enabling Statistical Learning' "
        "(EDBT 2015) with a strategy-first publishing pipeline and an "
        "anonymization-as-a-service front end"
    ),
    long_description=(
        "Implements the (lambda, delta)-reconstruction-privacy criterion, the "
        "SPS enforcement algorithm, chi-square generalisation, DP baselines, "
        "a strategy-first publishing pipeline (repro.publish), and a "
        "register-once/publish-many service (HTTP + CLI) whose backends "
        "delegate to the same strategy registry."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: the package ships inline type annotations.
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
        "networkx>=2.6",
    ],
    extras_require={
        # `pytest benchmarks/` (the paper-exhibit wrappers) needs the
        # pytest-benchmark plugin; the repro-bench CLI itself does not.
        "bench": ["pytest", "pytest-benchmark"],
        # The full test suite; hypothesis drives the differential property
        # harness pinning the delta engine's byte-identity contract
        # (tests/test_delta_properties.py skips itself when absent).
        "test": ["pytest", "hypothesis>=6"],
    },
    entry_points={
        "console_scripts": [
            "repro-service=repro.service.cli:main",
            "repro-experiments=repro.experiments.runner:main",
            "repro-bench=repro.bench.cli:main",
            "repro-stream=repro.stream.cli:main",
            "repro-lint=repro.lint.cli:main",
            "repro-delta=repro.delta.cli:main",
            "repro-serve=repro.serve.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "License :: OSI Approved :: MIT License",
        "Topic :: Security",
        "Topic :: Scientific/Engineering",
    ],
)
