"""Packaging for the repro library and its anonymization service.

``pip install -e .`` yields both the importable ``repro`` package and the
``repro-service`` console script (the same front end as
``python -m repro.service``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-reconstruction-privacy",
    version="1.1.0",
    description=(
        "Reproduction of 'Reconstruction Privacy: Enabling Statistical Learning' "
        "(EDBT 2015) with an anonymization-as-a-service front end"
    ),
    long_description=(
        "Implements the (lambda, delta)-reconstruction-privacy criterion, the "
        "SPS enforcement algorithm, chi-square generalisation, DP baselines, "
        "and a register-once/publish-many service (HTTP + CLI) with pluggable "
        "publisher backends."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
        "networkx>=2.6",
    ],
    entry_points={
        "console_scripts": [
            "repro-service=repro.service.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "License :: OSI Approved :: MIT License",
        "Topic :: Security",
        "Topic :: Scientific/Engineering",
    ],
)
