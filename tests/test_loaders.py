"""Tests for CSV loading and writing."""

import io

import pytest

from repro.dataset.loaders import infer_schema, read_csv, write_csv
from repro.dataset.schema import SchemaError


class TestInferSchema:
    def test_sensitive_column_moved_last(self):
        header = ["Income", "Job"]
        rows = [["high", "eng"], ["low", "artist"]]
        schema, reordered = infer_schema(header, rows, sensitive="Income")
        assert schema.sensitive_name == "Income"
        assert schema.public_names == ("Job",)
        assert reordered[0] == ["eng", "high"]

    def test_domains_collected_from_data(self):
        header = ["Job", "Income"]
        rows = [["eng", "high"], ["artist", "low"], ["eng", "low"]]
        schema, _ = infer_schema(header, rows, sensitive="Income")
        assert set(schema.public_attribute("Job").values) == {"eng", "artist"}
        assert set(schema.sensitive.values) == {"high", "low"}

    def test_missing_sensitive_column_rejected(self):
        with pytest.raises(SchemaError):
            infer_schema(["a", "b"], [["1", "2"]], sensitive="c")

    def test_ragged_rows_rejected(self):
        with pytest.raises(SchemaError):
            infer_schema(["a", "b"], [["1"]], sensitive="b")


class TestCsvRoundtrip:
    def test_write_then_read_preserves_counts(self, small_table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(small_table, path)
        loaded = read_csv(path, sensitive="Disease")
        assert len(loaded) == len(small_table)
        assert loaded.count({"Gender": "male", "Job": "eng"}, "d0") == 6
        assert loaded.count({"Job": "lawyer"}) == 3

    def test_read_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path, sensitive="Income")

    def test_custom_delimiter(self, small_table, tmp_path):
        path = tmp_path / "data.tsv"
        write_csv(small_table, path, delimiter="\t")
        loaded = read_csv(path, sensitive="Disease", delimiter="\t")
        assert len(loaded) == len(small_table)


class TestFileLikeSources:
    def test_read_from_stream(self):
        stream = io.StringIO("Job,Income\neng,high\nartist,low\n")
        table = read_csv(stream, sensitive="Income")
        assert len(table) == 2
        assert table.schema.sensitive_name == "Income"

    def test_stream_not_closed(self):
        stream = io.StringIO("Job,Income\neng,high\n")
        read_csv(stream, sensitive="Income")
        assert not stream.closed

    def test_empty_stream_rejected(self):
        with pytest.raises(SchemaError, match="empty"):
            read_csv(io.StringIO(""), sensitive="Income")

    def test_header_only_stream_rejected(self):
        with pytest.raises(SchemaError, match="no data rows"):
            read_csv(io.StringIO("Job,Income\n"), sensitive="Income")

    def test_header_only_file_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("Job,Income\n")
        with pytest.raises(SchemaError, match="no data rows"):
            read_csv(path, sensitive="Income")


class TestErrorMessagesNameTheSource:
    def test_header_only_error_names_the_path(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("Job,Income\n")
        with pytest.raises(SchemaError, match=str(path)):
            read_csv(path, sensitive="Income")

    def test_header_only_error_names_the_stream(self):
        with pytest.raises(SchemaError, match="csv stream"):
            read_csv(io.StringIO("Job,Income\n"), sensitive="Income")

    def test_named_stream_error_includes_its_name(self, tmp_path):
        path = tmp_path / "upload.csv"
        path.write_text("Job,Income\n")
        with path.open() as handle:  # open files carry a .name
            with pytest.raises(SchemaError, match="upload.csv"):
                read_csv(handle, sensitive="Income")

    def test_row_width_error_names_source_and_line(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("Job,Income\neng,high\nartist\n")
        with pytest.raises(SchemaError, match=rf"{path}, line 3"):
            read_csv(path, sensitive="Income")

    def test_missing_sensitive_error_names_source(self, tmp_path):
        path = tmp_path / "nosens.csv"
        path.write_text("Job,City\neng,Oslo\n")
        with pytest.raises(SchemaError, match=str(path)):
            read_csv(path, sensitive="Income")

    def test_utf8_bom_file_loads(self, tmp_path):
        path = tmp_path / "bom.csv"
        path.write_bytes("\ufeffJob,Income\neng,high\n".encode("utf-8"))
        table = read_csv(path, sensitive="Income")
        assert table.schema.public_names == ("Job",)

    def test_utf8_bom_stream_loads(self):
        table = read_csv(io.StringIO("\ufeffJob,Income\neng,high\n"), sensitive="Income")
        assert table.schema.public_names == ("Job",)


class TestFileLikeDestinations:
    def test_write_to_stream_roundtrips(self, small_table):
        stream = io.StringIO()
        write_csv(small_table, stream)
        stream.seek(0)
        loaded = read_csv(stream, sensitive="Disease")
        assert len(loaded) == len(small_table)
        assert loaded.count({"Gender": "male", "Job": "eng"}, "d0") == 6

    def test_stream_not_closed_after_write(self, small_table):
        stream = io.StringIO()
        write_csv(small_table, stream)
        assert not stream.closed

    def test_stream_write_matches_file_write(self, small_table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(small_table, path)
        stream = io.StringIO()
        write_csv(small_table, stream)
        assert stream.getvalue().splitlines() == path.read_text().splitlines()
