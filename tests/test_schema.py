"""Unit tests for repro.dataset.schema."""

import pytest

from repro.dataset.schema import Attribute, Schema, SchemaError


class TestAttribute:
    def test_encode_decode_roundtrip(self):
        attr = Attribute("Job", ("eng", "lawyer", "artist"))
        for i, value in enumerate(attr.values):
            assert attr.encode(value) == i
            assert attr.decode(i) == value

    def test_size(self):
        assert Attribute("A", ("x", "y")).size == 2

    def test_contains(self):
        attr = Attribute("A", ("x", "y"))
        assert "x" in attr
        assert "z" not in attr

    def test_unknown_value_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("A", ("x",)).encode("nope")

    def test_out_of_range_code_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("A", ("x", "y")).decode(2)

    def test_duplicate_values_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("A", ("x", "x"))

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("A", ())

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", ("x",))


class TestSchema:
    def test_basic_properties(self, disease_schema):
        assert disease_schema.public_names == ("Gender", "Job")
        assert disease_schema.sensitive_name == "Disease"
        assert disease_schema.sensitive_domain_size == 10
        assert disease_schema.attribute_names[-1] == "Disease"

    def test_public_attribute_lookup(self, disease_schema):
        assert disease_schema.public_attribute("Job").size == 3
        assert disease_schema.public_index("Job") == 1

    def test_unknown_public_attribute_rejected(self, disease_schema):
        with pytest.raises(SchemaError):
            disease_schema.public_attribute("Salary")
        with pytest.raises(SchemaError):
            disease_schema.public_index("Salary")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                public=(Attribute("X", ("a",)), Attribute("X", ("b",))),
                sensitive=Attribute("S", ("0", "1")),
            )

    def test_requires_public_attribute(self):
        with pytest.raises(SchemaError):
            Schema(public=(), sensitive=Attribute("S", ("0", "1")))

    def test_encode_decode_record_roundtrip(self, disease_schema):
        record = ("male", "lawyer", "d7")
        codes = disease_schema.encode_record(record)
        assert disease_schema.decode_record(codes) == record

    def test_encode_wrong_width_rejected(self, disease_schema):
        with pytest.raises(SchemaError):
            disease_schema.encode_record(("male", "eng"))

    def test_with_public_replaces_domains(self, disease_schema):
        merged = Attribute("Gender", ("any",))
        new = disease_schema.with_public((merged, disease_schema.public[1]))
        assert new.public_attribute("Gender").size == 1
        assert new.sensitive is disease_schema.sensitive
