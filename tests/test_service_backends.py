"""Tests for the service's pluggable backend registry and adapters."""

import numpy as np
import pytest

from repro.core.criterion import PrivacySpec
from repro.core.testing import audit_table
from repro.dataset.groups import personal_groups
from repro.service.backends import (
    AnonymizerBackend,
    available_backends,
    backend_descriptions,
    get_backend,
    register_backend,
)
from repro.service.registry import DatasetEntry, ServiceError

BUILTIN_BACKENDS = {"sps", "uniform", "dp-laplace", "dp-gaussian", "generalize+sps"}


@pytest.fixture()
def entry(skewed_binary_table) -> DatasetEntry:
    return DatasetEntry("skewed", skewed_binary_table)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert BUILTIN_BACKENDS <= set(available_backends())

    def test_unknown_backend_rejected(self):
        with pytest.raises(ServiceError, match="unknown backend"):
            get_backend("no-such-backend")

    def test_descriptions_expose_defaults(self):
        descriptions = backend_descriptions()
        assert descriptions["sps"]["lam"] == 0.3
        assert descriptions["dp-laplace"]["epsilon"] == 1.0

    def test_custom_backend_is_one_registration_away(self, entry):
        class IdentityBackend(AnonymizerBackend):
            name = "identity-test"
            defaults = {}

            def publish(self, entry, params, seed, chunk_size, max_workers):
                from repro.service.backends import BackendResult

                return BackendResult(published=entry.table, audit=None)

        try:
            register_backend(IdentityBackend())
            result = get_backend("identity-test").publish(entry, {}, 0, 256, 1)
            assert result.published == entry.table
            with pytest.raises(ServiceError, match="already registered"):
                register_backend(IdentityBackend())
        finally:
            from repro.service import backends as backends_module

            backends_module._BACKENDS.pop("identity-test", None)

    def test_unknown_parameter_rejected(self, entry):
        with pytest.raises(ServiceError, match="does not accept parameters"):
            get_backend("sps").publish(entry, {"typo": 1.0}, 0, 256, 1)


class TestSPSBackend:
    def test_matches_audit_and_preserves_keys(self, entry, skewed_binary_table):
        result = get_backend("sps").publish(entry, {}, seed=5, chunk_size=2, max_workers=1)
        original_keys = {g.key for g in personal_groups(skewed_binary_table)}
        published_keys = {g.key for g in personal_groups(result.published)}
        assert published_keys == original_keys
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
        reference = audit_table(skewed_binary_table, spec)
        assert result.audit.group_violation_rate == reference.group_violation_rate
        assert result.metadata["n_sampled_groups"] == len(reference.violating_groups)

    def test_deterministic_for_fixed_seed(self, entry):
        backend = get_backend("sps")
        a = backend.publish(entry, {}, seed=9, chunk_size=2, max_workers=1)
        b = backend.publish(entry, {}, seed=9, chunk_size=2, max_workers=1)
        assert np.array_equal(a.published.codes, b.published.codes)

    def test_uses_cached_group_index_on_second_publish(self, entry):
        backend = get_backend("sps")
        first = backend.publish(entry, {}, seed=1, chunk_size=64, max_workers=1)
        second = backend.publish(entry, {}, seed=2, chunk_size=64, max_workers=1)
        assert not first.group_index_cached
        assert second.group_index_cached
        assert second.group_index_seconds == 0.0


class TestUniformBackend:
    def test_preserves_size_and_public_columns(self, entry, skewed_binary_table):
        result = get_backend("uniform").publish(entry, {}, seed=3, chunk_size=256, max_workers=1)
        assert len(result.published) == len(skewed_binary_table)
        assert np.array_equal(
            result.published.public_codes, skewed_binary_table.public_codes
        )


class TestDPBackends:
    @pytest.mark.parametrize("name", ["dp-laplace", "dp-gaussian"])
    def test_publishes_valid_table_with_metadata(self, name, entry, skewed_binary_table):
        result = get_backend(name).publish(entry, {}, seed=4, chunk_size=2, max_workers=1)
        assert result.published.schema == skewed_binary_table.schema
        assert result.audit is None
        assert result.metadata["noise_variance"] > 0
        # Published group keys must be a subset of the original NA keys.
        original_keys = {g.key for g in personal_groups(skewed_binary_table)}
        published_keys = {g.key for g in personal_groups(result.published)}
        assert published_keys <= original_keys

    def test_low_noise_preserves_histograms_approximately(self, entry, skewed_binary_table):
        result = get_backend("dp-laplace").publish(
            entry, {"epsilon": 100.0}, seed=4, chunk_size=2, max_workers=1
        )
        assert abs(len(result.published) - len(skewed_binary_table)) <= 5


class TestGeneralizeSPSBackend:
    def test_reports_domain_collapse(self, entry):
        result = get_backend("generalize+sps").publish(
            entry, {}, seed=6, chunk_size=2, max_workers=1
        )
        domains = result.metadata["generalized_domains"]
        assert domains["Group"]["before"] == 3
        assert domains["Group"]["after"] <= 3
        assert result.audit is not None
