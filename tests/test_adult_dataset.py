"""Tests for the synthetic ADULT generator and its paper calibration."""

import numpy as np
import pytest

from repro.dataset.adult import (
    ADULT_SIZE,
    EXAMPLE_GROUP,
    EXAMPLE_GROUP_HIGH_INCOME,
    EXAMPLE_GROUP_SIZE,
    HIGH_INCOME_RATE,
    adult_schema,
    generate_adult,
    high_income_probability,
)


@pytest.fixture(scope="module")
def adult_small():
    return generate_adult(12_000, seed=20150323)


class TestSchema:
    def test_domain_sizes_match_the_paper(self):
        schema = adult_schema()
        assert schema.public_attribute("Education").size == 16
        assert schema.public_attribute("Occupation").size == 14
        assert schema.public_attribute("Race").size == 5
        assert schema.public_attribute("Gender").size == 2
        assert schema.sensitive.size == 2

    def test_default_size_matches_the_paper(self):
        assert ADULT_SIZE == 45_222


class TestGenerator:
    def test_requested_size(self, adult_small):
        assert len(adult_small) == 12_000

    def test_reproducible(self):
        a = generate_adult(2_000, seed=5)
        b = generate_adult(2_000, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_adult(2_000, seed=5)
        b = generate_adult(2_000, seed=6)
        assert a != b

    def test_high_income_rate_close_to_paper(self, adult_small):
        rate = adult_small.sensitive_frequencies()[1]
        assert rate == pytest.approx(HIGH_INCOME_RATE, abs=0.03)

    def test_example_group_planted_exactly(self, adult_small):
        count = adult_small.count(EXAMPLE_GROUP)
        high = adult_small.count(EXAMPLE_GROUP, ">50K")
        assert count == EXAMPLE_GROUP_SIZE
        assert high == EXAMPLE_GROUP_HIGH_INCOME
        assert high / count == pytest.approx(0.8383, abs=0.001)

    def test_plant_can_be_disabled(self):
        table = generate_adult(5_000, seed=0, plant_example_group=False)
        # Without planting the exact 501/420 combination is vanishingly unlikely.
        assert table.count(EXAMPLE_GROUP) != EXAMPLE_GROUP_SIZE or (
            table.count(EXAMPLE_GROUP, ">50K") != EXAMPLE_GROUP_HIGH_INCOME
        )

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate_adult(0)

    def test_small_request_still_respects_size(self):
        table = generate_adult(100, seed=0)
        assert len(table) == 100


class TestIncomeModel:
    def test_probability_in_unit_interval(self):
        schema = adult_schema()
        rng = np.random.default_rng(0)
        for _ in range(50):
            education = schema.public_attribute("Education").decode(rng.integers(0, 16))
            occupation = schema.public_attribute("Occupation").decode(rng.integers(0, 14))
            race = schema.public_attribute("Race").decode(rng.integers(0, 5))
            gender = schema.public_attribute("Gender").decode(rng.integers(0, 2))
            probability = high_income_probability(education, occupation, race, gender)
            assert 0.0 < probability < 1.0

    def test_education_is_monotone_across_tiers(self):
        low = high_income_probability("Preschool", "Adm-clerical", "White", "Male")
        mid = high_income_probability("Bachelors", "Adm-clerical", "White", "Male")
        high = high_income_probability("Doctorate", "Adm-clerical", "White", "Male")
        assert low < mid < high

    def test_within_tier_values_share_probability(self):
        a = high_income_probability("Prof-school", "Sales", "White", "Male")
        b = high_income_probability("Doctorate", "Sales", "White", "Male")
        assert a == pytest.approx(b)

    def test_unknown_value_rejected(self):
        with pytest.raises(ValueError):
            high_income_probability("PhD", "Sales", "White", "Male")
