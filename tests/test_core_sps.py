"""Tests for the Sampling-Perturbing-Scaling algorithm (Section 5)."""

import numpy as np
import pytest

from repro.core.criterion import PrivacySpec, max_group_size
from repro.core.sps import sps_group, sps_publish, sps_publish_groups
from repro.core.testing import audit_table
from repro.dataset.groups import personal_groups
from repro.dataset.table import Table
from repro.perturbation.uniform import UniformPerturbation
from repro.reconstruction.mle import mle_frequencies
from repro.utils.rng import default_rng


@pytest.fixture()
def binary_spec() -> PrivacySpec:
    return PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)


class TestSpsGroup:
    def test_small_group_not_sampled(self, small_table):
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=10)
        group = next(iter(personal_groups(small_table)))
        perturbation = UniformPerturbation(0.5, 10)
        codes, record = sps_group(group, spec, perturbation, default_rng(0))
        assert not record.sampled
        assert record.sample_size == group.size
        assert codes.size == group.size

    def test_large_group_sampled_to_threshold(self, skewed_binary_table, binary_spec):
        index = personal_groups(skewed_binary_table)
        group = index.group_for_values({"Group": "a"})
        threshold = max_group_size(binary_spec, group.max_frequency)
        assert group.size > threshold  # precondition for the test
        perturbation = UniformPerturbation(0.5, 2)
        codes, record = sps_group(group, binary_spec, perturbation, default_rng(1))
        assert record.sampled
        # The sample size equals s_g up to the stochastic rounding of each value.
        assert abs(record.sample_size - threshold) <= 2
        # Scaling restores roughly the original size.
        assert abs(codes.size - group.size) <= record.sample_size

    def test_published_codes_stay_in_domain(self, skewed_binary_table, binary_spec):
        perturbation = UniformPerturbation(0.5, 2)
        rng = default_rng(3)
        for group in personal_groups(skewed_binary_table):
            codes, _ = sps_group(group, binary_spec, perturbation, rng)
            assert codes.min() >= 0 and codes.max() < 2


class TestSpsPublish:
    def test_published_size_close_to_original(self, skewed_binary_table, binary_spec):
        result = sps_publish(skewed_binary_table, binary_spec, rng=0)
        assert abs(len(result.published) - len(skewed_binary_table)) < 0.1 * len(skewed_binary_table)

    def test_public_key_structure_preserved(self, skewed_binary_table, binary_spec):
        result = sps_publish(skewed_binary_table, binary_spec, rng=0)
        original_keys = {g.key for g in personal_groups(skewed_binary_table)}
        published_keys = {g.key for g in personal_groups(result.published)}
        assert published_keys == original_keys

    def test_only_violating_groups_sampled(self, skewed_binary_table, binary_spec):
        audit = audit_table(skewed_binary_table, binary_spec)
        result = sps_publish(skewed_binary_table, binary_spec, rng=0)
        expected_sampled = {a.group.key for a in audit.violating_groups}
        actual_sampled = {g.key for g in result.groups if g.sampled}
        assert actual_sampled == expected_sampled
        assert result.n_sampled_groups == len(expected_sampled)

    def test_domain_mismatch_rejected(self, small_table, binary_spec):
        with pytest.raises(ValueError):
            sps_publish(small_table, binary_spec)

    def test_reproducible_with_seed(self, skewed_binary_table, binary_spec):
        a = sps_publish(skewed_binary_table, binary_spec, rng=11)
        b = sps_publish(skewed_binary_table, binary_spec, rng=11)
        assert a.published == b.published

    def test_no_sampling_when_data_already_private(self, small_table):
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=10)
        result = sps_publish(small_table, spec, rng=0)
        assert result.n_sampled_groups == 0
        assert result.sampled_fraction == 0.0
        assert len(result.published) == len(small_table)

    def test_empty_table(self, binary_schema, binary_spec):
        empty = Table.from_records(binary_schema, [])
        result = sps_publish(empty, binary_spec, rng=0)
        assert len(result.published) == 0
        assert result.groups == ()


class TestSpsPublishGroups:
    def test_chunked_union_covers_all_groups(self, skewed_binary_table, binary_spec):
        """The chunk entry point partitions cleanly: publishing the group list
        in two chunks yields exactly the per-chunk groups' records."""
        groups = list(personal_groups(skewed_binary_table))
        n_public = len(skewed_binary_table.schema.public)
        codes_a, records_a = sps_publish_groups(groups[:2], binary_spec, 1, n_public)
        codes_b, records_b = sps_publish_groups(groups[2:], binary_spec, 2, n_public)
        assert [r.key for r in records_a + records_b] == [g.key for g in groups]
        combined = Table(skewed_binary_table.schema, np.vstack([codes_a, codes_b]))
        published_keys = {g.key for g in personal_groups(combined)}
        assert published_keys == {g.key for g in groups}

    def test_matches_sps_publish_for_single_chunk(self, skewed_binary_table, binary_spec):
        groups = list(personal_groups(skewed_binary_table))
        n_public = len(skewed_binary_table.schema.public)
        codes, records = sps_publish_groups(
            groups, binary_spec, default_rng(17), n_public
        )
        reference = sps_publish(skewed_binary_table, binary_spec, rng=default_rng(17))
        assert np.array_equal(codes, reference.published.codes)
        assert tuple(records) == reference.groups

    def test_empty_chunk(self, binary_spec):
        codes, records = sps_publish_groups([], binary_spec, 0, n_public=1)
        assert codes.shape == (0, 2)
        assert records == []


class TestTheorem4Privacy:
    def test_sample_sizes_satisfy_the_criterion(self, binary_schema):
        """Theorem 4: privacy is achieved on the sampled records g1.

        Reconstruction privacy is a property of the number of independent coin
        tosses, which after SPS equals the sample size |g1| ~ s_g; every
        published group's sample size must therefore pass Corollary 4.
        """
        from repro.core.criterion import value_is_private

        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
        records = [("a", "high")] * 800 + [("a", "low")] * 200
        table = Table.from_records(binary_schema, records)
        group = next(iter(personal_groups(table)))
        for seed in range(20):
            result = sps_publish(table, spec, rng=seed)
            record = result.groups[0]
            assert record.sampled
            # Allow the +-1 per SA value of stochastic rounding.
            assert value_is_private(spec, record.sample_size - spec.domain_size, group.max_frequency)

    def test_sps_widens_personal_reconstruction_error_relative_to_up(self, binary_schema):
        """The point of sampling: the personal estimate from D*_2 is noisier
        than the estimate from plain UP on the same (violating) group."""
        from repro.perturbation.uniform import perturb_table

        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
        records = [("a", "high")] * 800 + [("a", "low")] * 200
        table = Table.from_records(binary_schema, records)
        up_estimates, sps_estimates = [], []
        for seed in range(200):
            up = perturb_table(table, 0.5, rng=seed)
            up_estimates.append(mle_frequencies(up.sensitive_counts(), 0.5)[1])
            sps = sps_publish(table, spec, rng=seed)
            sps_estimates.append(mle_frequencies(sps.published.sensitive_counts(), 0.5)[1])
        assert np.std(sps_estimates) > 1.5 * np.std(up_estimates)


class TestTheorem5Utility:
    def test_aggregate_reconstruction_stays_unbiased(self, binary_schema):
        """Theorem 5: the frequency reconstructed from D*_2 is unbiased for aggregates."""
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
        rng = np.random.default_rng(5)
        records = []
        for group, size, rate in (("a", 700, 0.7), ("b", 500, 0.4), ("c", 300, 0.2)):
            highs = rng.random(size) < rate
            records += [(group, "high" if h else "low") for h in highs]
        table = Table.from_records(binary_schema, records)
        true_high = table.sensitive_frequencies()[1]
        estimates = []
        for seed in range(250):
            result = sps_publish(table, spec, rng=seed)
            estimates.append(mle_frequencies(result.published.sensitive_counts(), 0.5)[1])
        assert float(np.mean(estimates)) == pytest.approx(true_high, abs=0.03)
