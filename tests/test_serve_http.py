"""End-to-end tests of the asyncio serving front end on an ephemeral port."""

import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import ServingFrontend
from repro.service.engine import AnonymizationService

CSV_BODY = "Job,City,Income\n" + "\n".join(
    f"{'eng' if i % 2 else 'artist'},c{i % 3},{'high' if i % 4 == 0 else 'low'}"
    for i in range(120)
)


@pytest.fixture()
def frontend():
    service = AnonymizationService()
    service.register_synthetic("adult", "adult", n_records=300, seed=1)
    front = ServingFrontend(service, port=0, workers=2, queue_limit=8)
    front.start()
    try:
        yield front
    finally:
        front.stop()
        service.close()


def get(url: str) -> tuple[int, dict, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def get_json(url: str):
    status, _, body = get(url)
    return status, json.loads(body)


def post_json(url: str, payload: dict) -> tuple[int, dict, bytes]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


class TestRoutingParity:
    """The asyncio front end serves the same routing table as the threading one."""

    def test_health_stats_and_describe(self, frontend):
        status, health = get_json(f"{frontend.base_url}/healthz")
        assert status == 200 and health["status"] == "ok"
        status, stats = get_json(f"{frontend.base_url}/stats")
        assert status == 200 and stats["n_datasets"] == 1
        assert stats["response_cache"]["enabled"] is True
        status, describe = get_json(f"{frontend.base_url}/")
        assert status == 200 and "backends" in describe

    def test_datasets_listing(self, frontend):
        status, listing = get_json(f"{frontend.base_url}/datasets")
        assert status == 200
        assert [entry["name"] for entry in listing] == ["adult"]

    def test_unknown_route_is_404(self, frontend):
        status, _, body = get(f"{frontend.base_url}/nope")
        assert status == 404
        assert "error" in json.loads(body)

    def test_unknown_dataset_is_404(self, frontend):
        status, _, _ = get(f"{frontend.base_url}/audit?dataset=ghost")
        assert status == 404

    def test_malformed_json_is_400(self, frontend):
        request = urllib.request.Request(
            f"{frontend.base_url}/audit", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unsupported_method_is_405(self, frontend):
        request = urllib.request.Request(f"{frontend.base_url}/stats", method="PUT")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 405

    def test_publish_end_to_end(self, frontend):
        status, _, body = post_json(
            f"{frontend.base_url}/publish",
            {"dataset": "adult", "backend": "dp-laplace", "seed": 3},
        )
        assert status == 201
        job = json.loads(body)
        assert job["status"] == "completed"
        status, record = get_json(f"{frontend.base_url}/jobs/{job['job_id']}")
        assert status == 200 and record["job_id"] == job["job_id"]


class TestResponseCaching:
    def test_audit_cache_serves_byte_identical_responses(self, frontend):
        url = f"{frontend.base_url}/audit?dataset=adult"
        _, headers1, _ = get(url)  # cold: builds the group index, not stored
        assert headers1["X-Cache"] == "miss"
        _, headers2, warm_body = get(url)  # warm recompute: fills the cache
        assert headers2["X-Cache"] == "miss"
        _, headers3, cached_body = get(url)
        assert headers3["X-Cache"] == "hit"
        assert cached_body == warm_body

    def test_post_audit_shares_the_get_cache_key(self, frontend):
        url = f"{frontend.base_url}/audit?dataset=adult"
        get(url)
        _, _, warm_body = get(url)
        status, headers, body = post_json(
            f"{frontend.base_url}/audit", {"dataset": "adult"}
        )
        assert status == 200
        assert headers["X-Cache"] == "hit"  # same resolved params, same key
        assert body == warm_body

    def test_distinct_params_get_distinct_entries(self, frontend):
        base = f"{frontend.base_url}/audit?dataset=adult"
        get(base)
        get(base)
        _, headers, _ = get(f"{base}&lam=0.4")
        assert headers["X-Cache"] == "miss"  # different resolved params

    def test_dataset_detail_is_cached(self, frontend):
        url = f"{frontend.base_url}/datasets/adult"
        _, headers1, first = get(url)
        assert headers1["X-Cache"] == "miss"
        _, headers2, second = get(url)
        assert headers2["X-Cache"] == "hit"
        assert second == first

    def test_reregister_invalidates_and_recomputes(self, frontend):
        url = f"{frontend.base_url}/audit?dataset=adult"
        get(url)
        get(url)
        _, headers, _ = get(url)
        assert headers["X-Cache"] == "hit"
        frontend.service.register_synthetic(
            "adult", "adult", n_records=300, seed=2, replace=True
        )
        _, headers, _ = get(url)
        assert headers["X-Cache"] == "miss"  # never a stale hit
        assert frontend.cache.invalidations >= 1

    def test_invalidation_leaves_other_datasets_untouched(self, frontend):
        frontend.service.register_synthetic("other", "adult", n_records=300, seed=5)
        for name in ("adult", "other"):
            url = f"{frontend.base_url}/audit?dataset={name}"
            get(url)
            get(url)
        frontend.service.register_synthetic(
            "adult", "adult", n_records=300, seed=2, replace=True
        )
        _, headers, _ = get(f"{frontend.base_url}/audit?dataset=other")
        assert headers["X-Cache"] == "hit"  # the other dataset's entry survived
        _, headers, _ = get(f"{frontend.base_url}/audit?dataset=adult")
        assert headers["X-Cache"] == "miss"

    def test_delta_append_invalidates_the_dataset_keys(self, frontend, tmp_path):
        source = tmp_path / "base.csv"
        source.write_text(CSV_BODY + "\n")
        url = f"{frontend.base_url}/audit?dataset=adult"
        get(url)
        get(url)
        # A delta dataset under the same name: its base publish and every
        # append bump the name's delta version and invalidate its keys.
        frontend.service.publish_delta_base(
            "adult",
            source,
            sensitive="Income",
            backend="sps",
            output=tmp_path / "out.csv",
            seed=7,
        )
        _, headers, _ = get(url)
        assert headers["X-Cache"] == "miss"  # base publish invalidated
        _, headers, _ = get(url)
        assert headers["X-Cache"] == "hit"
        status, _, _ = post_json(
            f"{frontend.base_url}/datasets/adult/rows",
            {"rows": [["eng", "c1", "low"], ["artist", "c2", "high"]]},
        )
        assert status == 201
        _, headers, _ = get(url)
        assert headers["X-Cache"] == "miss"  # the append invalidated again

    def test_stats_counts_cache_traffic(self, frontend):
        url = f"{frontend.base_url}/audit?dataset=adult"
        get(url)
        get(url)
        get(url)
        _, stats = get_json(f"{frontend.base_url}/stats")
        block = stats["response_cache"]
        assert block["hits"] >= 1 and block["misses"] >= 2
        assert block["entries"] >= 1


class TestPersistence:
    def test_cache_survives_a_restart_with_identical_bytes(self, tmp_path):
        path = tmp_path / "serve.db"
        service = AnonymizationService(snapshot_path=path)
        service.register_synthetic("adult", "adult", n_records=300, seed=1)
        with ServingFrontend(service, port=0, workers=2) as front:
            url = f"{front.base_url}/audit?dataset=adult"
            get(url)
            _, _, warm_body = get(url)
        service.close()

        revived = AnonymizationService(snapshot_path=path)
        with ServingFrontend(revived, port=0, workers=2) as front:
            _, headers, body = get(f"{front.base_url}/audit?dataset=adult")
            assert headers["X-Cache"] == "hit"  # served from the persisted entry
            assert body == warm_body
        revived.close()

    def test_restart_revalidates_against_dataset_versions(self, tmp_path):
        path = tmp_path / "serve.db"
        service = AnonymizationService(snapshot_path=path)
        service.register_synthetic("adult", "adult", n_records=300, seed=1)
        with ServingFrontend(service, port=0, workers=2) as front:
            url = f"{front.base_url}/audit?dataset=adult"
            get(url)
            get(url)
        service.close()

        # The dataset changes while no server (and no cache) is running.
        mutated = AnonymizationService(snapshot_path=path)
        mutated.register_synthetic(
            "adult", "adult", n_records=300, seed=2, replace=True
        )
        mutated.close()

        revived = AnonymizationService(snapshot_path=path)
        with ServingFrontend(revived, port=0, workers=2) as front:
            _, headers, _ = get(f"{front.base_url}/audit?dataset=adult")
            assert headers["X-Cache"] == "miss"  # the stale entry was dropped
        revived.close()


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self):
        service = AnonymizationService()
        service.register_synthetic("adult", "adult", n_records=300, seed=1)
        front = ServingFrontend(
            service, port=0, workers=1, queue_limit=1, retry_after=3
        )
        release = threading.Event()
        with front:
            front.dispatcher.submit(release.wait)  # occupies the single worker
            deadline = time.monotonic() + 5
            while front.dispatcher.depth and time.monotonic() < deadline:
                time.sleep(0.005)
            front.dispatcher.submit(release.wait)  # fills the single queue slot
            status, headers, body = get(f"{front.base_url}/stats")
            assert status == 429
            assert headers["Retry-After"] == "3"
            assert "error" in json.loads(body)
            # Probes and scrapes bypass the queue even under full overload.
            status, _, _ = get(f"{front.base_url}/healthz")
            assert status == 200
            status, _, metrics = get(f"{front.base_url}/metrics")
            assert status == 200
            assert b"repro_serve_queue_rejections_total" in metrics
            release.set()
            status, _, _ = get(f"{front.base_url}/stats")  # the queue drained
            assert status == 200
        service.close()

    def test_no_cache_mode_serves_uncached(self):
        service = AnonymizationService()
        service.register_synthetic("adult", "adult", n_records=300, seed=1)
        with ServingFrontend(service, port=0, enable_cache=False) as front:
            url = f"{front.base_url}/audit?dataset=adult"
            get(url)
            _, headers, _ = get(url)
            assert "X-Cache" not in headers
            assert front.cache is None
        service.close()


class TestConnectionHandling:
    def test_keep_alive_reuses_the_connection(self, frontend):
        connection = http.client.HTTPConnection(
            frontend.host, frontend.port, timeout=30
        )
        try:
            for _ in range(3):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()

    def test_server_header_names_the_front_end(self, frontend):
        _, headers, _ = get(f"{frontend.base_url}/healthz")
        assert headers["Server"].startswith("repro-serve/")
