"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import default_rng, spawn_rngs


class TestDefaultRng:
    def test_same_seed_same_stream(self):
        a = default_rng(42)
        b = default_rng(42)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_generator_passed_through(self):
        gen = np.random.default_rng(1)
        assert default_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(default_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count_respected(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_reproducible_from_seed(self):
        first = [rng.integers(0, 10**6) for rng in spawn_rngs(3, 4)]
        second = [rng.integers(0, 10**6) for rng in spawn_rngs(3, 4)]
        assert first == second

    def test_streams_are_distinct(self):
        draws = [rng.integers(0, 2**62) for rng in spawn_rngs(9, 8)]
        assert len(set(draws)) == len(draws)

    def test_zero_count_allowed(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
