"""The differential/property harness pinning the delta byte-identity contract.

For every ``delta_capable`` strategy and *any* randomized combination of
schema, row multiset, append split, seed, ``chunk_size``, ``chunk_rows``
and worker count, hypothesis asserts

    ``full_publish(base + appended) == delta_publish(published_base, appended)``

in output bytes and audit results.  The generator freely produces appends
that add new groups, new public values and new sensitive values — so the
loud ``mode="full"`` fallback is exercised under the same equality, not
special-cased away.  ``tests/test_delta.py`` holds the example-based and
fault-injection halves of the contract.

Profiles: CI runs the ``ci`` profile (``derandomize=True`` so the suite is
reproducible and the perf gate sees stable timings); locally the ``local``
profile keeps hypothesis's randomized search but drops the per-example
deadline (publishing runs real kernels, whose first call pays numpy warm-up).
Select explicitly with ``HYPOTHESIS_PROFILE=ci pytest tests/test_delta_properties.py``.
"""

import csv
import os
import tempfile
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.delta import delta_publish, publish_base  # noqa: E402
from repro.stream import stream_publish  # noqa: E402

settings.register_profile("ci", derandomize=True, max_examples=25, deadline=None)
settings.register_profile("local", max_examples=50, deadline=None)
settings.load_profile(
    "ci" if os.environ.get("CI") else os.environ.get("HYPOTHESIS_PROFILE", "local")
)

HEADER = ["City", "Job", "Disease"]
CITIES = ["athens", "bergen", "cairo", "delhi"]
JOBS = ["eng", "nurse"]
DISEASES = ["cold", "flu", "hiv", "zika"]

DELTA_CAPABLE = ["sps", "dp-laplace", "dp-gaussian"]

row = st.tuples(st.sampled_from(CITIES), st.sampled_from(JOBS), st.sampled_from(DISEASES))


def base_and_append():
    """(base_rows, appended_rows): base covers >=2 SA values, both non-empty."""
    # The base needs a >=2-value sensitive domain (the perturbation matrix's
    # dimension); pin two rows, then let everything else vary — including
    # appends whose rows introduce brand-new public or sensitive values.
    pinned = st.just([("athens", "eng", "cold"), ("athens", "eng", "flu")])
    base = st.tuples(pinned, st.lists(row, min_size=3, max_size=60)).map(
        lambda pair: pair[0] + pair[1]
    )
    appended = st.lists(row, min_size=1, max_size=20)
    return st.tuples(base, appended)


def _write(path: Path, rows) -> None:
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(HEADER)
        writer.writerows(rows)


def _audits_equal(left, right) -> bool:
    if (left is None) != (right is None):
        return False
    if left is None:
        return True
    return (
        left.group_violation_rate == right.group_violation_rate
        and left.record_violation_rate == right.record_violation_rate
        and left.is_private == right.is_private
    )


@given(
    split=base_and_append(),
    strategy=st.sampled_from(DELTA_CAPABLE),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk_size=st.integers(min_value=1, max_value=8),
    chunk_rows=st.integers(min_value=1, max_value=64),
    workers=st.sampled_from([1, 2]),
    in_memory=st.booleans(),
)
def test_delta_publish_equals_full_publish(
    split, strategy, seed, chunk_size, chunk_rows, workers, in_memory
):
    base_rows, appended_rows = split
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        base_csv = tmp_path / "base.csv"
        full_csv = tmp_path / "full.csv"
        _write(base_csv, base_rows)
        _write(full_csv, base_rows + appended_rows)

        published = tmp_path / "published.csv"
        base_report = publish_base(
            base_csv, sensitive="Disease", output=published, strategy=strategy,
            rng=seed, chunk_size=chunk_size, chunk_rows=chunk_rows,
        )
        if in_memory:
            appended = [list(r) for r in appended_rows]
        else:
            appended = tmp_path / "append.csv"
            _write(appended, appended_rows)
        delta_report = delta_publish(base_report.state, appended, workers=workers)

        full_out = tmp_path / "full_published.csv"
        full_report = stream_publish(
            full_csv, sensitive="Disease", strategy=strategy, rng=seed,
            chunk_size=chunk_size, chunk_rows=chunk_rows, output=full_out,
        )
        assert published.read_bytes() == full_out.read_bytes()
        assert _audits_equal(delta_report.audit, full_report.audit)
        assert delta_report.n_rows == len(base_rows) + len(appended_rows)


@given(
    split=base_and_append(),
    seed=st.integers(min_value=0, max_value=2**16),
    chunk_size=st.integers(min_value=1, max_value=6),
    chunk_rows_pair=st.tuples(
        st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=64)
    ),
)
def test_chunk_rows_never_changes_delta_bytes(split, seed, chunk_size, chunk_rows_pair):
    # chunk_rows shapes only the *read* batching; the published bytes are a
    # pure function of (seed, chunk_size) on the delta path like everywhere.
    base_rows, appended_rows = split
    outputs = []
    for chunk_rows in chunk_rows_pair:
        with tempfile.TemporaryDirectory() as tmp:
            tmp_path = Path(tmp)
            base_csv = tmp_path / "base.csv"
            _write(base_csv, base_rows)
            published = tmp_path / "published.csv"
            report = publish_base(
                base_csv, sensitive="Disease", output=published,
                rng=seed, chunk_size=chunk_size, chunk_rows=chunk_rows,
            )
            delta_publish(report.state, [list(r) for r in appended_rows])
            outputs.append(published.read_bytes())
    assert outputs[0] == outputs[1]


@given(
    split=base_and_append(),
    cut=st.integers(min_value=0, max_value=100),
    seed=st.integers(min_value=0, max_value=2**16),
    chunk_size=st.integers(min_value=1, max_value=6),
)
def test_chained_appends_equal_one_full_publish(split, cut, seed, chunk_size):
    base_rows, appended_rows = split
    first = appended_rows[: cut % len(appended_rows)]
    second = appended_rows[cut % len(appended_rows):]
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        base_csv = tmp_path / "base.csv"
        full_csv = tmp_path / "full.csv"
        _write(base_csv, base_rows)
        _write(full_csv, base_rows + appended_rows)

        published = tmp_path / "published.csv"
        report = publish_base(
            base_csv, sensitive="Disease", output=published,
            rng=seed, chunk_size=chunk_size,
        )
        state = report.state
        if first:
            state = delta_publish(state, [list(r) for r in first]).state
        state = delta_publish(state, [list(r) for r in second]).state

        full_out = tmp_path / "full_published.csv"
        stream_publish(
            full_csv, sensitive="Disease", strategy="sps", rng=seed,
            chunk_size=chunk_size, output=full_out,
        )
        assert published.read_bytes() == full_out.read_bytes()
        assert state.n_rows == len(base_rows) + len(appended_rows)
