"""Tests for data-set level privacy auditing (v_g / v_r)."""

import pytest

from repro.analysis.violation import violation_report
from repro.core.criterion import PrivacySpec
from repro.core.testing import audit_group, audit_table
from repro.dataset.groups import personal_groups
from repro.dataset.table import Table


@pytest.fixture()
def binary_spec() -> PrivacySpec:
    return PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)


class TestAuditTable:
    def test_domain_mismatch_rejected(self, small_table):
        wrong = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=3)
        with pytest.raises(ValueError):
            audit_table(small_table, wrong)

    def test_all_small_groups_pass(self, small_table):
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=10)
        audit = audit_table(small_table, spec)
        assert audit.is_private
        assert audit.group_violation_rate == 0.0
        assert audit.record_violation_rate == 0.0

    def test_violations_detected_and_rates_consistent(self, skewed_binary_table, binary_spec):
        audit = audit_table(skewed_binary_table, binary_spec)
        assert not audit.is_private
        assert 0 < audit.group_violation_rate < 1
        # The biggest group (400 records, f = 0.8) violates, so v_r > v_g.
        assert audit.record_violation_rate > audit.group_violation_rate
        covered = sum(v.size for v in audit.violating_groups)
        assert audit.record_violation_rate == pytest.approx(covered / len(skewed_binary_table))

    def test_reusing_group_index_gives_same_result(self, skewed_binary_table, binary_spec):
        groups = personal_groups(skewed_binary_table)
        a = audit_table(skewed_binary_table, binary_spec)
        b = audit_table(skewed_binary_table, binary_spec, groups=groups)
        assert a.group_violation_rate == b.group_violation_rate
        assert a.record_violation_rate == b.record_violation_rate

    def test_empty_table_is_trivially_private(self, binary_schema, binary_spec):
        empty = Table.from_records(binary_schema, [])
        audit = audit_table(empty, binary_spec)
        assert audit.is_private
        assert audit.n_groups == 0


class TestGroupAudit:
    def test_sampling_rate_capped_at_one(self, small_table):
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=10)
        index = personal_groups(small_table)
        for group in index:
            audit = audit_group(spec, group)
            assert audit.sampling_rate == 1.0

    def test_sampling_rate_below_one_for_violating_group(self, skewed_binary_table, binary_spec):
        index = personal_groups(skewed_binary_table)
        audits = [audit_group(binary_spec, group) for group in index]
        violating = [a for a in audits if not a.is_private]
        assert violating
        for audit in violating:
            assert 0 < audit.sampling_rate < 1
            assert audit.max_group_size < audit.size


class TestViolationReport:
    def test_report_matches_audit(self, skewed_binary_table, binary_spec):
        audit = audit_table(skewed_binary_table, binary_spec)
        report = violation_report(skewed_binary_table, binary_spec)
        assert report.group_rate == pytest.approx(audit.group_violation_rate)
        assert report.record_rate == pytest.approx(audit.record_violation_rate)
        assert report.total_groups == audit.n_groups

    def test_report_can_reuse_audit(self, skewed_binary_table, binary_spec):
        audit = audit_table(skewed_binary_table, binary_spec)
        report = violation_report(skewed_binary_table, binary_spec, audit=audit)
        assert report.violating_groups == len(audit.violating_groups)

    def test_rates_move_with_lambda(self, skewed_binary_table):
        # Equation (9): a larger lambda shrinks the admissible group size s_g,
        # so the same data violates the criterion more often.
        small_lambda = PrivacySpec(lam=0.1, delta=0.3, retention_probability=0.5, domain_size=2)
        large_lambda = PrivacySpec(lam=0.5, delta=0.3, retention_probability=0.5, domain_size=2)
        small_report = violation_report(skewed_binary_table, small_lambda)
        large_report = violation_report(skewed_binary_table, large_lambda)
        assert large_report.group_rate >= small_report.group_rate
