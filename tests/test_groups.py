"""Unit tests for repro.dataset.groups (personal and aggregate groups)."""

import numpy as np
import pytest

from repro.dataset.groups import aggregate_group, personal_groups
from repro.dataset.table import Table


class TestGroupIndex:
    def test_number_of_groups(self, small_table):
        index = personal_groups(small_table)
        assert len(index) == 3

    def test_group_sizes_cover_table(self, small_table):
        index = personal_groups(small_table)
        assert index.sizes().sum() == len(small_table)

    def test_group_lookup_by_values(self, small_table):
        index = personal_groups(small_table)
        group = index.group_for_values({"Gender": "male", "Job": "eng"})
        assert group is not None
        assert group.size == 8
        assert group.sensitive_counts[0] == 6
        assert group.sensitive_counts[1] == 2

    def test_group_lookup_requires_all_public_attributes(self, small_table):
        index = personal_groups(small_table)
        with pytest.raises(ValueError):
            index.group_for_values({"Job": "eng"})

    def test_missing_group_returns_none(self, small_table):
        index = personal_groups(small_table)
        assert index.group_for_values({"Gender": "female", "Job": "artist"}) is None

    def test_group_of_record(self, small_table):
        index = personal_groups(small_table)
        group = index.group_of_record(0)
        assert tuple(small_table.public_codes[0]) == group.key

    def test_frequencies_and_max_frequency(self, small_table):
        index = personal_groups(small_table)
        group = index.group_for_values({"Gender": "male", "Job": "eng"})
        assert group.frequencies[0] == pytest.approx(0.75)
        assert group.max_frequency == pytest.approx(0.75)
        pure = index.group_for_values({"Gender": "male", "Job": "lawyer"})
        assert pure.max_frequency == pytest.approx(1.0)

    def test_decoded_key(self, small_table):
        index = personal_groups(small_table)
        group = index.group_for_values({"Gender": "female", "Job": "eng"})
        assert group.decoded_key(small_table) == ("female", "eng")

    def test_average_group_size(self, small_table):
        index = personal_groups(small_table)
        assert index.average_group_size() == pytest.approx(len(small_table) / 3)

    def test_empty_table_has_no_groups(self, disease_schema):
        empty = Table.from_records(disease_schema, [])
        index = personal_groups(empty)
        assert len(index) == 0
        assert index.average_group_size() == 0.0

    def test_indices_point_to_matching_rows(self, small_table):
        index = personal_groups(small_table)
        for group in index:
            rows = small_table.public_codes[group.indices]
            assert np.all(rows == np.asarray(group.key))


class TestAggregateGroup:
    def test_partial_condition(self, small_table):
        mask = aggregate_group(small_table, {"Job": "eng"})
        assert mask.sum() == 12

    def test_empty_condition_selects_all(self, small_table):
        mask = aggregate_group(small_table, {})
        assert mask.all()

    def test_full_condition_degenerates_to_personal_group(self, small_table):
        mask = aggregate_group(small_table, {"Gender": "male", "Job": "lawyer"})
        assert mask.sum() == 3
