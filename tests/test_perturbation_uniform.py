"""Tests for the uniform perturbation operator (Section 3.1)."""

import numpy as np
import pytest

from repro.dataset.table import Table
from repro.perturbation.uniform import UniformPerturbation, perturb_table


class TestPerturbCodes:
    def test_output_stays_in_domain(self):
        operator = UniformPerturbation(0.3, 5)
        codes = np.tile(np.arange(5), 200)
        published = operator.perturb_codes(codes, rng=0)
        assert published.min() >= 0 and published.max() < 5
        assert published.shape == codes.shape

    def test_retention_of_one_is_identity(self):
        operator = UniformPerturbation(1.0, 4)
        codes = np.array([0, 1, 2, 3, 3, 2])
        assert np.array_equal(operator.perturb_codes(codes, rng=1), codes)

    def test_reproducible_with_seed(self):
        operator = UniformPerturbation(0.4, 6)
        codes = np.random.default_rng(0).integers(0, 6, size=500)
        assert np.array_equal(
            operator.perturb_codes(codes, rng=7), operator.perturb_codes(codes, rng=7)
        )

    def test_retention_rate_statistically_plausible(self):
        p, m, n = 0.5, 10, 40_000
        operator = UniformPerturbation(p, m)
        codes = np.zeros(n, dtype=np.int64)
        published = operator.perturb_codes(codes, rng=3)
        observed_same = (published == 0).mean()
        expected = p + (1 - p) / m
        assert observed_same == pytest.approx(expected, abs=0.01)

    def test_replacement_is_uniform_over_domain(self):
        p, m, n = 0.0, 5, 50_000
        # p must be > 0; use a tiny p so almost everything is replaced.
        operator = UniformPerturbation(0.001, m)
        codes = np.zeros(n, dtype=np.int64)
        published = operator.perturb_codes(codes, rng=9)
        counts = np.bincount(published, minlength=m) / n
        assert np.allclose(counts, 1 / m, atol=0.01)

    def test_out_of_domain_input_rejected(self):
        operator = UniformPerturbation(0.5, 3)
        with pytest.raises(ValueError):
            operator.perturb_codes(np.array([0, 3]), rng=0)

    def test_two_dimensional_input_rejected(self):
        operator = UniformPerturbation(0.5, 3)
        with pytest.raises(ValueError):
            operator.perturb_codes(np.zeros((2, 2), dtype=np.int64), rng=0)


class TestPerturbTable:
    def test_public_columns_untouched(self, small_table):
        published = perturb_table(small_table, 0.2, rng=0)
        assert np.array_equal(published.public_codes, small_table.public_codes)
        assert len(published) == len(small_table)

    def test_domain_mismatch_rejected(self, small_table):
        operator = UniformPerturbation(0.5, 3)  # table's SA domain is 10
        with pytest.raises(ValueError):
            operator.perturb_table(small_table, rng=0)

    def test_published_table_is_new_object(self, small_table):
        published = perturb_table(small_table, 0.2, rng=0)
        assert published is not small_table
        assert isinstance(published, Table)
