"""The out-of-core streaming engine and its byte-identity contract.

The load-bearing suite for :mod:`repro.stream`: for a fixed seed and
``chunk_size``, streaming output must equal the in-memory pipeline's output
bit for bit — published table, CSV bytes and RNG stream consumption — for
every registered strategy, at any ``chunk_rows``.  Pinned here the same way
``tests/test_vectorized.py`` pins the vectorized kernels.
"""

import io
import json

import numpy as np
import pytest

import repro
from repro.dataset.groups import personal_groups
from repro.dataset.loaders import read_csv, write_csv
from repro.dataset.schema import SchemaError
from repro.pipeline import available_strategies, publish
from repro.stream import (
    ChunkedReader,
    IncrementalGroupIndex,
    stream_publish,
)
from repro.stream.cli import main as stream_cli_main


def _csv_text(table):
    buffer = io.StringIO()
    write_csv(table, buffer)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def adult_csv():
    return _csv_text(repro.generate_adult(2500, seed=11))


# --------------------------------------------------------------------- #
# ChunkedReader edge cases
# --------------------------------------------------------------------- #


class TestChunkedReader:
    def test_final_chunk_smaller_than_chunk_rows(self):
        src = io.StringIO("City,Disease\n" + "Oslo,Flu\n" * 10)
        reader = ChunkedReader(src, sensitive="Disease", chunk_rows=4)
        sizes = [len(chunk) for chunk in reader.chunks()]
        assert sizes == [4, 4, 2]
        assert reader.rows_read == 10 and reader.chunks_read == 3

    def test_crlf_line_endings(self):
        src = io.StringIO("City,Disease\r\nOslo,Flu\r\nBergen,Cold\r\n", newline="")
        reader = ChunkedReader(src, sensitive="Disease", chunk_rows=10)
        chunks = list(reader.chunks())
        assert chunks == [[["Oslo", "Flu"], ["Bergen", "Cold"]]]

    def test_utf8_bom_stripped_from_header(self):
        src = io.StringIO("\ufeffCity,Disease\nOslo,Flu\n")
        reader = ChunkedReader(src, sensitive="Disease")
        list(reader.chunks())
        assert reader.header == ["City", "Disease"]

    def test_sensitive_column_reordered_last(self):
        src = io.StringIO("Disease,City\nFlu,Oslo\n")
        reader = ChunkedReader(src, sensitive="Disease")
        (chunk,) = reader.chunks()
        assert chunk == [["Oslo", "Flu"]]
        assert reader.public_names == ["City"]

    def test_blank_lines_skipped(self):
        src = io.StringIO("City,Disease\nOslo,Flu\n\n\nBergen,Cold\n")
        reader = ChunkedReader(src, sensitive="Disease")
        (chunk,) = reader.chunks()
        assert len(chunk) == 2

    def test_empty_source_names_the_source(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match=str(path)):
            list(ChunkedReader(path, sensitive="Disease").chunks())

    def test_header_only_names_the_source(self):
        src = io.StringIO("City,Disease\n")
        with pytest.raises(SchemaError, match="csv stream.*no data rows"):
            list(ChunkedReader(src, sensitive="Disease").chunks())

    def test_row_width_error_carries_line_number(self):
        src = io.StringIO("City,Disease\nOslo,Flu\nBergen\n")
        with pytest.raises(SchemaError, match="line 3"):
            list(ChunkedReader(src, sensitive="Disease").chunks())

    def test_missing_sensitive_column(self):
        src = io.StringIO("City,Disease\nOslo,Flu\n")
        with pytest.raises(SchemaError, match="'Income' not found"):
            list(ChunkedReader(src, sensitive="Income").chunks())

    def test_path_source_is_reiterable(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("City,Disease\nOslo,Flu\n")
        reader = ChunkedReader(path, sensitive="Disease")
        assert list(reader.chunks()) == list(reader.chunks())

    def test_rejects_nonpositive_chunk_rows(self):
        with pytest.raises(ValueError, match="chunk_rows"):
            ChunkedReader(io.StringIO("x"), sensitive="x", chunk_rows=0)


# --------------------------------------------------------------------- #
# IncrementalGroupIndex vs the in-memory GroupIndex
# --------------------------------------------------------------------- #


class TestIncrementalGroupIndex:
    @pytest.mark.parametrize("chunk_rows", [7, 100, 5000])
    def test_matches_in_memory_group_index(self, adult_csv, chunk_rows):
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        reference = personal_groups(table)

        reader = ChunkedReader(io.StringIO(adult_csv), sensitive="Income", chunk_rows=chunk_rows)
        index = None
        for chunk in reader.chunks():
            if index is None:
                index = IncrementalGroupIndex(reader.public_names, "Income")
            index.update(chunk)
        schema, groups = index.finalize()

        assert schema == table.schema
        assert [g.key for g in groups] == [g.key for g in reference]
        for stream_group, ref_group in zip(groups, reference):
            assert np.array_equal(stream_group.sensitive_counts, ref_group.sensitive_counts)

    def test_group_spanning_chunk_boundary(self):
        # Two records of the same personal group split across chunks must
        # merge into one group with summed counts.
        src = io.StringIO("City,Disease\nOslo,Flu\nOslo,Cold\nOslo,Flu\n")
        reader = ChunkedReader(src, sensitive="Disease", chunk_rows=2)
        index = IncrementalGroupIndex(["City"], "Disease")
        for chunk in reader.chunks():
            index.update(chunk)
        assert reader.chunks_read == 2  # the group really did span chunks
        _, groups = index.finalize()
        assert len(groups) == 1
        assert groups[0].sensitive_counts.tolist() == [1, 2]  # Cold, Flu sorted

    def test_finalize_requires_rows(self):
        with pytest.raises(ValueError, match="no rows"):
            IncrementalGroupIndex(["City"], "Disease").finalize()


# --------------------------------------------------------------------- #
# Byte-identity: streaming == in-memory, all strategies
# --------------------------------------------------------------------- #


class TestByteIdentity:
    @pytest.mark.parametrize("strategy", sorted(available_strategies()))
    def test_published_table_and_csv_identical(self, adult_csv, strategy):
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        in_memory = publish(table, strategy=strategy, rng=7, chunk_size=64)

        streamed = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy=strategy,
            rng=7, chunk_size=64, chunk_rows=333,
        )
        assert streamed.published == in_memory.published

        sink = io.StringIO()
        stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy=strategy,
            rng=7, chunk_size=64, chunk_rows=333, output=sink,
        )
        assert sink.getvalue() == _csv_text(in_memory.published)

    @pytest.mark.parametrize("chunk_rows", [50, 700, 10_000])
    def test_chunk_rows_never_changes_bytes(self, adult_csv, chunk_rows):
        # chunk_rows is a memory knob; any divergence in RNG stream
        # consumption between ingestion chunkings would surface here.
        reference = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy="uniform",
            rng=3, chunk_rows=2500,
        )
        other = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy="uniform",
            rng=3, chunk_rows=chunk_rows,
        )
        assert other.published == reference.published

    def test_chunked_rng_draws_concatenate_like_whole_draws(self):
        # The stream-position pin behind the row-stream path: drawing
        # random/integers in chunks consumes the generator exactly like one
        # whole-array draw, so phase boundaries cannot shift the stream.
        whole = np.random.default_rng(np.random.SeedSequence(5))
        parts = np.random.default_rng(np.random.SeedSequence(5))
        expected_u = whole.random(1000)
        expected_r = whole.integers(0, 14, 1000)
        chunks = (137, 400, 463)
        got_u = np.concatenate([parts.random(k) for k in chunks])
        got_r = np.concatenate([parts.integers(0, 14, k) for k in chunks])
        assert np.array_equal(expected_u, got_u)
        assert np.array_equal(expected_r, got_r)
        assert whole.random() == parts.random()  # same position afterwards

    def test_audit_and_records_match_in_memory(self, adult_csv):
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        in_memory = publish(table, strategy="sps", rng=9, chunk_size=128)
        streamed = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy="sps",
            rng=9, chunk_size=128, chunk_rows=400,
        )
        assert streamed.audit.n_groups == in_memory.audit.n_groups
        assert streamed.audit.group_violation_rate == in_memory.audit.group_violation_rate
        assert streamed.audit.record_violation_rate == in_memory.audit.record_violation_rate
        assert streamed.groups == in_memory.groups  # GroupPublication bookkeeping

    def test_generalize_metadata_matches_in_memory(self, adult_csv):
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        in_memory = publish(table, strategy="generalize+sps", rng=2, chunk_size=64)
        streamed = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy="generalize+sps",
            rng=2, chunk_size=64, chunk_rows=750,
        )
        assert streamed.metadata["generalized_domains"] == in_memory.metadata["generalized_domains"]
        assert streamed.published == in_memory.published


# --------------------------------------------------------------------- #
# Engine surface
# --------------------------------------------------------------------- #


class TestStreamPublish:
    def test_report_shape_and_progress_events(self, adult_csv):
        events = []
        report = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy="sps",
            rng=1, chunk_rows=500, progress=events.append,
        )
        assert report.n_rows == 2500 and report.n_chunks == 5
        assert report.published_records == len(report.published)
        phases = [event["phase"] for event in events]
        assert phases[0] == "read" and phases[-1] == "done"
        assert "group_index" in phases and "enforce" in phases
        summary = report.summary()
        assert summary["rows_read"] == 2500 and "audit" in summary
        json.dumps(summary)  # JSON-compatible throughout

    def test_output_sink_skips_materialisation(self, adult_csv, tmp_path):
        out = tmp_path / "published.csv"
        report = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy="dp-laplace",
            rng=1, output=out,
        )
        assert report.published is None
        assert report.output == str(out)
        assert out.read_text().splitlines()[0] == "Education,Occupation,Race,Gender,Income"

    def test_track_memory_records_peak(self, adult_csv):
        report = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", rng=1, track_memory=True,
        )
        assert report.peak_tracked_bytes > 0
        assert report.summary()["peak_tracked_bytes"] == report.peak_tracked_bytes

    def test_non_streamable_strategy_rejected(self):
        from repro.pipeline.strategy import PublishStrategy

        class Opaque(PublishStrategy):
            name = "opaque"

            def enforce(self, *args):  # pragma: no cover - never runs
                raise AssertionError

        with pytest.raises(ValueError, match="not streamable"):
            stream_publish(io.StringIO("a,b\n1,2\n"), sensitive="b", strategy=Opaque())

    def test_overwrite_false_is_atomic_at_the_sink(self, adult_csv, tmp_path):
        out = tmp_path / "out.csv"
        stream_publish(
            io.StringIO(adult_csv), sensitive="Income", rng=1, output=out,
            overwrite=False,
        )
        with pytest.raises(FileExistsError):
            stream_publish(
                io.StringIO(adult_csv), sensitive="Income", rng=1, output=out,
                overwrite=False,
            )
        # default engine/CLI semantics still overwrite
        stream_publish(io.StringIO(adult_csv), sensitive="Income", rng=1, output=out)

    def test_service_stream_job_never_clobbers_existing_output(self, adult_csv, tmp_path):
        from repro.service import AnonymizationService
        from repro.service.registry import ServiceError

        csv_path = tmp_path / "in.csv"
        csv_path.write_text(adult_csv, newline="")
        out = tmp_path / "precious.csv"
        out.write_text("do not clobber")
        service = AnonymizationService()
        with pytest.raises(ServiceError, match="failed"):
            service.publish_stream(csv_path, "Income", "sps", seed=1, output=out)
        assert out.read_text() == "do not clobber"

    def test_audit_false_skips_audit(self, adult_csv):
        report = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", rng=1, audit=False,
        )
        assert report.audit is None

    def test_materialize_false_counts_without_keeping(self, adult_csv):
        counted = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", rng=1, materialize=False,
        )
        kept = stream_publish(io.StringIO(adult_csv), sensitive="Income", rng=1)
        assert counted.published is None
        assert counted.published_records == len(kept.published)

    def test_owned_partial_output_removed_on_enforce_failure(
        self, adult_csv, tmp_path, monkeypatch
    ):
        # A kernel crash mid-publish must close the owned handle and remove
        # the partial file, so a retry with the same path can succeed.
        from repro.pipeline.strategy import SPSStrategy

        def exploding_chunk_publisher(self, schema, spec, resolved):
            def chunk_fn(chunk, rng):
                raise OSError("disk full")
            return chunk_fn

        monkeypatch.setattr(SPSStrategy, "chunk_publisher", exploding_chunk_publisher)
        out = tmp_path / "partial.csv"
        with pytest.raises(OSError, match="disk full"):
            stream_publish(
                io.StringIO(adult_csv), sensitive="Income", strategy="sps",
                rng=1, output=out,
            )
        assert not out.exists()

    def test_caller_stream_untouched_on_enforce_failure(self, adult_csv, monkeypatch):
        from repro.pipeline.strategy import SPSStrategy

        def exploding_chunk_publisher(self, schema, spec, resolved):
            def chunk_fn(chunk, rng):
                raise OSError("disk full")
            return chunk_fn

        monkeypatch.setattr(SPSStrategy, "chunk_publisher", exploding_chunk_publisher)
        sink = io.StringIO()
        with pytest.raises(OSError, match="disk full"):
            stream_publish(
                io.StringIO(adult_csv), sensitive="Income", strategy="sps",
                rng=1, output=sink,
            )
        assert not sink.closed  # we don't own caller-provided streams


class TestPublishWiring:
    def test_publish_streaming_delegates(self, adult_csv):
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        in_memory = publish(table, strategy="sps", rng=7)
        streamed = repro.publish(
            source=io.StringIO(adult_csv), sensitive="Income", streaming=True,
            strategy="sps", rng=7, chunk_rows=600,
        )
        assert streamed.published == in_memory.published

    def test_publish_source_without_streaming_loads(self, adult_csv):
        report = repro.publish(
            source=io.StringIO(adult_csv), sensitive="Income", strategy="sps", rng=7
        )
        assert len(report.prepared) == 2500  # an in-memory PublishReport

    def test_publish_argument_validation(self, adult_csv):
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        with pytest.raises(ValueError, match="not both"):
            repro.publish(table, source=io.StringIO("x"))
        with pytest.raises(ValueError, match="requires source"):
            repro.publish(streaming=True)
        with pytest.raises(ValueError, match="sensitive"):
            repro.publish(source=io.StringIO("x"), streaming=True)
        with pytest.raises(ValueError, match="streaming options"):
            repro.publish(table, chunk_rows=100)
        with pytest.raises(ValueError, match="in-memory artifacts"):
            repro.publish(
                source=io.StringIO("x"), sensitive="y", streaming=True,
                groups=personal_groups(table),
            )
        with pytest.raises(ValueError, match="needs a table or a source"):
            repro.publish()
        with pytest.raises(ValueError, match="streaming-engine options"):
            repro.publish(
                source=io.StringIO("x"), sensitive="y", streaming=True, progress=7
            )


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


class TestStreamCLI:
    def test_end_to_end(self, adult_csv, tmp_path, capsys):
        src = tmp_path / "data.csv"
        src.write_text(adult_csv, newline="")
        out = tmp_path / "published.csv"
        code = stream_cli_main([
            str(src), "--sensitive", "Income", "--seed", "7",
            "--chunk-rows", "500", "--output", str(out), "--lam", "0.25",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["rows_read"] == 2500
        assert summary["params"]["lam"] == 0.25
        assert out.exists()

        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        expected = publish(table, strategy="sps", rng=7, lam=0.25)
        assert out.read_bytes().decode() == _csv_text(expected.published)

    def test_bad_inputs_exit_2(self, tmp_path, capsys):
        missing = tmp_path / "missing.csv"
        assert stream_cli_main([str(missing), "--sensitive", "X"]) == 2
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        assert stream_cli_main([str(empty), "--sensitive", "X"]) == 2
        data = tmp_path / "data.csv"
        data.write_text("a,b\n1,2\n")
        assert stream_cli_main([str(data), "--sensitive", "b", "--strategy", "nope"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err


# --------------------------------------------------------------------- #
# Service stream jobs
# --------------------------------------------------------------------- #


class TestServiceStreamJobs:
    @pytest.fixture()
    def csv_path(self, adult_csv, tmp_path):
        path = tmp_path / "adult.csv"
        path.write_text(adult_csv, newline="")
        return path

    def test_stream_job_matches_in_memory_backend(self, csv_path):
        from repro.service import AnonymizationService

        service = AnonymizationService()
        record = service.publish_stream(csv_path, "Income", "sps", seed=7, chunk_rows=400)
        assert record.status == "completed"
        assert record.spec.stream is True
        assert record.progress.get("phase") == "done"
        assert record.metadata["rows_read"] == 2500

        service.register_csv("mem", csv_path, sensitive="Income")
        in_memory = service.publish("mem", "sps", seed=7)
        assert record.published == in_memory.published

    def test_stream_job_with_output_and_snapshot(self, csv_path, tmp_path):
        from repro.service import AnonymizationService

        service = AnonymizationService()
        out = tmp_path / "out.csv"
        record = service.publish_stream(
            csv_path, "Income", "dp-laplace", seed=3, output=out
        )
        assert record.published is None and out.exists()

        snapshot = tmp_path / "snap.json"
        service.save(snapshot)
        restored = AnonymizationService(snapshot_path=snapshot)
        loaded = restored.job(record.job_id)
        assert loaded.spec.stream is True
        assert loaded.spec.source == str(csv_path)
        assert loaded.spec.output == str(out)
        assert loaded.progress.get("phase") == "done"

    def test_failed_stream_job_recorded(self, tmp_path):
        from repro.service import AnonymizationService
        from repro.service.registry import ServiceError

        service = AnonymizationService()
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n")  # header only
        with pytest.raises(ServiceError, match="failed"):
            service.publish_stream(bad, "b", "sps", seed=1)
        (record,) = service.jobs.records()
        assert record.status == "failed"
        assert "no data rows" in record.error

    def test_unknown_backend_rejected(self, csv_path):
        from repro.service import AnonymizationService
        from repro.service.registry import ServiceError

        with pytest.raises(ServiceError, match="unknown strategy"):
            AnonymizationService().publish_stream(csv_path, "Income", "nope")

    def test_engine_option_in_params_rejected_without_stranding_a_job(self, csv_path):
        from repro.service import AnonymizationService
        from repro.service.registry import ServiceError

        service = AnonymizationService()
        with pytest.raises(ServiceError, match="stream-job options"):
            service.publish_stream(
                csv_path, "Income", "sps", params={"chunk_rows": 500}
            )
        with pytest.raises(ServiceError, match="stream-job options"):
            service.publish_stream(
                csv_path, "Income", "sps", params={"delimiter": ";"}
            )
        assert len(service.jobs) == 0  # rejected before any record was added

    def test_unexpected_failure_still_marks_job_failed(self, csv_path, monkeypatch):
        # Exceptions outside the client-error classes must not strand the
        # pre-added record in "running".
        import repro.service.engine as engine_module
        from repro.service import AnonymizationService

        service = AnonymizationService()

        def boom(*args, **kwargs):
            raise TypeError("unexpected")

        monkeypatch.setattr("repro.stream.engine.stream_publish", boom)
        assert engine_module  # imported for monkeypatch target clarity
        with pytest.raises(TypeError, match="unexpected"):
            service.publish_stream(csv_path, "Income", "sps", seed=1)
        (record,) = service.jobs.records()
        assert record.status == "failed"
        assert "unexpected" in record.error

    def test_http_stream_publish(self, csv_path):
        import threading
        import urllib.request

        from repro.service import AnonymizationService
        from repro.service.http_api import make_server

        service = AnonymizationService()
        server = make_server(service, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            base = f"http://127.0.0.1:{server.server_address[1]}"
            body = json.dumps({
                "stream": True, "source": str(csv_path), "sensitive": "Income",
                "backend": "sps", "seed": 7, "chunk_rows": 500,
            }).encode()
            request = urllib.request.Request(f"{base}/publish", data=body, method="POST")
            job = json.load(urllib.request.urlopen(request))
            assert job["status"] == "completed"
            assert job["spec"]["stream"] is True
            assert job["progress"]["phase"] == "done"
            again = json.load(urllib.request.urlopen(f"{base}/jobs/{job['job_id']}"))
            assert again["progress"] == job["progress"]

            # The HTTP layer refuses to clobber existing server-side files.
            import urllib.error

            body = json.dumps({
                "stream": True, "source": str(csv_path), "sensitive": "Income",
                "backend": "sps", "output": str(csv_path),
            }).encode()
            request = urllib.request.Request(f"{base}/publish", data=body, method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400
            assert "already exists" in json.load(excinfo.value)["error"]
        finally:
            server.shutdown()


# --------------------------------------------------------------------- #
# Bench stream suite
# --------------------------------------------------------------------- #


class TestBenchStreamSuite:
    def test_tiny_suite_reports_byte_identity_and_memory(self):
        from repro.bench.runner import run_suite
        from repro.bench.schema import validate_report

        report = run_suite(
            "stream", tiny=True, seed=5,
            scenario_filter=["stream/sps/adult-1000/c256/r500"],
        )
        validate_report(report)
        (entry,) = report["scenarios"]
        assert entry["ops"]["byte_identical"] is True
        assert entry["ops"]["peak_tracked_streaming_bytes"] > 0
        assert entry["ops"]["rows_per_second"] > 0

    def test_scenarios_are_deterministic_pairs(self):
        from repro.bench.stream import stream_scenarios

        tiny = stream_scenarios(tiny=True)
        assert [s.name for s in tiny] == [s.name for s in stream_scenarios(tiny=True)]
        default = stream_scenarios(tiny=False)
        rows = [s.rows for s in default]
        assert all(pair[1] == 10 * pair[0] for pair in zip(rows[::2], rows[1::2]))
