"""Tests for the tail bounds and the Theorem-2 bound conversion."""

import math

import numpy as np
import pytest

from repro.core.bounds import (
    chebyshev_bound,
    chernoff_lower_bound,
    chernoff_upper_bound,
    convert_lambda_to_omega,
    convert_omega_to_lambda,
    markov_bound,
    reconstruction_error_bounds,
)
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.perturbation.uniform import perturb_table
from repro.reconstruction.mle import mle_frequencies


class TestChernoffBounds:
    def test_equation_5_value(self):
        assert chernoff_upper_bound(0.5, 100) == pytest.approx(math.exp(-0.25 * 100 / 2.5))

    def test_equation_6_value(self):
        assert chernoff_lower_bound(0.5, 100) == pytest.approx(math.exp(-0.25 * 100 / 2))

    def test_lower_bound_is_tighter_for_omega_below_one(self):
        for omega in (0.1, 0.5, 0.99):
            assert chernoff_lower_bound(omega, 50) < chernoff_upper_bound(omega, 50)

    def test_bounds_decrease_with_mu(self):
        assert chernoff_upper_bound(0.3, 1000) < chernoff_upper_bound(0.3, 100)
        assert chernoff_lower_bound(0.3, 1000) < chernoff_lower_bound(0.3, 100)

    def test_bounds_decrease_with_omega(self):
        assert chernoff_upper_bound(0.6, 100) < chernoff_upper_bound(0.2, 100)

    def test_lower_bound_rejects_omega_above_one(self):
        with pytest.raises(ValueError):
            chernoff_lower_bound(1.5, 100)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            chernoff_upper_bound(0.0, 10)
        with pytest.raises(ValueError):
            chernoff_upper_bound(0.5, 0)

    def test_bound_actually_bounds_the_tail(self):
        """Monte-Carlo sanity check that Theorem 3 is a valid upper bound."""
        rng = np.random.default_rng(0)
        n, q = 400, 0.3
        mu = n * q
        omega = 0.25
        trials = rng.binomial(n, q, size=4000)
        empirical_upper = np.mean((trials - mu) / mu > omega)
        empirical_lower = np.mean((trials - mu) / mu < -omega)
        assert empirical_upper <= chernoff_upper_bound(omega, mu)
        assert empirical_lower <= chernoff_lower_bound(omega, mu)


class TestOtherBounds:
    def test_chebyshev_caps_at_one(self):
        assert chebyshev_bound(0.01, 10, 1000) == 1.0

    def test_chebyshev_formula(self):
        assert chebyshev_bound(0.5, 100, 25) == pytest.approx(25 / (0.5 * 100) ** 2)

    def test_markov_formula(self):
        assert markov_bound(1.0, 10) == pytest.approx(0.5)

    def test_chernoff_tighter_than_chebyshev_for_large_mu(self):
        mu, omega = 500.0, 0.3
        variance = mu * 0.7  # Bernoulli-ish variance, smaller than mu
        assert chernoff_upper_bound(omega, mu) < chebyshev_bound(omega, mu, variance)


class TestBoundConversion:
    def test_roundtrip(self):
        kwargs = dict(subset_size=200, frequency=0.4, retention_probability=0.5, domain_size=10)
        omega = 0.37
        lam = convert_omega_to_lambda(omega, **kwargs)
        assert convert_lambda_to_omega(lam, **kwargs) == pytest.approx(omega)

    def test_theorem_2_relation(self):
        # lambda = omega mu / (|S| p f)
        subset_size, f, p, m = 100, 0.5, 0.2, 10
        mu = subset_size * (f * p + (1 - p) / m)
        omega = 0.2
        lam = convert_omega_to_lambda(omega, subset_size, f, p, m)
        assert lam == pytest.approx(omega * mu / (subset_size * p * f))

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            convert_omega_to_lambda(0.1, 100, 0.0, 0.5, 2)


class TestReconstructionErrorBounds:
    def test_smallest_is_lower_tail_for_moderate_lambda(self):
        bounds = reconstruction_error_bounds(0.3, 500, 0.5, 0.5, 2)
        assert bounds.lower is not None
        assert bounds.smallest == bounds.lower

    def test_large_lambda_drops_lower_tail(self):
        spec_lambda = 10.0  # far beyond 1 + ((1-p)/m)/(p f)
        bounds = reconstruction_error_bounds(spec_lambda, 500, 0.5, 0.5, 2)
        assert bounds.lower is None
        assert bounds.smallest == bounds.upper

    def test_bounds_grow_as_group_shrinks(self):
        big = reconstruction_error_bounds(0.3, 2000, 0.5, 0.5, 2)
        small = reconstruction_error_bounds(0.3, 50, 0.5, 0.5, 2)
        assert small.smallest > big.smallest

    def test_alternative_methods_are_valid_bounds(self):
        chernoff = reconstruction_error_bounds(0.3, 300, 0.5, 0.5, 2, method="chernoff")
        chebyshev = reconstruction_error_bounds(0.3, 300, 0.5, 0.5, 2, method="chebyshev")
        markov = reconstruction_error_bounds(0.3, 300, 0.5, 0.5, 2, method="markov")
        for bounds in (chernoff, chebyshev, markov):
            assert 0.0 < bounds.smallest <= 1.0
        assert markov.lower is None

    def test_chernoff_eventually_beats_chebyshev_for_large_groups(self):
        # The exponential fall-off wins once the deviation is many standard
        # deviations, i.e. for large subsets at the same relative error.
        chernoff = reconstruction_error_bounds(0.3, 5000, 0.5, 0.5, 2, method="chernoff")
        chebyshev = reconstruction_error_bounds(0.3, 5000, 0.5, 0.5, 2, method="chebyshev")
        assert chernoff.smallest < chebyshev.smallest

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            reconstruction_error_bounds(0.3, 100, 0.5, 0.5, 2, method="hoeffding")

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ValueError):
            reconstruction_error_bounds(0.0, 100, 0.5, 0.5, 2)

    def test_corollary_3_bounds_the_reconstruction_error_empirically(self):
        """The Chernoff-derived bound on Pr[(F'-f)/f > lambda] holds on simulated data."""
        schema = Schema(
            public=(Attribute("G", ("x",)),),
            sensitive=Attribute("S", ("s0", "s1", "s2", "s3", "s4")),
        )
        size, f, p, m, lam = 300, 0.4, 0.4, 5, 0.25
        records = [("x", "s0")] * int(size * f) + [("x", "s1")] * (size - int(size * f))
        table = Table.from_records(schema, records)
        over, under = 0, 0
        trials = 1500
        for seed in range(trials):
            published = perturb_table(table, p, rng=seed)
            estimate = mle_frequencies(published.sensitive_counts(), p)[0]
            relative = (estimate - f) / f
            over += relative > lam
            under += relative < -lam
        bounds = reconstruction_error_bounds(lam, size, f, p, m)
        assert over / trials <= bounds.upper + 0.02
        assert under / trials <= bounds.lower + 0.02
