"""Tests for the analysis layer: UP-vs-SPS utility and statistical learning."""

import numpy as np
import pytest

from repro.analysis.learning import NaiveBayesOnReconstruction, mine_rules_from_perturbed
from repro.analysis.utility import compare_up_and_sps
from repro.core.criterion import PrivacySpec
from repro.dataset.adult import generate_adult
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.perturbation.uniform import perturb_table
from repro.queries.workload import WorkloadConfig, generate_workload


@pytest.fixture(scope="module")
def adult():
    return generate_adult(12_000, seed=3)


class TestCompareUpAndSps:
    def test_sps_error_is_at_least_up_error_on_violating_data(self, adult):
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
        queries = generate_workload(adult, adult, WorkloadConfig(n_queries=80), rng=0)
        comparison = compare_up_and_sps(adult, spec, queries, runs=3, rng=0)
        assert comparison.up_error > 0
        # Sampling can only lose information, so on average SPS is no better
        # than UP (allow a small Monte-Carlo slack).
        assert comparison.sps_error >= comparison.up_error - 0.01
        assert comparison.relative_increase >= -0.05

    def test_runs_must_be_positive(self, adult):
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
        with pytest.raises(ValueError):
            compare_up_and_sps(adult, spec, [], runs=0)


class TestRuleMining:
    def test_planted_relationship_recovered(self):
        """A strong 1-D association survives perturbation + reconstruction."""
        schema = Schema(
            public=(Attribute("Job", ("smoker", "nonsmoker")),),
            sensitive=Attribute("Disease", ("lung", "other", "none")),
        )
        rng = np.random.default_rng(0)
        records = []
        for job, lung_rate in (("smoker", 0.7), ("nonsmoker", 0.05)):
            for _ in range(3000):
                roll = rng.random()
                disease = "lung" if roll < lung_rate else ("other" if roll < lung_rate + 0.1 else "none")
                records.append((job, disease))
        table = Table.from_records(schema, records)
        published = perturb_table(table, 0.3, rng=1)
        rules = mine_rules_from_perturbed(published, 0.3, min_support=0.1, min_confidence=0.5)
        matching = [
            r for r in rules if r.conditions_dict() == {"Job": "smoker"} and r.sensitive_value == "lung"
        ]
        assert matching, "expected the smoker -> lung rule to be recovered"
        assert matching[0].confidence == pytest.approx(0.7, abs=0.1)

    def test_thresholds_validated(self, adult):
        published = perturb_table(adult, 0.5, rng=0)
        with pytest.raises(ValueError):
            mine_rules_from_perturbed(published, 0.5, min_support=-0.1)
        with pytest.raises(ValueError):
            mine_rules_from_perturbed(published, 0.5, max_dimensionality=0)

    def test_empty_table_yields_no_rules(self):
        schema = Schema(
            public=(Attribute("A", ("x",)),),
            sensitive=Attribute("S", ("0", "1")),
        )
        empty = Table.from_records(schema, [])
        assert mine_rules_from_perturbed(empty, 0.5) == []


class TestNaiveBayes:
    def test_learner_beats_majority_class_on_perturbed_adult(self, adult):
        published = perturb_table(adult, 0.5, rng=4)
        model = NaiveBayesOnReconstruction(retention_probability=0.5).fit(published)
        accuracy = model.accuracy(adult)
        majority = max(adult.sensitive_frequencies())
        assert accuracy > majority + 0.02

    def test_predict_proba_is_a_distribution(self, adult):
        published = perturb_table(adult, 0.5, rng=4)
        model = NaiveBayesOnReconstruction(retention_probability=0.5).fit(published)
        records = [record[:-1] for record in adult.records()[:20]]
        probabilities = model.predict_proba(records)
        assert probabilities.shape == (20, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_unfitted_model_rejected(self):
        model = NaiveBayesOnReconstruction(retention_probability=0.5)
        with pytest.raises(RuntimeError):
            model.predict([["Bachelors", "Sales", "White", "Male"]])

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            NaiveBayesOnReconstruction(retention_probability=0.5, smoothing=-1.0)

    def test_wrong_record_width_rejected(self, adult):
        published = perturb_table(adult, 0.5, rng=4)
        model = NaiveBayesOnReconstruction(retention_probability=0.5).fit(published)
        with pytest.raises(ValueError):
            model.predict([["Bachelors", "Sales"]])
