"""Tests for the exact moments of O* and the MLE (Lemma 2 and Section 4.2)."""

import numpy as np
import pytest

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.perturbation.uniform import perturb_table
from repro.reconstruction.mle import mle_frequencies
from repro.reconstruction.variance import (
    expected_observed_count,
    mle_variance,
    observed_count_variance,
)


class TestExpectedObservedCount:
    def test_lemma_2i_formula(self):
        # |S| = 100, f = 0.3, p = 0.2, m = 10: E[O*] = 100 (0.06 + 0.08) = 14.
        assert expected_observed_count(100, 0.3, 0.2, 10) == pytest.approx(14.0)

    def test_zero_frequency_still_has_background_mass(self):
        assert expected_observed_count(100, 0.0, 0.2, 10) == pytest.approx(8.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            expected_observed_count(0, 0.5, 0.5, 2)
        with pytest.raises(ValueError):
            expected_observed_count(10, 1.5, 0.5, 2)


class TestVariances:
    def test_variance_positive_and_shrinks_relative_to_size(self):
        small = mle_variance(50, 0.4, 0.5, 5)
        large = mle_variance(5000, 0.4, 0.5, 5)
        assert small > large > 0

    def test_mle_variance_is_observed_variance_rescaled(self):
        subset_size, f, p, m = 200, 0.3, 0.4, 6
        observed = observed_count_variance(subset_size, f, p, m)
        assert mle_variance(subset_size, f, p, m) == pytest.approx(
            observed / (subset_size * p) ** 2
        )

    def test_no_perturbation_means_no_variance(self):
        assert observed_count_variance(100, 0.3, 1.0, 4) == pytest.approx(0.0, abs=1e-12)

    def test_empirical_moments_match(self):
        """Monte-Carlo check of both Lemma 2(i) and the Bernoulli-sum variance."""
        schema = Schema(
            public=(Attribute("G", ("x",)),),
            sensitive=Attribute("S", ("s0", "s1", "s2", "s3")),
        )
        f, size, p, m = 0.25, 400, 0.3, 4
        records = [("x", "s0")] * int(size * f) + [("x", "s1")] * (size - int(size * f))
        table = Table.from_records(schema, records)
        observed = []
        for seed in range(400):
            published = perturb_table(table, p, rng=seed)
            observed.append(published.sensitive_counts()[0])
        observed = np.asarray(observed, dtype=float)
        assert observed.mean() == pytest.approx(expected_observed_count(size, f, p, m), rel=0.05)
        assert observed.var() == pytest.approx(observed_count_variance(size, f, p, m), rel=0.2)

    def test_mle_variance_matches_empirical_estimator_spread(self):
        schema = Schema(
            public=(Attribute("G", ("x",)),),
            sensitive=Attribute("S", ("s0", "s1")),
        )
        f, size, p, m = 0.5, 300, 0.4, 2
        records = [("x", "s0")] * int(size * f) + [("x", "s1")] * (size - int(size * f))
        table = Table.from_records(schema, records)
        estimates = []
        for seed in range(400):
            published = perturb_table(table, p, rng=seed)
            estimates.append(mle_frequencies(published.sensitive_counts(), p)[0])
        empirical_variance = float(np.var(estimates))
        assert empirical_variance == pytest.approx(mle_variance(size, f, p, m), rel=0.25)
