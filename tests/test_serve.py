"""Unit tests for the serving layer: response cache and bounded dispatcher."""

import threading
import time

import pytest

from repro.serve.cache import CachedResponse, ResponseCache
from repro.serve.queue import BoundedDispatcher, QueueFullError
from repro.service.engine import AnonymizationService
from repro.store.base import NS_RESPONSE_CACHE


def _response(dataset: str, body: bytes = b'{"ok": true}') -> CachedResponse:
    return CachedResponse(
        dataset=dataset, status=200, content_type="application/json", body=body
    )


class TestCachedResponse:
    def test_json_round_trip(self):
        entry = _response("d", b'{"x": 1}')
        assert CachedResponse.from_json(entry.to_json()) == entry

    def test_from_json_rejects_missing_fields(self):
        with pytest.raises(KeyError):
            CachedResponse.from_json({"dataset": "d"})


class TestResponseCacheMemory:
    """The cache without a store (pure in-memory behaviour)."""

    def make(self, max_entries: int = 256) -> ResponseCache:
        return ResponseCache(store=None, max_entries=max_entries, persist=False)

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            ResponseCache(max_entries=0)

    def test_key_is_order_insensitive_in_params(self):
        cache = self.make()
        a = cache.key("audit", "d", {"lam": 0.3, "delta": 0.3})
        b = cache.key("audit", "d", {"delta": 0.3, "lam": 0.3})
        assert a == b
        assert a.startswith("audit|d|v0.0|")

    def test_hit_miss_counters(self):
        cache = self.make()
        key = cache.key("audit", "d", {})
        assert cache.get(key) is None
        cache.put(key, _response("d"))
        assert cache.get(key) == _response("d")
        assert cache.hits == 1 and cache.misses == 1

    def test_disabled_cache_never_stores_or_serves(self):
        cache = self.make()
        key = cache.key("audit", "d", {})
        cache.enabled = False
        cache.put(key, _response("d"))
        assert len(cache) == 0
        assert cache.get(key) is None
        assert cache.hits == 0 and cache.misses == 0

    def test_eviction_is_oldest_first(self):
        cache = self.make(max_entries=2)
        keys = [cache.key("audit", "d", {"i": i}) for i in range(3)]
        for key in keys:
            cache.put(key, _response("d"))
        assert cache.get(keys[0]) is None  # evicted
        assert cache.get(keys[1]) is not None
        assert cache.get(keys[2]) is not None
        assert cache.evictions == 1

    def test_invalidate_drops_only_that_dataset(self):
        cache = self.make()
        key_a = cache.key("audit", "a", {})
        key_b = cache.key("audit", "b", {})
        cache.put(key_a, _response("a"))
        cache.put(key_b, _response("b"))
        assert cache.invalidate("a") == 1
        assert cache.get(key_a) is None
        assert cache.get(key_b) is not None
        assert cache.invalidations == 1

    def test_invalidate_bumps_the_version_in_new_keys(self):
        cache = self.make()
        old_key = cache.key("audit", "d", {})
        cache.invalidate("d")
        new_key = cache.key("audit", "d", {})
        assert old_key != new_key  # stale entries are unreachable by keying

    def test_clear_keeps_counters(self):
        cache = self.make()
        key = cache.key("audit", "d", {})
        cache.put(key, _response("d"))
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_stats_payload_shape(self):
        cache = self.make()
        payload = cache.stats_payload()
        assert payload == {
            "enabled": True,
            "entries": 0,
            "max_entries": 256,
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
            "evictions": 0,
            "persisted": False,
        }


class TestResponseCacheAttached:
    """The cache attached to a live service (store-backed versioning)."""

    def test_attach_registers_the_invalidation_hook(self):
        service = AnonymizationService()
        cache = ResponseCache().attach(service)
        assert service.response_cache is cache
        service.register_synthetic("d", "adult", n_records=200, seed=1)
        key = cache.key("audit", "d", {})
        cache.put(key, _response("d"))
        service.register_synthetic("d", "adult", n_records=200, seed=2, replace=True)
        assert cache.get(key) is None  # the re-register invalidated it
        assert cache.invalidations == 1
        service.close()

    def test_reregister_changes_the_key_version(self):
        service = AnonymizationService()
        cache = ResponseCache().attach(service)
        service.register_synthetic("d", "adult", n_records=200, seed=1)
        cache.invalidate("d")  # refresh the version after the first register
        before = cache.key("audit", "d", {})
        service.register_synthetic("d", "adult", n_records=200, seed=2, replace=True)
        after = cache.key("audit", "d", {})
        assert before != after
        service.close()

    def test_stats_folds_in_the_cache_block(self):
        service = AnonymizationService()
        assert "response_cache" not in service.stats()
        cache = ResponseCache().attach(service)
        stats = service.stats()
        assert stats["response_cache"] == cache.stats_payload()
        # The pre-existing keys survive (backward compatible payload).
        for key in ("version", "n_datasets", "n_jobs"):
            assert key in stats
        service.close()

    def test_persisted_entry_survives_a_restart(self, tmp_path):
        path = tmp_path / "serve.db"
        service = AnonymizationService(snapshot_path=path)
        cache = ResponseCache().attach(service)
        service.register_synthetic("d", "adult", n_records=200, seed=1)
        cache.invalidate("d")  # adopt the registered version
        key = cache.key("audit", "d", {"lam": 0.3})
        cache.put(key, _response("d"))
        service.close()

        revived = AnonymizationService(snapshot_path=path)
        cache2 = ResponseCache().attach(revived)
        assert len(cache2) == 1
        assert cache2.get(key) == _response("d")
        revived.close()

    def test_restart_revalidation_drops_stale_entries(self, tmp_path):
        path = tmp_path / "serve.db"
        service = AnonymizationService(snapshot_path=path)
        cache = ResponseCache().attach(service)
        service.register_synthetic("d", "adult", n_records=200, seed=1)
        cache.invalidate("d")
        key = cache.key("audit", "d", {})
        cache.put(key, _response("d"))
        service.close()

        # The dataset changes while no cache is attached: nothing invalidates.
        mutated = AnonymizationService(snapshot_path=path)
        mutated.register_synthetic("d", "adult", n_records=200, seed=2, replace=True)
        mutated.close()

        revived = AnonymizationService(snapshot_path=path)
        cache2 = ResponseCache().attach(revived)
        assert len(cache2) == 0  # revalidation dropped the stale entry
        assert cache2.get(key) is None
        # The store was scrubbed too, not just the resident dict.
        assert list(revived.store.keys(NS_RESPONSE_CACHE)) == []
        revived.close()

    def test_corrupt_persisted_entry_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "serve.db"
        service = AnonymizationService(snapshot_path=path)
        service.store.put(NS_RESPONSE_CACHE, "audit|d|v1.0|{}", {"not": "a response"})
        cache = ResponseCache().attach(service)
        assert len(cache) == 0
        assert list(service.store.keys(NS_RESPONSE_CACHE)) == []
        service.close()


class TestBoundedDispatcher:
    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedDispatcher(workers=0)
        with pytest.raises(ValueError):
            BoundedDispatcher(queue_limit=0)

    def test_submit_resolves_the_future(self):
        dispatcher = BoundedDispatcher(workers=2).start()
        try:
            futures = [dispatcher.submit(lambda i=i: i * i) for i in range(8)]
            assert sorted(f.result(timeout=5) for f in futures) == [
                i * i for i in range(8)
            ]
            assert dispatcher.dispatched == 8
        finally:
            dispatcher.shutdown()

    def test_exceptions_propagate_through_the_future(self):
        dispatcher = BoundedDispatcher(workers=1).start()
        try:
            def boom():
                raise RuntimeError("kaput")

            future = dispatcher.submit(boom)
            with pytest.raises(RuntimeError, match="kaput"):
                future.result(timeout=5)
        finally:
            dispatcher.shutdown()

    def test_full_queue_rejects_immediately(self):
        dispatcher = BoundedDispatcher(workers=1, queue_limit=1, retry_after=7).start()
        release = threading.Event()
        try:
            dispatcher.submit(release.wait)  # occupies the single worker
            deadline = time.monotonic() + 5
            while dispatcher.depth and time.monotonic() < deadline:
                time.sleep(0.005)
            dispatcher.submit(release.wait)  # fills the single queue slot
            with pytest.raises(QueueFullError) as excinfo:
                dispatcher.submit(lambda: None)
            assert excinfo.value.limit == 1
            assert excinfo.value.retry_after == 7
            assert dispatcher.rejections == 1
        finally:
            release.set()
            dispatcher.shutdown()

    def test_queued_work_is_drained_on_shutdown(self):
        dispatcher = BoundedDispatcher(workers=1, queue_limit=4).start()
        release = threading.Event()
        dispatcher.submit(release.wait)
        queued = dispatcher.submit(lambda: "drained")
        release.set()
        dispatcher.shutdown()
        assert queued.result(timeout=1) == "drained"

    def test_submit_after_shutdown_rejects(self):
        dispatcher = BoundedDispatcher(workers=1).start()
        dispatcher.shutdown()
        with pytest.raises(QueueFullError):
            dispatcher.submit(lambda: None)

    def test_shutdown_is_idempotent(self):
        dispatcher = BoundedDispatcher(workers=1).start()
        dispatcher.shutdown()
        dispatcher.shutdown()

    def test_stats_payload_shape(self):
        dispatcher = BoundedDispatcher(workers=3, queue_limit=9)
        assert dispatcher.stats_payload() == {
            "workers": 3,
            "queue_limit": 9,
            "depth": 0,
            "dispatched": 0,
            "rejections": 0,
        }
