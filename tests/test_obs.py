"""Unit tests for :mod:`repro.obs`: spans, metrics, exporters, CLI logging.

The integration half — byte-identity under tracing, worker-count agreement,
the service's ``/metrics`` endpoint — lives in ``tests/test_obs_integration.py``.
"""

import io
import json
import logging
import sys

import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    Tracer,
    configure_cli_logging,
    current_tracer,
    parse_prometheus,
    record_build_info,
    render_prometheus,
    runtime_environment,
    span,
    validate_trace,
    write_trace,
)
from repro.obs.export import iter_trace_lines, logfmt, logfmt_span
from repro.obs.metrics import BUILD_INFO, MetricError, MetricsRegistry


# --------------------------------------------------------------------- #
# Spans and tracer
# --------------------------------------------------------------------- #


class TestSpan:
    def test_measures_without_a_tracer(self):
        assert current_tracer() is None
        with span("work", strategy="sps") as sp:
            pass
        assert sp.duration >= 0.0
        assert sp.attributes == {"strategy": "sps"}

    def test_records_nested_spans_with_parentage(self):
        with Tracer() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        names = [record.name for record in tracer.spans]
        assert names == ["inner", "outer"]  # completion order
        inner, outer = tracer.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.start >= 0.0 and inner.duration >= 0.0

    def test_set_merges_attributes_and_chains(self):
        with Tracer() as tracer:
            with span("stage", a=1) as sp:
                assert sp.set(b=2) is sp
        (record,) = tracer.spans
        assert record.attributes == {"a": 1, "b": 2}

    def test_exception_sets_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer:
                with span("boom"):
                    raise RuntimeError("nope")
        (record,) = tracer.spans
        assert record.attributes["error"] == "RuntimeError"

    def test_elapsed_valid_while_open(self):
        with span("tick") as sp:
            first = sp.elapsed()
            second = sp.elapsed()
        assert 0.0 <= first <= second

    def test_deactivation_stops_recording(self):
        tracer = Tracer()
        with tracer:
            with span("inside"):
                pass
        with span("outside"):
            pass
        assert [record.name for record in tracer.spans] == ["inside"]


class TestTracer:
    def test_record_parents_under_current_span(self):
        with Tracer() as tracer:
            with span("enforce"):
                chunk = tracer.record("chunk", 0.01, attributes={"chunk_id": 0})
        enforce = next(r for r in tracer.spans if r.name == "enforce")
        assert chunk.parent_id == enforce.span_id
        assert chunk.duration == 0.01

    def test_record_clamps_underflowing_start(self):
        # Worker-side durations come from a different clock domain; a
        # duration longer than the tracer's lifetime must not go negative.
        with Tracer() as tracer:
            record = tracer.record("chunk", 999.0)
        assert record.start == 0.0

    def test_bound_span_records_without_activation(self):
        tracer = Tracer()
        with tracer.span("standalone"):
            pass
        assert current_tracer() is None
        assert [record.name for record in tracer.spans] == ["standalone"]

    def test_live_stream_gets_logfmt_lines(self):
        stream = io.StringIO()
        with Tracer(live=stream):
            with span("stage", n=2):
                pass
        (line,) = stream.getvalue().splitlines()
        assert line.startswith("span=stage ")
        assert "n=2" in line

    def test_span_ids_unique_and_increasing(self):
        with Tracer() as tracer:
            for _ in range(5):
                with span("s"):
                    pass
        ids = [record.span_id for record in tracer.spans]
        assert ids == sorted(ids) and len(set(ids)) == 5


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #


class TestMetrics:
    def test_counter_increments_and_reads_back(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs", labelnames=("kind",))
        assert counter.value(kind="a") == 0.0
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        assert counter.value(kind="a") == 3.5
        assert counter.value(kind="b") == 0.0

    def test_counter_rejects_decrease_and_wrong_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs", labelnames=("kind",))
        with pytest.raises(MetricError):
            counter.inc(-1.0, kind="a")
        with pytest.raises(MetricError):
            counter.inc(other="a")

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "queue depth")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value() == 2.5

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 100.0):
            histogram.observe(value)
        ((labels, holder),) = list(histogram.samples())
        assert labels == {}
        assert holder.cumulative() == [1, 3, 4]  # 100.0 only lands in +Inf
        assert holder.count == 5
        assert holder.sum == pytest.approx(106.05)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "hits")
        second = registry.counter("hits_total", "hits")
        assert first is second

    def test_kind_or_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "hits", labelnames=("kind",))
        with pytest.raises(MetricError):
            registry.gauge("hits_total", "hits", labelnames=("kind",))
        with pytest.raises(MetricError):
            registry.counter("hits_total", "hits", labelnames=("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("bad-name", "nope")
        with pytest.raises(MetricError):
            registry.counter("ok_total", "nope", labelnames=("bad-label",))

    def test_disable_makes_updates_noops(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits")
        registry.disable()
        counter.inc()
        assert counter.value() == 0.0
        registry.enable()
        counter.inc()
        assert counter.value() == 1.0

    def test_reset_clears_samples_keeps_declarations(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits")
        counter.inc(3.0)
        registry.reset()
        assert counter.value() == 0.0
        assert registry.counter("hits_total", "hits") is counter


# --------------------------------------------------------------------- #
# JSONL traces
# --------------------------------------------------------------------- #


def _sample_tracer() -> Tracer:
    with Tracer() as tracer:
        with span("publish", strategy="sps"):
            with span("enforce"):
                tracer.record("chunk", 0.002, attributes={"chunk_id": 0})
    return tracer


class TestTraceExport:
    def test_round_trip_through_a_file(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        write_trace(tracer, path)
        assert validate_trace(path) == 3

        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["trace_schema_version"] == TRACE_SCHEMA_VERSION
        assert header["environment"] == runtime_environment()
        names = [json.loads(line)["name"] for line in lines[1:]]
        assert names == ["chunk", "enforce", "publish"]

    def test_write_to_open_stream(self):
        stream = io.StringIO()
        write_trace(_sample_tracer(), stream)
        stream.seek(0)
        assert validate_trace(stream) == 3

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceSchemaError, match="empty"):
            validate_trace([])

    def test_validator_lists_every_problem(self):
        header = json.loads(next(iter_trace_lines(Tracer())))
        bad_spans = [
            {"type": "span", "span_id": 1, "parent_id": None, "name": "a",
             "start": 0.0, "duration": -1.0, "attributes": {}},
            {"type": "span", "span_id": 1, "parent_id": 99, "name": "",
             "start": 0.0, "duration": 0.0, "attributes": {}},
        ]
        with pytest.raises(TraceSchemaError) as err:
            validate_trace([header, *bad_spans])
        message = str(err.value)
        assert "duration must be a non-negative number" in message
        assert "duplicate span_id 1" in message
        assert "name must be a non-empty string" in message
        assert "never appears as a span_id" in message

    def test_wrong_schema_version_rejected(self):
        header = json.loads(next(iter_trace_lines(Tracer())))
        header["trace_schema_version"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(TraceSchemaError, match="trace_schema_version"):
            validate_trace([header])

    def test_malformed_json_line_names_the_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type": "header"}\nnot json\n')
        with pytest.raises(TraceSchemaError, match="line 2"):
            validate_trace(path)


class TestLogfmt:
    def test_quoting_and_formatting(self):
        line = logfmt({
            "span": "enforce", "seconds": 0.25, "ok": True,
            "note": "two words", "empty": "", "eq": "a=b",
        })
        assert line == 'span=enforce seconds=0.25 ok=true note="two words" empty="" eq="a=b"'

    def test_escapes_backslash_and_quote(self):
        assert logfmt({"v": 'say "hi" \\'}) == 'v="say \\"hi\\" \\\\"'

    def test_span_line_merges_attributes(self):
        tracer = _sample_tracer()
        publish = next(r for r in tracer.spans if r.name == "publish")
        line = logfmt_span(publish)
        assert line.startswith("span=publish ")
        assert "strategy=sps" in line


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #


class TestPrometheus:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        runs = registry.counter("runs_total", "runs", labelnames=("path",))
        depth = registry.gauge("depth", "queue depth")
        latency = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        runs.inc(2.0, path="stream")
        latency.observe(0.05)
        latency.observe(0.5)

        text = render_prometheus(registry)
        families = parse_prometheus(text)

        assert families["runs_total"] == [('runs_total{path="stream"}', 2.0)]
        # A label-less metric with no samples still renders (as 0) so a
        # scrape always sees the full instrument set.
        assert families["depth"] == [("depth", 0.0)]
        samples = dict(families["lat_seconds"])
        assert samples['lat_seconds_bucket{le="0.1"}'] == 1.0
        assert samples['lat_seconds_bucket{le="1"}'] == 2.0
        assert samples['lat_seconds_bucket{le="+Inf"}'] == 2.0
        assert samples["lat_seconds_count"] == 2.0
        assert samples["lat_seconds_sum"] == pytest.approx(0.55)

    def test_unsampled_labeled_family_skipped(self):
        registry = MetricsRegistry()
        registry.counter("never_total", "never sampled", labelnames=("kind",))
        assert "never_total" not in render_prometheus(registry)

    def test_parser_is_strict(self):
        with pytest.raises(ValueError, match="newline"):
            parse_prometheus("# TYPE a counter\na 1")
        with pytest.raises(ValueError, match="no preceding TYPE"):
            parse_prometheus("orphan 1\n")
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus("# TYPE a wibble\na 1\n")
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("# TYPE a counter\na one\n")


# --------------------------------------------------------------------- #
# Environment record
# --------------------------------------------------------------------- #


class TestEnvironment:
    def test_canonical_keys_and_types(self):
        env = runtime_environment()
        assert set(env) == {"python", "numpy", "platform", "repro_version", "cpu_count"}
        for key in ("python", "numpy", "platform", "repro_version"):
            assert isinstance(env[key], str) and env[key]
        assert isinstance(env["cpu_count"], int) and env["cpu_count"] >= 1

    def test_cached_within_the_process(self):
        assert runtime_environment() is runtime_environment()

    def test_record_build_info_publishes_the_gauge(self):
        record_build_info()
        labels = {key: str(value) for key, value in runtime_environment().items()}
        assert BUILD_INFO.value(**labels) == 1.0


# --------------------------------------------------------------------- #
# CLI logging
# --------------------------------------------------------------------- #


class TestConfigureCliLogging:
    @pytest.fixture(autouse=True)
    def _restore_logger(self):
        logger = logging.getLogger("repro")
        state = (list(logger.handlers), logger.level, logger.propagate)
        yield
        logger.handlers, logger.level, logger.propagate = state[0], state[1], state[2]

    def _cli_handlers(self):
        logger = logging.getLogger("repro")
        return [h for h in logger.handlers if getattr(h, "_repro_cli", False)]

    def test_installs_one_stderr_handler_idempotently(self):
        configure_cli_logging()
        configure_cli_logging(verbose=True)
        (handler,) = self._cli_handlers()
        assert handler.stream is sys.stderr
        assert logging.getLogger("repro").propagate is False

    def test_level_mapping(self):
        logger = logging.getLogger("repro")
        configure_cli_logging()
        assert logger.level == logging.INFO
        configure_cli_logging(verbose=True)
        assert logger.level == logging.DEBUG
        configure_cli_logging(quiet=True)
        assert logger.level == logging.ERROR

    def test_rebinds_to_current_stderr(self, capsys):
        # capsys swaps sys.stderr per test; a second configure call must
        # follow it (without flushing the stale, possibly closed stream).
        configure_cli_logging()
        logging.getLogger("repro.test").info("hello from the hierarchy")
        assert "repro.test: hello from the hierarchy" in capsys.readouterr().err
