"""Tests for private count queries and the NIR ratio attack (Section 2)."""

import numpy as np
import pytest

from repro.dataset.adult import EXAMPLE_GROUP, generate_adult
from repro.dp.attack import (
    disclosure_occurs,
    expected_ratio,
    ratio_error_indicator,
    ratio_variance,
    run_ratio_attack,
)
from repro.dp.mechanisms import LaplaceMechanism
from repro.dp.queries import PrivateCountQuerier


class TestPrivateCountQuerier:
    def test_true_count_matches_table(self, small_table):
        querier = PrivateCountQuerier(small_table, LaplaceMechanism(epsilon=1.0), rng=0)
        assert querier.true_count({"Gender": "male", "Job": "eng"}) == 8

    def test_noisy_count_tracks_budget(self, small_table):
        querier = PrivateCountQuerier(small_table, LaplaceMechanism(epsilon=0.5), rng=0)
        querier.noisy_count({"Job": "eng"})
        querier.noisy_count({"Job": "eng"}, "d0")
        assert querier.queries_answered == 2
        assert querier.epsilon_spent == pytest.approx(1.0)

    def test_noisy_count_is_noisy_but_centered(self, small_table):
        answers = []
        for seed in range(300):
            querier = PrivateCountQuerier(small_table, LaplaceMechanism(epsilon=1.0), rng=seed)
            answers.append(querier.noisy_count({"Job": "eng"}))
        assert np.mean(answers) == pytest.approx(12, abs=0.5)
        assert np.std(answers) > 0


class TestAnalyticalFormulas:
    def test_lemma_1_mean(self):
        assert expected_ratio(100, 50, noise_variance=8) == pytest.approx(0.5 * (1 + 8 / 100**2))

    def test_lemma_1_variance(self):
        expected = (8 / 100**2) * (1 + 50**2 / 100**2)
        assert ratio_variance(100, 50, noise_variance=8) == pytest.approx(expected)

    def test_corollary_2_table_2_values(self):
        # Spot-check entries of the paper's Table 2.
        assert ratio_error_indicator(10, 5000) == pytest.approx(0.000008)
        assert ratio_error_indicator(20, 500) == pytest.approx(0.0032)
        assert ratio_error_indicator(200, 100) == pytest.approx(8.0)

    def test_rule_of_thumb(self):
        assert disclosure_occurs(20, 500)  # b/x = 0.04 <= 1/20
        assert not disclosure_occurs(200, 500)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            expected_ratio(0, 0, 1)
        with pytest.raises(ValueError):
            expected_ratio(10, 20, 1)  # y > x impossible for nested queries
        with pytest.raises(ValueError):
            ratio_error_indicator(-1, 100)


class TestRatioAttack:
    @pytest.fixture(scope="class")
    def adult(self):
        return generate_adult(20_000, seed=20150323)

    def test_low_privacy_recovers_the_rule(self, adult):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=2.0)  # b = 4
        result = run_ratio_attack(adult, EXAMPLE_GROUP, ">50K", mechanism, trials=10, rng=0)
        assert result.true_confidence == pytest.approx(0.8383, abs=0.001)
        assert result.confidence_mean == pytest.approx(result.true_confidence, abs=0.05)
        assert result.error_q1_mean < 0.05

    def test_high_privacy_destroys_both_utility_and_the_rule(self, adult):
        mechanism = LaplaceMechanism(epsilon=0.01, sensitivity=2.0)  # b = 200
        result = run_ratio_attack(adult, EXAMPLE_GROUP, ">50K", mechanism, trials=10, rng=0)
        assert result.error_q1_mean > 0.15  # noisy answers are useless
        # and the confidence estimate is far less reliable than at eps = 0.5
        assert result.confidence_se > 0.02

    def test_disclosure_sharpens_with_epsilon(self, adult):
        gaps = []
        for epsilon in (0.01, 0.1, 0.5):
            mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=2.0)
            result = run_ratio_attack(adult, EXAMPLE_GROUP, ">50K", mechanism, trials=20, rng=1)
            gaps.append(result.confidence_gap)
        assert gaps[2] < gaps[0]

    def test_empty_target_group_rejected(self, adult):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=2.0)
        impossible = dict(EXAMPLE_GROUP, Education="Preschool", Occupation="Armed-Forces")
        if adult.count(impossible) == 0:
            with pytest.raises(ValueError):
                run_ratio_attack(adult, impossible, ">50K", mechanism, rng=0)

    def test_invalid_trials_rejected(self, adult):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=2.0)
        with pytest.raises(ValueError):
            run_ratio_attack(adult, EXAMPLE_GROUP, ">50K", mechanism, trials=0)
