"""Tests for the rho1-rho2 privacy helper."""

import math

import pytest

from repro.perturbation.rho_privacy import (
    amplification_factor,
    breach_threshold,
    max_retention_for_rho_privacy,
    satisfies_rho_privacy,
)


class TestAmplificationFactor:
    def test_known_value(self):
        # p = 0.2, m = 10: gamma = 0.28 / 0.08 = 3.5
        assert amplification_factor(0.2, 10) == pytest.approx(3.5)

    def test_no_perturbation_gives_infinite_amplification(self):
        assert amplification_factor(1.0, 5) == math.inf

    def test_monotone_in_p(self):
        assert amplification_factor(0.1, 10) < amplification_factor(0.5, 10)

    def test_monotone_in_m(self):
        assert amplification_factor(0.5, 5) < amplification_factor(0.5, 50)


class TestBreachThreshold:
    def test_known_value(self):
        # rho1 = 0.1, rho2 = 0.5: threshold = (0.5/0.5) * (0.9/0.1) = 9
        assert breach_threshold(0.1, 0.5) == pytest.approx(9.0)

    def test_invalid_rhos_rejected(self):
        with pytest.raises(ValueError):
            breach_threshold(0.0, 0.5)
        with pytest.raises(ValueError):
            breach_threshold(0.5, 0.5)
        with pytest.raises(ValueError):
            breach_threshold(0.6, 0.5)


class TestRetentionChoice:
    def test_max_retention_is_tight(self):
        m, rho1, rho2 = 10, 0.1, 0.5
        p_max = max_retention_for_rho_privacy(m, rho1, rho2)
        assert satisfies_rho_privacy(p_max, m, rho1, rho2)
        assert not satisfies_rho_privacy(min(0.999, p_max + 0.01), m, rho1, rho2)

    def test_known_closed_form(self):
        # threshold = 9, m = 10: p_max = 8 / 18
        assert max_retention_for_rho_privacy(10, 0.1, 0.5) == pytest.approx(8 / 18)

    def test_impossible_requirement_gives_zero(self):
        # rho2 barely above rho1 makes the threshold <= 1: no positive p works.
        assert max_retention_for_rho_privacy(10, 0.5, 0.500001) == pytest.approx(0.0, abs=1e-3)

    def test_larger_domain_requires_smaller_p(self):
        # gamma = 1 + p m / (1 - p) grows with m, so the same threshold forces a smaller p.
        small = max_retention_for_rho_privacy(5, 0.1, 0.5)
        large = max_retention_for_rho_privacy(50, 0.1, 0.5)
        assert large < small

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValueError):
            max_retention_for_rho_privacy(1, 0.1, 0.5)
