"""Tests for the uniform-perturbation matrix P (Equation 3)."""

import numpy as np
import pytest

from repro.perturbation.matrix import PerturbationMatrix


class TestConstruction:
    def test_valid_parameters(self):
        matrix = PerturbationMatrix(0.2, 10)
        assert matrix.retention_probability == 0.2
        assert matrix.domain_size == 10

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.1])
    def test_invalid_retention_rejected(self, p):
        with pytest.raises(ValueError):
            PerturbationMatrix(p, 5)

    def test_retention_of_one_allowed(self):
        assert PerturbationMatrix(1.0, 3).off_diagonal == 0.0

    @pytest.mark.parametrize("m", [0, 1, -2])
    def test_invalid_domain_rejected(self, m):
        with pytest.raises(ValueError):
            PerturbationMatrix(0.5, m)


class TestMatrixValues:
    def test_entries_match_equation_3(self):
        matrix = PerturbationMatrix(0.2, 10)
        array = matrix.as_array()
        assert array[0, 0] == pytest.approx(0.2 + 0.8 / 10)
        assert array[3, 7] == pytest.approx(0.8 / 10)

    def test_columns_are_stochastic(self):
        array = PerturbationMatrix(0.37, 7).as_array()
        assert np.allclose(array.sum(axis=0), 1.0)

    def test_matrix_is_symmetric(self):
        array = PerturbationMatrix(0.5, 4).as_array()
        assert np.allclose(array, array.T)

    def test_example_2_numbers(self):
        """Example 2 of the paper: p = 0.2, m = 10 gives E[F*] coefficients 0.28/0.08."""
        matrix = PerturbationMatrix(0.2, 10)
        assert matrix.diagonal == pytest.approx(0.28)
        assert matrix.off_diagonal == pytest.approx(0.08)


class TestInverse:
    @pytest.mark.parametrize("p,m", [(0.1, 2), (0.5, 10), (0.9, 50), (1.0, 3)])
    def test_closed_form_inverse_matches_numpy(self, p, m):
        matrix = PerturbationMatrix(p, m)
        assert np.allclose(matrix.inverse(), np.linalg.inv(matrix.as_array()))

    def test_inverse_times_matrix_is_identity(self):
        matrix = PerturbationMatrix(0.3, 6)
        assert np.allclose(matrix.inverse() @ matrix.as_array(), np.eye(6), atol=1e-12)


class TestFrequencyMaps:
    def test_apply_matches_matrix_multiplication(self):
        matrix = PerturbationMatrix(0.4, 5)
        frequencies = np.array([0.5, 0.2, 0.1, 0.1, 0.1])
        assert np.allclose(
            matrix.apply_to_frequencies(frequencies), matrix.as_array() @ frequencies
        )

    def test_invert_undoes_apply(self):
        matrix = PerturbationMatrix(0.25, 8)
        frequencies = np.full(8, 1 / 8)
        frequencies[0] = 0.3
        frequencies[1:] = 0.7 / 7
        observed = matrix.apply_to_frequencies(frequencies)
        assert np.allclose(matrix.invert_frequencies(observed), frequencies)

    def test_shape_validation(self):
        matrix = PerturbationMatrix(0.5, 3)
        with pytest.raises(ValueError):
            matrix.apply_to_frequencies(np.ones(4))
        with pytest.raises(ValueError):
            matrix.invert_frequencies(np.ones(2))

    def test_equality(self):
        assert PerturbationMatrix(0.5, 3) == PerturbationMatrix(0.5, 3)
        assert PerturbationMatrix(0.5, 3) != PerturbationMatrix(0.5, 4)
