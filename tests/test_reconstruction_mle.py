"""Tests for the MLE frequency reconstruction (Theorem 1 / Lemma 2)."""

import numpy as np
import pytest

from repro.dataset.table import Table
from repro.perturbation.uniform import perturb_table
from repro.reconstruction.mle import (
    mle_frequencies,
    mle_frequencies_clipped,
    mle_frequencies_matrix,
    mle_frequency,
    reconstruct_counts,
)


class TestClosedForm:
    def test_example_2_formula(self):
        """Example 2: p = 0.2, m = 10, estimate = (f* - 0.08) / 0.2."""
        estimate = mle_frequency(observed_count=28, subset_size=100, retention_probability=0.2, domain_size=10)
        assert estimate == pytest.approx((0.28 - 0.08) / 0.2)

    def test_perfect_retention_recovers_observed(self):
        estimate = mle_frequency(30, 100, retention_probability=1.0, domain_size=4)
        assert estimate == pytest.approx(0.3)

    def test_zero_subset_rejected(self):
        with pytest.raises(ValueError):
            mle_frequency(0, 0, 0.5, 2)


class TestVectorForms:
    def test_closed_form_equals_matrix_form(self):
        counts = np.array([40.0, 25.0, 20.0, 15.0])
        a = mle_frequencies(counts, 0.3)
        b = mle_frequencies_matrix(counts, 0.3)
        assert np.allclose(a, b)

    def test_estimates_sum_to_one(self):
        counts = np.array([10.0, 20.0, 5.0, 65.0])
        assert mle_frequencies(counts, 0.45).sum() == pytest.approx(1.0)

    def test_uniform_observed_gives_uniform_estimate(self):
        counts = np.full(5, 20.0)
        assert np.allclose(mle_frequencies(counts, 0.3), 0.2)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            mle_frequencies(np.array([1.0, -1.0]), 0.5)

    def test_empty_subset_rejected(self):
        with pytest.raises(ValueError):
            mle_frequencies(np.zeros(3), 0.5)

    def test_wrong_domain_size_rejected(self):
        with pytest.raises(ValueError):
            mle_frequencies(np.ones(3), 0.5, domain_size=4)

    def test_raw_estimate_can_be_negative(self):
        # An SA value observed far below its background rate yields a negative MLE.
        counts = np.array([0.0, 100.0])
        estimates = mle_frequencies(counts, 0.2, 2)
        assert estimates[0] < 0

    def test_clipped_estimate_is_a_distribution(self):
        counts = np.array([0.0, 100.0, 3.0])
        clipped = mle_frequencies_clipped(counts, 0.2, 3)
        assert (clipped >= 0).all()
        assert clipped.sum() == pytest.approx(1.0)


class TestUnbiasedness:
    def test_estimator_is_unbiased_over_many_perturbations(self, small_table):
        """Lemma 2(iii): E[F'] = f, checked empirically on the male-engineer group."""
        p = 0.3
        mask = small_table.match_public({"Gender": "male", "Job": "eng"})
        true_frequencies = small_table.sensitive_frequencies(mask)
        estimates = []
        for seed in range(300):
            published = perturb_table(small_table, p, rng=seed)
            counts = published.sensitive_counts(mask)
            estimates.append(mle_frequencies(counts, p))
        mean_estimate = np.mean(estimates, axis=0)
        assert np.allclose(mean_estimate, true_frequencies, atol=0.05)

    def test_accuracy_improves_with_subset_size(self, binary_schema):
        """The law-of-large-numbers gap the paper exploits (Section 1.2, Question 2)."""
        p = 0.3
        rng = np.random.default_rng(0)

        def error_for(size: int) -> float:
            records = [("a", "high")] * (size // 2) + [("a", "low")] * (size - size // 2)
            table = Table.from_records(binary_schema, records)
            errors = []
            for seed in range(60):
                published = perturb_table(table, p, rng=rng.integers(0, 2**32))
                estimate = mle_frequencies(published.sensitive_counts(), p)[1]
                errors.append(abs(estimate - 0.5))
            return float(np.mean(errors))

        assert error_for(2000) < error_for(40)


class TestReconstructCounts:
    def test_counts_scale_frequencies(self):
        counts = np.array([30.0, 70.0])
        reconstructed = reconstruct_counts(counts, 0.5)
        assert reconstructed.sum() == pytest.approx(100.0)

    def test_clipped_counts_are_non_negative(self):
        counts = np.array([0.0, 100.0])
        reconstructed = reconstruct_counts(counts, 0.2, clip=True)
        assert (reconstructed >= 0).all()
