"""Property tests: documents round-trip through every storage connector.

For arbitrary JSON documents, tables, job records and delta states,
hypothesis asserts the value read back from a connector equals the value
written — across the memory, SQLite and JSON-snapshot backends, and across
the legacy JSON→SQLite migration (which must also reproduce versions and
counters exactly).  Because :func:`repro.store.base.encode_value` canonises
at the transaction boundary, all backends are held to the *same* round-trip,
not three backend-specific ones.

Profiles mirror ``tests/test_delta_properties.py``: CI runs the
``derandomize=True`` profile for reproducible runs; locally hypothesis keeps
its randomized search.
"""

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.delta.state import DeltaState  # noqa: E402
from repro.dataset.adult import generate_adult  # noqa: E402
from repro.service.models import (  # noqa: E402
    JobRecord,
    JobSpec,
    table_from_json,
    table_to_json,
)
from repro.store import (  # noqa: E402
    JsonSnapshotConnector,
    MemoryConnector,
    SqliteConnector,
    migrate_json_to_sqlite,
)

settings.register_profile("ci", derandomize=True, max_examples=25, deadline=None)
settings.register_profile("local", max_examples=50, deadline=None)
settings.load_profile(
    "ci" if os.environ.get("CI") else os.environ.get("HYPOTHESIS_PROFILE", "local")
)

# JSON-safe scalars: ints within the exact-float window, finite floats, text.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
documents = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-.", min_size=1, max_size=12
)


@contextmanager
def _fresh_backends():
    """One connector per backend over a per-example scratch directory.

    hypothesis shares pytest fixtures across examples, so each example gets
    its own temporary directory instead of ``tmp_path``.
    """
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        yield [
            MemoryConnector(),
            SqliteConnector(base / "prop.db"),
            JsonSnapshotConnector(base / "prop.json"),
        ]


@given(key=names, value=documents)
def test_documents_round_trip_identically_through_every_backend(key, value):
    canonical = json.loads(json.dumps(value))
    with _fresh_backends() as backends:
        for connector in backends:
            connector.open()
            connector.put("docs", key, value)
            assert connector.get("docs", key).value == canonical
            connector.close()


@given(n=st.integers(min_value=1, max_value=60), seed=st.integers(0, 50))
def test_tables_round_trip_through_every_backend(n, seed):
    table = generate_adult(n, seed=seed)
    with _fresh_backends() as backends:
        for connector in backends:
            connector.open()
            connector.put("datasets", "t", table_to_json(table))
            restored = table_from_json(connector.get("datasets", "t").value)
            assert restored == table
            connector.close()


job_specs = st.builds(
    JobSpec,
    dataset=names,
    backend=st.sampled_from(["sps", "uniform", "dp-laplace"]),
    params=st.dictionaries(names, st.floats(0.01, 1.0, allow_nan=False), max_size=3),
    seed=st.integers(0, 2**31),
    chunk_size=st.integers(1, 10_000),
    max_workers=st.integers(1, 16),
)


@given(spec=job_specs, status=st.sampled_from(["completed", "failed", "interrupted"]))
def test_job_records_round_trip_through_every_backend(spec, status):
    record = JobRecord(job_id="job-0042", spec=spec, status=status)
    with _fresh_backends() as backends:
        for connector in backends:
            connector.open()
            connector.put("jobs", record.job_id, record.to_json())
            restored = JobRecord.from_json(connector.get("jobs", record.job_id).value)
            assert restored == record
            connector.close()


delta_states = st.builds(
    DeltaState,
    strategy=st.sampled_from(["sps", "dp-laplace"]),
    params=st.dictionaries(names, st.floats(0.01, 1.0, allow_nan=False), max_size=2),
    seed=st.integers(0, 2**31),
    chunk_size=st.integers(1, 500),
    chunk_rows=st.integers(1, 500),
    n_rows=st.integers(1, 10_000),
    sensitive=st.just("Disease"),
    header=st.just(("City", "Disease")),
    groups=st.lists(
        st.tuples(
            st.tuples(st.sampled_from(["athens", "bergen", "cairo"])),
            st.dictionaries(
                st.sampled_from(["cold", "flu"]), st.integers(1, 99),
                min_size=1, max_size=2,
            ),
        ),
        max_size=4,
    ).map(tuple),
    chunk_row_counts=st.lists(st.integers(0, 50), max_size=6).map(tuple),
    output=st.just("published.csv"),
)


@given(state=delta_states)
def test_delta_states_round_trip_through_every_backend(state):
    with _fresh_backends() as backends:
        for connector in backends:
            connector.open()
            connector.put("deltas", "living", state.to_json())
            restored = DeltaState.from_json(connector.get("deltas", "living").value)
            assert restored == state
            connector.close()


@given(
    entries=st.dictionaries(names, documents, min_size=1, max_size=5),
    next_job_id=st.integers(1, 1000),
)
def test_legacy_v1_migration_preserves_documents_and_counter(entries, next_job_id):
    with tempfile.TemporaryDirectory() as tmp:
        source = Path(tmp) / "legacy.json"
        source.write_text(json.dumps({
            "version": 1,
            "datasets": entries,
            "jobs": [],
            "next_job_id": next_job_id,
        }))
        store = migrate_json_to_sqlite(source, Path(tmp) / "migrated.db")
        try:
            canonical = json.loads(json.dumps(entries))
            for key, value in canonical.items():
                stored = store.get("datasets", key)
                assert stored.value == value
                assert stored.version == 1
            # next_job_id N means ids 1..N-1 were issued; the next id is N.
            assert store.next_value("job_ids") == next_job_id
        finally:
            store.close()
