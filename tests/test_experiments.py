"""Tests for the experiment harness (shapes of the paper's tables and figures)."""

import pytest

from repro.experiments.aggregation import run_aggregation_impact
from repro.experiments.config import ExperimentConfig
from repro.experiments.error_sweep import run_error_sweep
from repro.experiments.figure1 import run_figure1
from repro.experiments.runner import EXPERIMENTS, main, run_experiment
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import TABLE2_ANSWERS, TABLE2_SCALES, run_table2
from repro.experiments.violation_sweep import run_violation_sweep


@pytest.fixture(scope="module")
def quick_config():
    return ExperimentConfig.quick()


class TestTable1:
    def test_shape_of_disclosure(self, quick_config):
        result = run_table1(quick_config)
        assert result.true_confidence == pytest.approx(0.8383, abs=0.01)
        low_privacy = result.per_epsilon[0.5]
        high_privacy = result.per_epsilon[0.01]
        # At eps = 0.5 the attack recovers the confidence and the answers are accurate.
        assert low_privacy.confidence_gap < 0.05
        assert low_privacy.error_q1_mean < 0.1
        # At eps = 0.01 the noisy answers are useless.
        assert high_privacy.error_q1_mean > low_privacy.error_q1_mean
        assert "Conf" in result.render()


class TestTable2:
    def test_grid_matches_closed_form(self):
        result = run_table2()
        assert result.grid[10.0][5000] == pytest.approx(0.000008)
        assert result.grid[200.0][100] == pytest.approx(8.0)
        assert set(result.grid) == set(TABLE2_SCALES)
        assert set(result.grid[10.0]) == set(TABLE2_ANSWERS)

    def test_indicator_monotone_in_scale_and_answer(self):
        result = run_table2()
        for x in TABLE2_ANSWERS:
            assert result.grid[10.0][x] < result.grid[200.0][x]
        for b in TABLE2_SCALES:
            assert result.grid[b][5000] < result.grid[b][100]

    def test_render_contains_all_columns(self):
        text = run_table2().render()
        for x in TABLE2_ANSWERS:
            assert f"x={x}" in text


class TestAggregation:
    def test_domains_shrink_and_groups_merge(self, quick_config):
        impacts = run_aggregation_impact(quick_config)
        adult = impacts["ADULT"]
        assert adult.n_groups_after < adult.n_groups_before
        assert adult.domain_sizes_after["Education"] < adult.domain_sizes_before["Education"]
        census = impacts["CENSUS"]
        assert census.domain_sizes_after["Age"] == 1
        assert census.domain_sizes_after["Gender"] == 2
        assert "aggregation" in adult.render().lower()


class TestFigure1:
    def test_sg_decreasing_in_f_and_p(self):
        panels = run_figure1()
        for panel in panels.values():
            for curve in panel.curves.values():
                assert all(a >= b for a, b in zip(curve, curve[1:]))
            # Larger p gives smaller s_g at the same f.
            low_p = panel.curves[0.3]
            high_p = panel.curves[0.7]
            assert all(low >= high for low, high in zip(low_p, high_p))

    def test_census_panel_has_larger_thresholds_at_small_f(self):
        panels = run_figure1()
        census_first = panels["CENSUS"].curves[0.5][0]  # f = 0.1
        adult_first = panels["ADULT"].curves[0.5][0]  # f = 0.5
        assert census_first > adult_first


class TestSweeps:
    def test_violation_sweep_shapes(self, quick_config):
        sweeps = run_violation_sweep(quick_config, datasets=("ADULT",), include_size_sweep=False)
        adult = sweeps["ADULT"]
        for parameter in ("p", "lambda", "delta"):
            sweep = adult[parameter]
            assert len(sweep.group_rates) == len(sweep.values)
            # v_r always covers at least as many records as v_g covers groups.
            for vg, vr in zip(sweep.group_rates, sweep.record_rates):
                assert vr >= vg - 1e-9
        # Violations grow as lambda grows: s_g shrinks like 1/lambda^2 (Eq. 9),
        # matching the upward trend of Figure 2(b).
        lam_sweep = adult["lambda"]
        assert lam_sweep.group_rates[-1] >= lam_sweep.group_rates[0]

    def test_error_sweep_shapes(self, quick_config):
        # A single run is dominated by SPS sampling/scaling noise (the tiny
        # generalised ADULT sample has only ~8 personal groups); averaging a
        # few runs makes the monotone trend deterministic for this seed.
        config = ExperimentConfig(
            adult_size=6_000,
            workload_queries=60,
            runs=8,
            sweep={"p": (0.3, 0.7), "lambda": (0.3,), "delta": (0.3,)},
        )
        sweeps = run_error_sweep(config, datasets=("ADULT",), include_size_sweep=False)
        adult = sweeps["ADULT"]
        p_sweep = adult["p"]
        # Error decreases as p grows for both UP and SPS.
        assert p_sweep.up_errors[0] > p_sweep.up_errors[-1]
        assert p_sweep.sps_errors[0] > p_sweep.sps_errors[-1]
        # SPS is never substantially better than UP.
        for up, sps in zip(p_sweep.up_errors, p_sweep.sps_errors):
            assert sps >= up - 0.02
        assert "relative error" in p_sweep.render().lower()


class TestRunner:
    def test_run_experiment_table2(self, quick_config):
        text = run_experiment("table2", quick_config)
        assert "disclosure indicator" in text

    def test_unknown_experiment_rejected(self, quick_config):
        with pytest.raises(ValueError):
            run_experiment("table99", quick_config)

    def test_main_runs_cheap_experiments(self, capsys):
        exit_code = main(["table2", "figure1", "--scale", "quick"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Figure 1" in captured.out
        assert "Table 2" in captured.out

    def test_experiment_names_are_stable(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "tables4-5",
            "figure1",
            "figures2-4",
            "figures3-5",
        }
