"""Unit and concurrency tests of the ``repro.store`` connectors.

Covers the connector contract (transactions, optimistic versioning, typed
conflicts, counters) uniformly across the SQLite, memory and JSON-snapshot
backends; SQLite-specific concurrency (threads and processes hammering one
database file with no lost updates); backend resolution and the legacy
JSON→SQLite migration; and service-level restart persistence (datasets,
jobs, group-index caches and delta states reloading from one store).
"""

from __future__ import annotations

import json
import multiprocessing
import sqlite3
import threading

import pytest

from repro.store import (
    COUNTER_JOB_IDS,
    NS_DATASETS,
    JsonSnapshotConnector,
    MemoryConnector,
    SqliteConnector,
    StoreError,
    VersionConflictError,
    copy_store,
    migrate_json_to_sqlite,
    open_store,
)


@pytest.fixture(params=["memory", "sqlite", "json"])
def store(request, tmp_path):
    """One open connector per backend; closed after the test."""
    if request.param == "memory":
        connector = MemoryConnector()
    elif request.param == "sqlite":
        connector = SqliteConnector(tmp_path / "store.db")
    else:
        connector = JsonSnapshotConnector(tmp_path / "store.json")
    connector.open()
    yield connector
    connector.close()


class TestConnectorContract:
    def test_put_get_roundtrip_and_version_bump(self, store):
        assert store.get("ns", "k") is None
        assert store.put("ns", "k", {"a": 1}) == 1
        stored = store.get("ns", "k")
        assert stored.value == {"a": 1}
        assert stored.version == 1
        assert store.put("ns", "k", [1, 2]) == 2
        assert store.get("ns", "k").value == [1, 2]

    def test_canonical_json_semantics(self, store):
        # Tuples become lists and non-string keys become strings in every
        # backend, so payloads are portable across connectors.
        store.put("ns", "k", {"t": (1, 2), 3: "x"})
        assert store.get("ns", "k").value == {"t": [1, 2], "3": "x"}

    def test_unserialisable_value_is_typed_error(self, store):
        with pytest.raises(StoreError, match="JSON-serialisable"):
            store.put("ns", "k", object())

    def test_create_only_conflict(self, store):
        store.put("ns", "k", 1, expected_version=0)
        with pytest.raises(VersionConflictError, match="already exists") as excinfo:
            store.put("ns", "k", 2, expected_version=0)
        assert (excinfo.value.namespace, excinfo.value.key) == ("ns", "k")
        assert excinfo.value.expected == 0
        assert store.get("ns", "k").value == 1

    def test_update_at_version_conflict(self, store):
        store.put("ns", "k", "v1")
        store.put("ns", "k", "v2", expected_version=1)
        with pytest.raises(VersionConflictError, match="expected version 1, found 2"):
            store.put("ns", "k", "v3", expected_version=1)
        assert store.get("ns", "k").value == "v2"

    def test_delete_with_and_without_expected_version(self, store):
        store.put("ns", "k", 1)
        with pytest.raises(VersionConflictError):
            store.delete("ns", "k", expected_version=7)
        assert store.delete("ns", "k", expected_version=1) is True
        assert store.delete("ns", "k") is False
        assert store.get("ns", "k") is None

    def test_listings_are_sorted(self, store):
        for key in ("b", "a", "c"):
            store.put("zoo", key, key.upper())
        store.put("ark", "x", 0)
        assert store.keys("zoo") == ["a", "b", "c"]
        assert [k for k, _ in store.items("zoo")] == ["a", "b", "c"]
        assert store.namespaces() == ["ark", "zoo"]

    def test_counters_are_monotonic_and_peekable(self, store):
        assert store.peek("seq") == 0
        assert [store.next_value("seq") for _ in range(3)] == [1, 2, 3]
        assert store.peek("seq") == 3

    def test_transaction_rolls_back_on_error(self, store):
        store.put("ns", "k", "before")
        with pytest.raises(RuntimeError, match="boom"):
            with store.transaction(write=True) as txn:
                txn.put("ns", "k", "during")
                txn.next_value("seq")
                raise RuntimeError("boom")
        assert store.get("ns", "k").value == "before"
        assert store.peek("seq") == 0

    def test_read_transaction_rejects_writes(self, store):
        with store.transaction() as txn:
            with pytest.raises(StoreError, match="write transaction"):
                txn.put("ns", "k", 1)
            with pytest.raises(StoreError, match="write transaction"):
                txn.next_value("seq")

    def test_closed_store_rejects_access(self, store):
        store.close()
        with pytest.raises(StoreError, match="not open"):
            store.get("ns", "k")
        store.open()  # idempotent reopen for the fixture teardown

    def test_empty_names_rejected(self, store):
        with pytest.raises(StoreError, match="namespace"):
            store.put("", "k", 1)
        with pytest.raises(StoreError, match="key"):
            store.put("ns", "", 1)

    def test_copy_store_preserves_versions_and_counters(self, store, tmp_path):
        store.put("ns", "k", "v1")
        store.put("ns", "k", "v2")
        store.next_value("seq")
        target = SqliteConnector(tmp_path / "copy.db").open()
        try:
            copy_store(store, target)
            assert target.get("ns", "k").version == 2
            assert target.peek("seq") == 1
            # Optimistic writers that read before the copy still conflict.
            with pytest.raises(VersionConflictError):
                target.put("ns", "k", "v3", expected_version=1)
        finally:
            target.close()


class TestDurabilityAcrossReopen:
    @pytest.mark.parametrize("backend", ["sqlite", "json"])
    def test_file_backends_survive_close_and_reopen(self, tmp_path, backend):
        path = tmp_path / ("s.db" if backend == "sqlite" else "s.json")
        first = open_store(path)
        first.put("ns", "k", {"x": 1})
        first.next_value(COUNTER_JOB_IDS)
        first.close()
        second = open_store(path)
        try:
            assert second.backend == backend
            assert second.get("ns", "k").value == {"x": 1}
            assert second.peek(COUNTER_JOB_IDS) == 1
        finally:
            second.close()


class TestOpenStoreResolution:
    def test_none_path_is_memory(self):
        store = open_store(None)
        assert store.backend == "memory"
        store.close()

    def test_json_suffix_gets_json_backend(self, tmp_path):
        store = open_store(tmp_path / "state.json")
        assert store.backend == "json"
        store.close()

    def test_other_suffix_gets_sqlite(self, tmp_path):
        store = open_store(tmp_path / "state.db")
        assert store.backend == "sqlite"
        store.close()

    def test_existing_sqlite_file_sniffed_regardless_of_suffix(self, tmp_path):
        path = tmp_path / "state.json"  # lying suffix
        made = SqliteConnector(path).open()
        made.put("ns", "k", 1)
        made.close()
        store = open_store(path)
        try:
            assert store.backend == "sqlite"
            assert store.get("ns", "k").value == 1
        finally:
            store.close()

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="unknown store backend"):
            open_store(tmp_path / "x.db", backend="postgres")
        with pytest.raises(StoreError, match="requires a path"):
            open_store(None, backend="sqlite")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"\x00\x01 not a store")
        with pytest.raises(StoreError, match="neither"):
            open_store(path)


def _legacy_v1_payload():
    from repro.service.models import table_to_json
    from repro.dataset.adult import generate_adult

    return {
        "version": 1,
        "datasets": {"demo": table_to_json(generate_adult(40, seed=1))},
        "jobs": [],
        "next_job_id": 5,
    }


class TestLegacyMigration:
    def test_v1_json_loads_through_connector(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps(_legacy_v1_payload()))
        store = open_store(path)
        try:
            assert store.backend == "json"
            assert store.keys(NS_DATASETS) == ["demo"]
            # next_job_id 5 means ids 1..4 were issued: the counter resumes at 5.
            assert store.next_value(COUNTER_JOB_IDS) == 5
        finally:
            store.close()

    def test_v1_json_at_db_path_migrates_in_place(self, tmp_path):
        path = tmp_path / "state.db"
        path.write_text(json.dumps(_legacy_v1_payload()))
        store = open_store(path)
        try:
            assert store.backend == "sqlite"
            assert store.keys(NS_DATASETS) == ["demo"]
            assert store.peek(COUNTER_JOB_IDS) == 4
        finally:
            store.close()
        # The original snapshot survives as a backup beside the database.
        backup = tmp_path / "state.db.pre-store.json"
        assert backup.exists()
        assert json.loads(backup.read_text())["version"] == 1
        assert sqlite3.connect(path).execute("SELECT COUNT(*) FROM kv").fetchone()[0] == 1

    def test_explicit_migration_to_new_path(self, tmp_path):
        source = tmp_path / "state.json"
        source.write_text(json.dumps(_legacy_v1_payload()))
        target = tmp_path / "migrated.db"
        store = migrate_json_to_sqlite(source, target)
        try:
            assert store.keys(NS_DATASETS) == ["demo"]
            assert source.exists()  # explicit-target migration keeps the source
        finally:
            store.close()

    def test_unsupported_snapshot_version_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(StoreError, match="unsupported snapshot version"):
            open_store(path)


# --------------------------------------------------------------------- #
# Concurrency: no lost updates, monotonic ids, typed conflicts
# --------------------------------------------------------------------- #

def _alloc_ids_in_process(path: str, count: int, queue) -> None:
    store = SqliteConnector(path).open()
    try:
        values = [store.next_value(COUNTER_JOB_IDS) for _ in range(count)]
    finally:
        store.close()
    queue.put(values)


class TestSqliteConcurrency:
    def test_threads_share_one_counter_without_duplicates(self, tmp_path):
        store = SqliteConnector(tmp_path / "c.db").open()
        results: list[list[int]] = []
        lock = threading.Lock()

        def worker():
            values = [store.next_value("seq") for _ in range(25)]
            with lock:
                results.append(values)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        store.close()
        flat = [v for values in results for v in values]
        assert len(flat) == len(set(flat)) == 200
        assert max(flat) == 200
        for values in results:  # each thread sees strictly increasing values
            assert values == sorted(values)

    def test_threads_optimistic_writes_have_one_winner_per_round(self, tmp_path):
        store = SqliteConnector(tmp_path / "o.db").open()
        store.put("ns", "doc", {"round": 0})
        conflicts = []
        lock = threading.Lock()

        def contender(name: str):
            for _ in range(10):
                stored = store.get("ns", "doc")
                try:
                    store.put(
                        "ns", "doc", {"writer": name},
                        expected_version=stored.version,
                    )
                except VersionConflictError as exc:
                    with lock:
                        conflicts.append(exc)

        threads = [
            threading.Thread(target=contender, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        final = store.get("ns", "doc")
        store.close()
        # Every attempt either won (bumped the version) or raised typed.
        assert final.version == 1 + 40 - len(conflicts)
        assert all(isinstance(c, VersionConflictError) for c in conflicts)

    def test_processes_share_one_counter_without_duplicates(self, tmp_path):
        path = tmp_path / "p.db"
        SqliteConnector(path).open().close()  # create the schema up front
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_alloc_ids_in_process, args=(str(path), 20, queue))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        collected = [queue.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
        flat = [v for values in collected for v in values]
        assert len(flat) == len(set(flat)) == 80
        assert max(flat) == 80
        store = SqliteConnector(path).open()
        assert store.peek(COUNTER_JOB_IDS) == 80
        store.close()

    def test_two_job_stores_issue_globally_monotonic_ids(self, tmp_path):
        from repro.service.registry import JobStore

        path = tmp_path / "jobs.db"
        first = SqliteConnector(path).open()
        second = SqliteConnector(path).open()
        try:
            a, b = JobStore(store=first), JobStore(store=second)
            ids = [a.new_job_id(), b.new_job_id(), a.new_job_id(), b.new_job_id()]
            assert ids == ["job-0001", "job-0002", "job-0003", "job-0004"]
        finally:
            first.close()
            second.close()


# --------------------------------------------------------------------- #
# Service over a store: restart resumes with everything intact
# --------------------------------------------------------------------- #

class TestServiceRestartPersistence:
    def test_datasets_jobs_and_caches_survive_restart(self, tmp_path, skewed_binary_table):
        from repro.service.engine import AnonymizationService

        path = tmp_path / "service.db"
        svc = AnonymizationService(snapshot_path=path)
        svc.register_table("skewed", skewed_binary_table)
        record = svc.publish("skewed", "sps", seed=3)
        assert svc.datasets.get("skewed").group_index_misses == 1
        svc.close()

        restored = AnonymizationService(snapshot_path=path)
        try:
            entry = restored.datasets.get("skewed")
            assert entry.table == skewed_binary_table
            # The persisted group-index cache restores without a rebuild.
            index, elapsed, cached = entry.groups()
            assert cached is True and elapsed == 0.0
            assert len(index) == 3
            loaded = restored.job(record.job_id)
            assert loaded.spec == record.spec
            assert loaded.status == "completed"
            next_record = restored.publish("skewed", "uniform", seed=0)
            assert next_record.job_id > record.job_id  # ids continue
        finally:
            restored.close()

    def test_delta_dataset_survives_restart_and_stays_appendable(self, tmp_path):
        from repro.service.engine import AnonymizationService

        src = tmp_path / "base.csv"
        rows = ["City,Disease"] + [
            f"c{i % 3},d{i % 2}" for i in range(60)
        ]
        src.write_text("\n".join(rows) + "\n", newline="")
        out = tmp_path / "published.csv"
        path = tmp_path / "service.db"

        svc = AnonymizationService(snapshot_path=path)
        svc.publish_delta_base("living", src, "Disease", "sps", out, seed=5)
        assert "living" in svc.deltas
        base_rows = svc.deltas["living"].n_rows
        svc.close()

        restored = AnonymizationService(snapshot_path=path)
        try:
            assert "living" in restored.deltas
            assert restored.deltas["living"].n_rows == base_rows
            record = restored.append_rows("living", rows=[["c0", "d1"], ["c9", "d0"]])
            assert record.status == "completed"
            assert restored.deltas["living"].n_rows == base_rows + 2
        finally:
            restored.close()

    def test_running_job_restores_as_interrupted(self, tmp_path):
        from repro.service.models import JobRecord, JobSpec
        from repro.service.registry import JobStore

        path = tmp_path / "jobs.db"
        store = SqliteConnector(path).open()
        jobs = JobStore(store=store)
        record = JobRecord(
            job_id=jobs.new_job_id(),
            spec=JobSpec(dataset="d", backend="sps", params={}, seed=0),
            status="running",
        )
        jobs.add(record)  # the owning process "dies" here
        store.close()

        reopened = SqliteConnector(path).open()
        try:
            restored = JobStore(store=reopened)
            loaded = restored.get(record.job_id)
            assert loaded.status == "interrupted"
            assert "restarted" in loaded.error
        finally:
            reopened.close()

    def test_register_conflict_across_shared_store_is_typed(self, tmp_path, skewed_binary_table):
        from repro.service.registry import DatasetRegistry, ServiceError

        path = tmp_path / "shared.db"
        first = SqliteConnector(path).open()
        second = SqliteConnector(path).open()
        try:
            a, b = DatasetRegistry(store=first), DatasetRegistry(store=second)
            a.register("demo", skewed_binary_table)
            # b's in-memory view predates a's write: the store still rejects.
            with pytest.raises(ServiceError, match="already registered"):
                b.register("demo", skewed_binary_table)
        finally:
            first.close()
            second.close()
