"""Tests for the (lambda, delta)-reconstruction-privacy criterion (Definition 3, Corollary 4)."""

import math

import numpy as np
import pytest

from repro.core.criterion import (
    PrivacySpec,
    group_is_private,
    group_sizes_and_thresholds,
    max_group_size,
    smallest_error_bound,
    value_is_private,
)
from repro.dataset.groups import personal_groups


def make_spec(lam=0.3, delta=0.3, p=0.5, m=2) -> PrivacySpec:
    return PrivacySpec(lam=lam, delta=delta, retention_probability=p, domain_size=m)


class TestPrivacySpec:
    def test_valid_spec(self):
        spec = make_spec()
        assert spec.off_diagonal == pytest.approx(0.25)

    @pytest.mark.parametrize("lam", [0.0, -0.1])
    def test_invalid_lambda_rejected(self, lam):
        with pytest.raises(ValueError):
            make_spec(lam=lam)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.2, 1.5])
    def test_invalid_delta_rejected(self, delta):
        with pytest.raises(ValueError):
            make_spec(delta=delta)

    def test_invalid_p_and_m_rejected(self):
        with pytest.raises(ValueError):
            make_spec(p=0.0)
        with pytest.raises(ValueError):
            make_spec(m=1)

    def test_lambda_upper_limit(self):
        spec = make_spec(p=0.5, m=2)
        assert spec.lambda_upper_limit(0.5) == pytest.approx(1 + 0.25 / 0.25)
        assert spec.lambda_upper_limit(0.0) == math.inf


class TestMaxGroupSize:
    def test_equation_10_value(self):
        # lambda = delta = 0.3, p = 0.5, m = 2, f = 0.5:
        # s_g = -2 (0.25 + 0.25) ln 0.3 / (0.3*0.5*0.5)^2
        spec = make_spec()
        expected = -2 * 0.5 * math.log(0.3) / (0.075**2)
        assert max_group_size(spec, 0.5) == pytest.approx(expected)

    def test_decreasing_in_frequency(self):
        """The paper uses the group's max frequency because s_g decreases in f."""
        spec = make_spec(m=50)
        sizes = [max_group_size(spec, f) for f in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_decreasing_in_retention(self):
        sizes = [max_group_size(make_spec(p=p), 0.5) for p in (0.3, 0.5, 0.7)]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_decreasing_in_lambda(self):
        assert max_group_size(make_spec(lam=0.1), 0.5) > max_group_size(make_spec(lam=0.5), 0.5)

    def test_increasing_in_delta_magnitude(self):
        # A stricter (larger) delta forces a smaller group.
        assert max_group_size(make_spec(delta=0.1), 0.5) > max_group_size(make_spec(delta=0.5), 0.5)

    def test_zero_frequency_is_unbounded(self):
        assert max_group_size(make_spec(), 0.0) == math.inf

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            max_group_size(make_spec(), 1.2)

    def test_vectorised_matches_scalar(self):
        spec = make_spec(m=10)
        frequencies = np.array([0.0, 0.2, 0.5, 0.9])
        vector = group_sizes_and_thresholds(spec, frequencies)
        for f, v in zip(frequencies, vector):
            assert v == pytest.approx(max_group_size(spec, float(f)))


class TestValueAndGroupTests:
    def test_corollary_4_boundary(self):
        spec = make_spec()
        threshold = max_group_size(spec, 0.5)
        assert value_is_private(spec, int(threshold), 0.5)
        assert not value_is_private(spec, int(threshold) + 1, 0.5)

    def test_empty_group_is_private(self):
        assert value_is_private(make_spec(), 0, 0.5)

    def test_absent_value_is_private(self):
        assert value_is_private(make_spec(), 10_000, 0.0)

    def test_negative_group_size_rejected(self):
        with pytest.raises(ValueError):
            value_is_private(make_spec(), -1, 0.5)

    def test_group_verdict_uses_max_frequency(self, small_table):
        index = personal_groups(small_table)
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=10)
        for group in index:
            assert group_is_private(spec, group) == value_is_private(
                spec, group.size, group.max_frequency
            )

    def test_small_groups_in_fixture_are_private(self, small_table):
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=10)
        index = personal_groups(small_table)
        # All fixture groups have fewer than 10 records; s_g is in the hundreds.
        assert all(group_is_private(spec, group) for group in index)

    def test_violation_appears_for_large_pure_group(self, binary_schema):
        from repro.dataset.table import Table

        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
        records = [("a", "high")] * 500
        table = Table.from_records(binary_schema, records)
        group = next(iter(personal_groups(table)))
        assert not group_is_private(spec, group)


class TestSmallestErrorBound:
    def test_consistency_with_verdict(self):
        spec = make_spec()
        threshold = max_group_size(spec, 0.5)
        below = smallest_error_bound(spec, int(threshold) - 1, 0.5)
        above = smallest_error_bound(spec, int(threshold) + 50, 0.5)
        assert below >= spec.delta
        assert above < spec.delta

    def test_degenerate_inputs_give_trivial_bound(self):
        spec = make_spec()
        assert smallest_error_bound(spec, 0, 0.5) == 1.0
        assert smallest_error_bound(spec, 100, 0.0) == 1.0
