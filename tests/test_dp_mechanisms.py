"""Tests for the Laplace and Gaussian mechanisms."""

import numpy as np
import pytest

from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism


class TestLaplaceMechanism:
    def test_scale_is_sensitivity_over_epsilon(self):
        mechanism = LaplaceMechanism(epsilon=0.1, sensitivity=2.0)
        assert mechanism.scale == pytest.approx(20.0)
        assert mechanism.variance == pytest.approx(2 * 20.0**2)

    def test_from_scale(self):
        mechanism = LaplaceMechanism.from_scale(5.0)
        assert mechanism.scale == pytest.approx(5.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=0.0)
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=0.1, sensitivity=0.0)
        with pytest.raises(ValueError):
            LaplaceMechanism.from_scale(0.0)

    def test_scalar_in_scalar_out(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        noisy = mechanism.add_noise(100.0, rng=0)
        assert isinstance(noisy, float)

    def test_array_in_array_out(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        noisy = mechanism.add_noise(np.array([10.0, 20.0, 30.0]), rng=0)
        assert noisy.shape == (3,)

    def test_noise_is_zero_mean_with_expected_spread(self):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=1.0)  # b = 2
        noisy = mechanism.add_noise(np.zeros(60_000), rng=1)
        assert abs(noisy.mean()) < 0.05
        assert noisy.var() == pytest.approx(mechanism.variance, rel=0.05)

    def test_reproducible_with_seed(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        assert mechanism.add_noise(5.0, rng=3) == mechanism.add_noise(5.0, rng=3)


class TestGaussianMechanism:
    def test_sigma_formula(self):
        mechanism = GaussianMechanism(epsilon=1.0, delta=1e-5, sensitivity=1.0)
        expected = np.sqrt(2 * np.log(1.25 / 1e-5))
        assert mechanism.sigma == pytest.approx(expected)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=0.0, delta=1e-5)
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=1.0, delta=0.0)
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=1.0, delta=1e-5, sensitivity=-1.0)

    def test_noise_statistics(self):
        mechanism = GaussianMechanism(epsilon=1.0, delta=0.01, sensitivity=1.0)
        noisy = mechanism.add_noise(np.zeros(60_000), rng=2)
        assert abs(noisy.mean()) < 0.05
        assert noisy.std() == pytest.approx(mechanism.sigma, rel=0.05)
