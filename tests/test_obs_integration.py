"""Observability wired through the real execution paths.

The load-bearing contract of :mod:`repro.obs`: turning tracing or metrics on
or off never changes a published byte, traces agree on their deterministic
fields at any worker count, stage timings sum to the total, and the service
exposes the same data through ``GET /metrics`` and per-job event timelines.
"""

import io
import json
import threading
import urllib.request

import pytest

import repro
from repro.dataset.loaders import read_csv, write_csv
from repro.obs import Tracer, parse_prometheus, validate_trace, write_trace
from repro.obs.metrics import (
    CHUNKS_TOTAL,
    PUBLISH_RUNS,
    REGISTRY,
    ROWS_PUBLISHED,
)
from repro.pipeline import available_strategies, publish
from repro.service.engine import AnonymizationService
from repro.service.http_api import make_server
from repro.service.models import JobRecord
from repro.stream import stream_publish

#: Attributes that legitimately vary with the execution backend; everything
#: else in a trace must be identical at any worker count.
_BACKEND_ATTRS = {"backend", "workers", "worker_pid", "worker_thread"}


def _csv_text(table):
    buffer = io.StringIO()
    write_csv(table, buffer)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def adult_csv():
    return _csv_text(repro.generate_adult(1500, seed=13))


def _stream(adult_csv, strategy="sps", workers=1, **kwargs):
    kwargs.setdefault("rng", 7)
    kwargs.setdefault("chunk_size", 64)
    kwargs.setdefault("chunk_rows", 400)
    return stream_publish(
        io.StringIO(adult_csv), sensitive="Income", strategy=strategy,
        workers=workers, parallel_backend="thread", **kwargs,
    )


def _span_shape(tracer):
    """A trace's deterministic skeleton: names + backend-independent attrs."""
    return [
        (
            record.name,
            tuple(sorted(
                (key, value) for key, value in record.attributes.items()
                if key not in _BACKEND_ATTRS
            )),
        )
        for record in tracer.spans
    ]


# --------------------------------------------------------------------- #
# Byte-identity: observability never changes published bytes
# --------------------------------------------------------------------- #


class TestByteIdentity:
    @pytest.mark.parametrize("strategy", sorted(available_strategies()))
    def test_tracing_on_off_identical_per_strategy(self, adult_csv, strategy):
        baseline = _stream(adult_csv, strategy, workers=2)
        with Tracer():
            traced = _stream(adult_csv, strategy, workers=2)
        assert traced.published == baseline.published

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_tracing_on_off_identical_per_worker_count(self, adult_csv, workers):
        baseline = _stream(adult_csv, workers=workers)
        with Tracer():
            traced = _stream(adult_csv, workers=workers)
        assert traced.published == baseline.published

    def test_metrics_disabled_identical(self, adult_csv):
        baseline = _stream(adult_csv)
        REGISTRY.disable()
        try:
            muted = _stream(adult_csv)
        finally:
            REGISTRY.enable()
        assert muted.published == baseline.published

    def test_pipeline_tracing_identical(self, adult_csv):
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        baseline = publish(table, strategy="sps", rng=7, chunk_size=64, workers=2)
        with Tracer():
            traced = publish(table, strategy="sps", rng=7, chunk_size=64, workers=2)
        assert traced.published == baseline.published


# --------------------------------------------------------------------- #
# Deterministic traces at any worker count
# --------------------------------------------------------------------- #


class TestSpanDeterminism:
    def test_deterministic_fields_agree_across_worker_counts(self, adult_csv):
        shapes = {}
        for workers in (1, 2, 4):
            with Tracer() as tracer:
                _stream(adult_csv, workers=workers)
            shapes[workers] = _span_shape(tracer)
        assert shapes[1] == shapes[2] == shapes[4]

    def test_chunk_spans_merge_in_chunk_order_under_enforce(self, adult_csv):
        with Tracer() as tracer:
            _stream(adult_csv, workers=4)
        enforce = next(r for r in tracer.spans if r.name == "enforce")
        chunks = [r for r in tracer.spans if r.name == "chunk"]
        assert chunks, "pooled enforce must record chunk spans"
        assert [c.attributes["chunk_id"] for c in chunks] == list(range(len(chunks)))
        assert all(c.parent_id == enforce.span_id for c in chunks)
        assert all(c.attributes["backend"] == "thread" for c in chunks)

    def test_trace_exports_and_validates(self, adult_csv, tmp_path):
        path = tmp_path / "stream.jsonl"
        with Tracer() as tracer:
            _stream(adult_csv, workers=2)
        write_trace(tracer, path)
        assert validate_trace(path) == len(tracer.spans) > 0

    def test_pipeline_stage_spans_and_report_timings(self, adult_csv):
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        with Tracer() as tracer:
            report = publish(table, strategy="sps", rng=7, chunk_size=64)
        names = [record.name for record in tracer.spans]
        for stage in ("prepare", "generalize", "group_index", "audit", "enforce"):
            assert stage in names
        root = next(r for r in tracer.spans if r.name == "publish")
        assert root.attributes["strategy"] == "sps"
        assert root.attributes["rows"] == len(report.published)
        assert report.total_seconds == pytest.approx(sum(report.timings.values()))

    def test_stream_timings_cover_every_phase(self, adult_csv):
        report = _stream(adult_csv)
        assert set(report.timings) == {
            "prepare", "read", "spool", "group_index", "generalize",
            "audit", "enforce", "flush", "finalize",
        }
        assert all(value >= 0.0 for value in report.timings.values())
        assert report.total_seconds == pytest.approx(sum(report.timings.values()))


# --------------------------------------------------------------------- #
# Progress callbacks
# --------------------------------------------------------------------- #


class TestProgress:
    def test_progress_events_monotonic(self, adult_csv):
        events = []
        _stream(adult_csv, workers=2, progress=events.append)
        phases = [event["phase"] for event in events]
        assert phases[0] == "read" and phases[-1] == "done"
        rows_read = [e["rows_read"] for e in events if e["phase"] == "read"]
        assert rows_read == sorted(rows_read)
        groups_done = [e["groups_done"] for e in events if e["phase"] == "enforce"]
        assert groups_done == sorted(groups_done)

    def test_progress_agrees_across_worker_counts(self, adult_csv):
        sequences = {}
        for workers in (1, 2, 4):
            events = []
            _stream(adult_csv, workers=workers, progress=events.append)
            sequences[workers] = events
        assert sequences[1] == sequences[2] == sequences[4]


# --------------------------------------------------------------------- #
# Metrics through the real paths
# --------------------------------------------------------------------- #


class TestMetricsIntegration:
    def test_stream_updates_the_standard_instruments(self, adult_csv):
        REGISTRY.reset()
        report = _stream(adult_csv)
        assert ROWS_PUBLISHED.value(strategy="sps") == report.published_records
        assert PUBLISH_RUNS.value(path="stream", strategy="sps") == 1.0
        assert CHUNKS_TOTAL.value(backend="serial") > 0

    def test_counters_agree_across_worker_counts(self, adult_csv):
        observed = {}
        for workers in (1, 2, 4):
            REGISTRY.reset()
            _stream(adult_csv, workers=workers)
            chunks = sum(
                value for _, value in CHUNKS_TOTAL.samples()
            )
            observed[workers] = (
                ROWS_PUBLISHED.value(strategy="sps"),
                PUBLISH_RUNS.value(path="stream", strategy="sps"),
                chunks,
            )
        assert observed[1] == observed[2] == observed[4]

    def test_pipeline_updates_the_run_counters(self, adult_csv):
        REGISTRY.reset()
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        report = publish(table, strategy="uniform", rng=3)
        assert ROWS_PUBLISHED.value(strategy="uniform") == len(report.published)
        assert PUBLISH_RUNS.value(path="pipeline", strategy="uniform") == 1.0


# --------------------------------------------------------------------- #
# Service: /metrics and per-job event timelines
# --------------------------------------------------------------------- #

CSV_BODY = "Job,City,Income\n" + "\n".join(
    f"{'eng' if i % 2 else 'artist'},c{i % 3},{'high' if i % 4 == 0 else 'low'}"
    for i in range(120)
)


@pytest.fixture()
def service():
    svc = AnonymizationService()
    svc.register_csv("demo", io.StringIO(CSV_BODY), "Income")
    return svc


@pytest.fixture()
def server_url(service):
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestServiceObservability:
    def test_metrics_endpoint_serves_valid_exposition(self, service, server_url):
        service.publish(dataset="demo", backend="sps", params={}, seed=1)
        with urllib.request.urlopen(f"{server_url}/metrics") as response:
            assert response.headers["Content-Type"].startswith("text/plain; version=0.0.4")
            text = response.read().decode()
        families = parse_prometheus(text)
        assert "repro_build_info" in families
        assert "repro_rows_published_total" in families
        (sample,) = families["repro_build_info"]
        assert sample[1] == 1.0

    def test_in_memory_job_timeline(self, service):
        record = service.publish(dataset="demo", backend="sps", params={}, seed=1)
        assert [event["event"] for event in record.events] == ["started", "completed"]
        elapsed = [event["elapsed"] for event in record.events]
        assert elapsed == sorted(elapsed) and all(t >= 0.0 for t in elapsed)
        assert record.events[-1]["published_records"] == record.published_records

    def test_stream_job_timeline_coalesced_and_deterministic(self, service, tmp_path):
        source = tmp_path / "demo.csv"
        source.write_text(CSV_BODY + "\n")
        record = service.publish_stream(
            source, sensitive="Income", backend="sps", seed=1, chunk_rows=30,
        )
        assert [event["event"] for event in record.events] == [
            "started", "read", "group_index", "enforce", "done", "completed",
        ]

    def test_failed_job_timeline_records_the_error(self, service):
        with pytest.raises(Exception):
            service.publish(dataset="demo", backend="sps", params={"lam": -3.0}, seed=1)
        record = service.jobs.records()[-1]
        assert record.events[-1]["event"] == "failed"
        assert record.events[-1]["error"]

    def test_events_survive_snapshot_round_trip(self, service):
        record = service.publish(dataset="demo", backend="sps", params={}, seed=1)
        clone = JobRecord.from_json(json.loads(json.dumps(record.to_json())))
        assert clone.events == record.events

    def test_jobs_endpoint_serves_events(self, service, server_url):
        record = service.publish(dataset="demo", backend="sps", params={}, seed=1)
        with urllib.request.urlopen(f"{server_url}/jobs/{record.job_id}") as response:
            payload = json.load(response)
        assert [event["event"] for event in payload["events"]] == ["started", "completed"]
