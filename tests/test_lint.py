"""Fixture-backed tests of the ``repro.lint`` contract analyzer.

Every rule gets a positive fixture (the violation fires), a negative one
(the sanctioned pattern stays clean), and the suppression machinery is
exercised end to end: matched suppressions drop findings, unmatched ones
surface as RPR900 warnings, malformed markers as RPR901.  Fixture modules
are written under a ``repro/`` directory so they resolve to ``repro.*``
module names — the scope the repo-contract rules apply to.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.lint import RULES, Severity, run_lint
from repro.lint.cli import main
from repro.lint.findings import (
    MALFORMED_SUPPRESSION_CODE,
    PARSE_ERROR_CODE,
    UNUSED_SUPPRESSION_CODE,
    parse_suppressions,
)


def lint(tmp_path: Path, files: dict[str, str], select: list[str] | None = None):
    """Write ``files`` under ``<tmp>/repro/`` and lint the tree."""
    root = tmp_path / "repro"
    root.mkdir(exist_ok=True)
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return run_lint([root], select=select)


def codes(result) -> list[str]:
    return [finding.code for finding in result.findings]


# --------------------------------------------------------------------- #
# RPR001 — RNG discipline
# --------------------------------------------------------------------- #

def test_rpr001_flags_stdlib_random_import(tmp_path):
    result = lint(tmp_path, {"mod.py": "import random\n"})
    assert codes(result) == ["RPR001"]
    assert result.findings[0].line == 1


def test_rpr001_flags_numpy_module_level_state(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        import numpy as np

        def noisy():
            return np.random.normal(0.0, 1.0)
    """})
    assert codes(result) == ["RPR001"]
    assert "module-level" in result.findings[0].message


def test_rpr001_flags_default_rng_outside_factory_modules(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        import numpy as np

        def fresh():
            return np.random.default_rng(0)
    """})
    assert codes(result) == ["RPR001"]
    assert "sanctioned" in result.findings[0].message


def test_rpr001_allows_factory_module_and_parameter_style(tmp_path):
    result = lint(tmp_path, {
        # The sanctioned seeding site: repro.utils.rng may construct.
        "utils/rng.py": """\
            import numpy as np

            def default_rng(seed):
                return np.random.default_rng(np.random.SeedSequence(seed))
        """,
        # Everyone else takes the generator as a parameter.
        "mod.py": """\
            import numpy as np

            def draw(rng: np.random.Generator) -> float:
                return float(rng.random())
        """,
    })
    assert codes(result) == []


# --------------------------------------------------------------------- #
# RPR002 — wall-clock ban in chunk kernels
# --------------------------------------------------------------------- #

def test_rpr002_flags_wall_clock_in_kernel_class(tmp_path):
    result = lint(tmp_path, {"k.py": """\
        import time

        class StampKernel:
            def __call__(self, chunk, rng):
                return [time.time() for _ in chunk]
    """}, select=["RPR002"])
    assert codes(result) == ["RPR002"]


def test_rpr002_follows_reachable_helpers(tmp_path):
    result = lint(tmp_path, {"k.py": """\
        import time

        def _stamp():
            return time.time()

        class IndirectKernel:
            def __call__(self, chunk, rng):
                return [_stamp() for _ in chunk]
    """}, select=["RPR002"])
    assert codes(result) == ["RPR002"]
    assert result.findings[0].line == 4  # flagged inside the helper


def test_rpr002_flags_chunk_publisher_closures(tmp_path):
    result = lint(tmp_path, {"s.py": """\
        import time

        class Strategy:
            def chunk_publisher(self, spec):
                def run(chunk, rng):
                    return time.perf_counter()
                return run
    """}, select=["RPR002"])
    assert codes(result) == ["RPR002"]


def test_rpr002_clean_kernel_passes(tmp_path):
    result = lint(tmp_path, {"k.py": """\
        class DrawKernel:
            def __call__(self, chunk, rng):
                return [float(rng.random()) for _ in chunk]
    """}, select=["RPR002"])
    assert codes(result) == []


def test_rpr002_ignores_wall_clock_outside_kernels(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        import time

        def benchmark():
            return time.perf_counter()
    """}, select=["RPR002"])
    assert codes(result) == []


# --------------------------------------------------------------------- #
# RPR003 — picklability of pool-boundary classes
# --------------------------------------------------------------------- #

def test_rpr003_flags_lambda_on_self(tmp_path):
    result = lint(tmp_path, {"k.py": """\
        class LambdaKernel:
            def __init__(self):
                self.fn = lambda chunk, rng: chunk
    """}, select=["RPR003"])
    assert codes(result) == ["RPR003"]
    assert "lambda" in result.findings[0].message


def test_rpr003_flags_open_handle_and_mutable_global(tmp_path):
    result = lint(tmp_path, {"k.py": """\
        _SHARED = {}

        class HandleKernel:
            def __init__(self, path):
                self.handle = open(path)
                self.state = _SHARED
    """}, select=["RPR003"])
    assert codes(result) == ["RPR003", "RPR003"]


def test_rpr003_flags_local_function_capture(tmp_path):
    result = lint(tmp_path, {"k.py": """\
        class ClosureKernel:
            def __init__(self):
                def run(chunk, rng):
                    return chunk
                self.fn = run
    """}, select=["RPR003"])
    assert codes(result) == ["RPR003"]


def test_rpr003_module_level_function_capture_is_fine(tmp_path):
    result = lint(tmp_path, {"k.py": """\
        def _run(chunk, rng):
            return chunk

        class GoodKernel:
            def __init__(self):
                self.fn = _run
    """}, select=["RPR003"])
    assert codes(result) == []


# --------------------------------------------------------------------- #
# RPR004 — span-derived timing accounting
# --------------------------------------------------------------------- #

def test_rpr004_flags_raw_timer_feeding_timings(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        import time

        def publish():
            timings = {}
            start = time.perf_counter()
            timings["stage"] = time.perf_counter() - start
            return timings
    """}, select=["RPR004"])
    assert codes(result) == ["RPR004", "RPR004"]  # both perf_counter calls


def test_rpr004_span_durations_pass(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        from repro.obs.trace import span

        def publish():
            timings = {}
            with span("stage") as sp:
                pass
            timings["stage"] = sp.duration
            return timings
    """}, select=["RPR004"])
    assert codes(result) == []


# --------------------------------------------------------------------- #
# RPR005 — strategy registry hygiene
# --------------------------------------------------------------------- #

_STRATEGY_BASE = """\
    class PublishStrategy:
        params = ()

        def chunk_publisher(self, spec):
            return None
"""


def test_rpr005_flags_missing_streaming_stance(tmp_path):
    result = lint(tmp_path, {"s.py": _STRATEGY_BASE + """\

        class SilentStrategy(PublishStrategy):
            params = ()
    """}, select=["RPR005"])
    assert codes(result) == ["RPR005"]
    assert "streaming stance" in result.findings[0].message


def test_rpr005_flags_untyped_params(tmp_path):
    result = lint(tmp_path, {"s.py": _STRATEGY_BASE + """\

        class StringParamsStrategy(PublishStrategy):
            params = ("epsilon",)

            def chunk_publisher(self, spec):
                return None
    """}, select=["RPR005"])
    assert codes(result) == ["RPR005"]
    assert "ParamSpec" in result.findings[0].message


def test_rpr005_accepts_each_sanctioned_stance(tmp_path):
    result = lint(tmp_path, {"s.py": _STRATEGY_BASE + """\

        from repro.pipeline.params import ParamSpec

        class KernelStrategy(PublishStrategy):
            params = (ParamSpec.floating("epsilon"),)

            def chunk_publisher(self, spec):
                return None

        class RowStreamStrategy(PublishStrategy):
            params = ()
            streams_rows = True

        class OptOutStrategy(PublishStrategy):
            params = ()
            streamable = False
    """}, select=["RPR005"])
    assert codes(result) == []


def test_rpr005_ignores_abstract_and_private_classes(tmp_path):
    result = lint(tmp_path, {"s.py": _STRATEGY_BASE + """\

        class _InternalStrategy(PublishStrategy):
            pass
    """}, select=["RPR005"])
    assert codes(result) == []


# --------------------------------------------------------------------- #
# RPR006 — side-effect-free imports
# --------------------------------------------------------------------- #

def test_rpr006_flags_discarded_import_time_call(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        def setup():
            return 1

        setup()
    """}, select=["RPR006"])
    assert codes(result) == ["RPR006"]


def test_rpr006_flags_import_time_io_and_environ(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        import os

        DATA = open("data.csv").read()
        os.environ["REPRO_MODE"] = "fast"
    """}, select=["RPR006"])
    assert sorted(codes(result)) == ["RPR006", "RPR006"]


def test_rpr006_allows_registry_registration(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        from repro.pipeline.strategy import register_strategy

        class Thing:
            pass

        register_strategy("thing", Thing)
    """}, select=["RPR006"])
    assert codes(result) == []


def test_rpr006_skips_main_guard_and_function_bodies(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        import sys

        def dump():
            sys.stdout.write(open("out.txt").read())

        if __name__ == "__main__":
            print(dump())
    """}, select=["RPR006"])
    assert codes(result) == []


# --------------------------------------------------------------------- #
# RPR007 — delta determinism
# --------------------------------------------------------------------- #

def test_rpr007_flags_full_group_index_rebuild_in_delta(tmp_path):
    result = lint(tmp_path, {"delta/engine2.py": """\
        from repro.dataset.groups import personal_groups

        def rebuild(table):
            return personal_groups(table)
    """}, select=["RPR007"])
    assert codes(result) == ["RPR007"]
    assert "personal_groups" in result.findings[0].message


def test_rpr007_flags_group_index_construction(tmp_path):
    result = lint(tmp_path, {"delta/helpers.py": """\
        from repro.dataset.groups import GroupIndex

        def make(groups):
            return GroupIndex(groups)
    """}, select=["RPR007"])
    assert codes(result) == ["RPR007"]


def test_rpr007_allows_incremental_index_and_other_modules(tmp_path):
    result = lint(tmp_path, {
        # The sanctioned pattern: index the appended rows only.
        "delta/engine2.py": """\
            from repro.stream.index import IncrementalGroupIndex

            def index_append(chunks, public, sensitive):
                index = IncrementalGroupIndex(public, sensitive)
                for chunk in chunks:
                    index.update(chunk)
                return index
        """,
        # Outside repro.delta the full-table index is fair game.
        "pipeline/runner2.py": """\
            from repro.dataset.groups import personal_groups

            def run(table):
                return personal_groups(table)
        """,
    }, select=["RPR007"])
    assert codes(result) == []


def test_rpr007_suppression(tmp_path):
    result = lint(tmp_path, {"delta/engine2.py": """\
        from repro.dataset.groups import personal_groups

        def rebuild(table):
            return personal_groups(table)  # repro-lint: ignore[RPR007]
    """}, select=["RPR007"])
    assert codes(result) == []
    assert result.suppressed == 1


# --------------------------------------------------------------------- #
# RPR008 — snapshot bypass
# --------------------------------------------------------------------- #

def test_rpr008_flags_snapshot_calls_outside_legacy(tmp_path):
    result = lint(tmp_path, {"service/persist.py": """\
        from repro.store.legacy import load_snapshot, save_snapshot

        def checkpoint(path, datasets, jobs):
            save_snapshot(path, datasets, jobs)

        def restore(path):
            return load_snapshot(path)
    """}, select=["RPR008"])
    assert codes(result) == ["RPR008", "RPR008"]
    assert "storage connector" in result.findings[0].message


def test_rpr008_allows_legacy_module_and_connector_usage(tmp_path):
    result = lint(tmp_path, {
        # The shims' home module may of course define and call them.
        "store/legacy.py": """\
            def save_snapshot(path, datasets, jobs):
                pass

            def _self_test(path):
                save_snapshot(path, None, None)
        """,
        # The sanctioned pattern: persist through a connector.
        "service/persist2.py": """\
            from repro.store import open_store

            def checkpoint(path, payload):
                store = open_store(path)
                store.put("datasets", "demo", payload)
                store.close()
        """,
    }, select=["RPR008"])
    assert codes(result) == []


def test_rpr008_suppression(tmp_path):
    result = lint(tmp_path, {"service/persist.py": """\
        from repro.store.legacy import save_snapshot

        def checkpoint(path, datasets, jobs):
            save_snapshot(path, datasets, jobs)  # repro-lint: ignore[RPR008]
    """}, select=["RPR008"])
    assert codes(result) == []
    assert result.suppressed == 1


# --------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------- #

def test_matched_suppression_drops_finding(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        import random  # repro-lint: ignore[RPR001]
    """})
    assert codes(result) == []
    assert result.suppressed == 1
    assert result.exit_code() == 0


def test_unused_suppression_is_reported(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        x = 1  # repro-lint: ignore[RPR001]
    """})
    assert codes(result) == [UNUSED_SUPPRESSION_CODE]
    assert result.findings[0].severity is Severity.WARNING
    assert result.exit_code() == 0  # warnings alone stay green


def test_malformed_suppression_is_reported(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        x = 1  # repro-lint: ignore[BOGUS]
    """})
    assert codes(result) == [MALFORMED_SUPPRESSION_CODE]


def test_suppression_marker_in_docstring_is_not_parsed():
    suppressions, malformed = parse_suppressions(
        '"""Docs mention # repro-lint: ignore[RPR001] in prose."""\nx = 1\n'
    )
    assert suppressions == []
    assert malformed == []


def test_suppression_only_covers_its_own_code(tmp_path):
    result = lint(tmp_path, {"mod.py": """\
        import random  # repro-lint: ignore[RPR002]
    """})
    # The RPR001 finding survives; the RPR002 suppression is unused.
    assert sorted(codes(result)) == ["RPR001", UNUSED_SUPPRESSION_CODE]


def test_parse_error_becomes_finding(tmp_path):
    result = lint(tmp_path, {"broken.py": "def oops(:\n"})
    assert codes(result) == [PARSE_ERROR_CODE]
    assert result.exit_code() == 1


# --------------------------------------------------------------------- #
# Engine behaviour
# --------------------------------------------------------------------- #

def test_select_runs_only_named_rules(tmp_path):
    files = {"mod.py": "import random\nsetup = print\nprint('x')\n"}
    everything = lint(tmp_path, files)
    assert "RPR001" in codes(everything) and "RPR006" in codes(everything)
    only_rng = lint(tmp_path, files, select=["RPR001"])
    assert codes(only_rng) == ["RPR001"]


def test_unknown_select_code_raises(tmp_path):
    with pytest.raises(ValueError, match="RPR999"):
        lint(tmp_path, {"mod.py": "x = 1\n"}, select=["RPR999"])


def test_findings_are_sorted_and_render_with_anchors(tmp_path):
    result = lint(tmp_path, {
        "b.py": "import random\n",
        "a.py": "import numpy as np\n\nbad = np.random.default_rng(0)\n",
    })
    rendered = [finding.render() for finding in result.findings]
    assert rendered == sorted(rendered)
    assert all(":" in line and "RPR001" in line for line in rendered)


def test_rule_registry_covers_contract_codes():
    # Importing repro.lint.rules registers the full contract set.
    import repro.lint.rules  # noqa: F401

    assert {f"RPR00{i}" for i in range(1, 9)} <= set(RULES)
    for rule in RULES.values():
        assert rule.code and rule.name and rule.description


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def _write_fixture(tmp_path: Path, source: str) -> Path:
    root = tmp_path / "repro"
    root.mkdir(exist_ok=True)
    (root / "mod.py").write_text(textwrap.dedent(source))
    return root


def test_cli_exit_one_on_errors(tmp_path, capsys):
    root = _write_fixture(tmp_path, "import random\n")
    assert main([str(root)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out
    assert "1 error(s)" in out


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    root = _write_fixture(tmp_path, "x = 1\n")
    assert main([str(root)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_warn_only_downgrades_exit(tmp_path, capsys):
    root = _write_fixture(tmp_path, "import random\n")
    assert main([str(root), "--warn-only"]) == 0
    assert "warn-only" in capsys.readouterr().out


def test_cli_json_format_and_output_artifact(tmp_path, capsys):
    root = _write_fixture(tmp_path, "import random\n")
    artifact = tmp_path / "findings.json"
    exit_code = main([str(root), "--format", "json", "--output", str(artifact)])
    assert exit_code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 1
    assert payload["exit_code"] == 1
    assert payload["findings"][0]["code"] == "RPR001"
    assert json.loads(artifact.read_text()) == payload


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_unknown_rule_code_is_usage_error(tmp_path, capsys):
    root = _write_fixture(tmp_path, "x = 1\n")
    assert main([str(root), "--select", "RPR999"]) == 2
    assert "RPR999" in capsys.readouterr().err


def test_cli_list_rules_and_version(capsys):
    assert main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    assert "RPR001" in listing and "rng-discipline" in listing
    assert main(["--version"]) == 0
    assert repro.__version__ in capsys.readouterr().out


# --------------------------------------------------------------------- #
# Self-check: the shipped tree satisfies its own contracts
# --------------------------------------------------------------------- #

def test_repro_lint_is_clean_on_own_source():
    src = Path(repro.__file__).parent
    result = run_lint([src])
    assert result.files_checked > 50
    messages = [finding.render() for finding in result.findings]
    assert messages == [], "repro-lint must be clean on src/repro"
