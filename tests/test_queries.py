"""Tests for count queries, workload generation and relative-error evaluation."""

import numpy as np
import pytest

from repro.dataset.adult import generate_adult
from repro.generalization.merging import generalize_table
from repro.perturbation.uniform import perturb_table
from repro.queries.count_query import CountQuery, answer_on_perturbed, answer_on_raw
from repro.queries.error import average_relative_error, evaluate_workload
from repro.queries.workload import WorkloadConfig, generate_workload


class TestCountQuery:
    def test_build_normalises_conditions(self):
        a = CountQuery.build({"B": "2", "A": "1"}, "x")
        b = CountQuery.build({"A": "1", "B": "2"}, "x")
        assert a == b
        assert a.dimensionality == 2

    def test_answer_on_raw(self, small_table):
        query = CountQuery.build({"Gender": "male", "Job": "eng"}, "d0")
        assert answer_on_raw(query, small_table) == 6

    def test_answer_on_unperturbed_data_is_exact(self, small_table):
        published = perturb_table(small_table, 1.0, rng=0)  # p = 1: no change
        query = CountQuery.build({"Job": "eng"}, "d0")
        assert answer_on_perturbed(query, published, 1.0) == pytest.approx(
            answer_on_raw(query, small_table)
        )

    def test_answer_on_empty_selection_is_zero(self, small_table):
        published = perturb_table(small_table, 0.5, rng=0)
        query = CountQuery.build({"Gender": "female", "Job": "artist"}, "d0")
        assert answer_on_perturbed(query, published, 0.5) == 0.0

    def test_estimate_unbiased_over_perturbations(self, small_table):
        query = CountQuery.build({"Job": "eng"}, "d0")
        truth = answer_on_raw(query, small_table)
        estimates = [
            answer_on_perturbed(query, perturb_table(small_table, 0.5, rng=seed), 0.5)
            for seed in range(400)
        ]
        assert np.mean(estimates) == pytest.approx(truth, abs=0.6)


class TestWorkloadGeneration:
    @pytest.fixture(scope="class")
    def adult(self):
        return generate_adult(10_000, seed=1)

    def test_pool_size_and_dimensionality(self, adult):
        config = WorkloadConfig(n_queries=50, dimensionalities=(1, 2, 3))
        queries = generate_workload(adult, adult, config, rng=0)
        assert len(queries) == 50
        assert all(1 <= q.dimensionality <= 3 for q in queries)

    def test_selectivity_filter_respected(self, adult):
        config = WorkloadConfig(n_queries=40, min_selectivity=0.01)
        queries = generate_workload(adult, adult, config, rng=0)
        for query in queries:
            assert answer_on_raw(query, adult) >= 0.01 * len(adult)

    def test_queries_are_unique(self, adult):
        config = WorkloadConfig(n_queries=60)
        queries = generate_workload(adult, adult, config, rng=0)
        assert len(set(queries)) == len(queries)

    def test_generalized_targets_translated(self, adult):
        generalization = generalize_table(adult)
        config = WorkloadConfig(n_queries=30)
        queries = generate_workload(
            adult, generalization.table, config, generalization=generalization, rng=0
        )
        schema = generalization.table.schema
        for query in queries:
            for name, value in query.conditions:
                assert value in schema.public_attribute(name)

    def test_reproducible(self, adult):
        config = WorkloadConfig(n_queries=25)
        assert generate_workload(adult, adult, config, rng=9) == generate_workload(
            adult, adult, config, rng=9
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_queries=0)
        with pytest.raises(ValueError):
            WorkloadConfig(min_selectivity=1.0)
        with pytest.raises(ValueError):
            WorkloadConfig(dimensionalities=())


class TestErrorEvaluation:
    @pytest.fixture(scope="class")
    def adult(self):
        return generate_adult(10_000, seed=2)

    def test_zero_error_for_identity_publication(self, adult):
        queries = generate_workload(adult, adult, WorkloadConfig(n_queries=30), rng=0)
        published = perturb_table(adult, 1.0, rng=0)
        assert average_relative_error(queries, adult, published, 1.0) == pytest.approx(0.0)

    def test_error_decreases_with_retention(self, adult):
        queries = generate_workload(adult, adult, WorkloadConfig(n_queries=60), rng=0)
        noisy = average_relative_error(queries, adult, perturb_table(adult, 0.1, rng=1), 0.1)
        clean = average_relative_error(queries, adult, perturb_table(adult, 0.9, rng=1), 0.9)
        assert clean < noisy

    def test_evaluation_reports_per_query_details(self, adult):
        queries = generate_workload(adult, adult, WorkloadConfig(n_queries=20), rng=0)
        published = perturb_table(adult, 0.5, rng=3)
        evaluation = evaluate_workload(queries, adult, published, 0.5)
        assert len(evaluation.errors) == len(queries)
        assert len(evaluation.true_answers) == len(queries)
        assert evaluation.median_error >= 0.0
        assert evaluation.average_error >= 0.0

    def test_empty_workload(self, adult):
        published = perturb_table(adult, 0.5, rng=0)
        evaluation = evaluate_workload([], adult, published, 0.5)
        assert evaluation.average_error == 0.0
