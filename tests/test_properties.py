"""Property-based tests (hypothesis) for the core mathematical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    chernoff_lower_bound,
    chernoff_upper_bound,
    convert_lambda_to_omega,
    convert_omega_to_lambda,
)
from repro.core.criterion import PrivacySpec, max_group_size, value_is_private
from repro.perturbation.matrix import PerturbationMatrix
from repro.perturbation.uniform import UniformPerturbation
from repro.reconstruction.mle import mle_frequencies, mle_frequencies_clipped
from repro.reconstruction.variance import expected_observed_count, observed_count_variance

retention = st.floats(min_value=0.05, max_value=0.99)
domain = st.integers(min_value=2, max_value=60)
frequency = st.floats(min_value=0.01, max_value=1.0)
lam_values = st.floats(min_value=0.05, max_value=2.0)
delta_values = st.floats(min_value=0.05, max_value=0.95)


class TestPerturbationMatrixProperties:
    @given(p=retention, m=domain)
    def test_columns_always_stochastic(self, p, m):
        array = PerturbationMatrix(p, m).as_array()
        assert np.allclose(array.sum(axis=0), 1.0)
        assert (array >= 0).all()

    @given(p=retention, m=domain)
    def test_inverse_is_exact(self, p, m):
        matrix = PerturbationMatrix(p, m)
        product = matrix.inverse() @ matrix.as_array()
        assert np.allclose(product, np.eye(m), atol=1e-9)

    @given(p=retention, m=domain, data=st.data())
    def test_invert_recovers_any_distribution(self, p, m, data):
        weights = data.draw(
            st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=m, max_size=m)
        )
        frequencies = np.asarray(weights) / np.sum(weights)
        matrix = PerturbationMatrix(p, m)
        observed = matrix.apply_to_frequencies(frequencies)
        assert np.allclose(matrix.invert_frequencies(observed), frequencies, atol=1e-9)


class TestMleProperties:
    @given(p=retention, m=domain, data=st.data())
    def test_mle_sums_to_one(self, p, m, data):
        counts = np.asarray(
            data.draw(st.lists(st.integers(min_value=0, max_value=500), min_size=m, max_size=m)),
            dtype=float,
        )
        if counts.sum() == 0:
            counts[0] = 1.0
        assert mle_frequencies(counts, p, m).sum() == pytest.approx(1.0)

    @given(p=retention, m=domain, data=st.data())
    def test_clipped_mle_is_a_distribution(self, p, m, data):
        counts = np.asarray(
            data.draw(st.lists(st.integers(min_value=0, max_value=500), min_size=m, max_size=m)),
            dtype=float,
        )
        if counts.sum() == 0:
            counts[0] = 1.0
        clipped = mle_frequencies_clipped(counts, p, m)
        assert (clipped >= 0).all()
        assert clipped.sum() == pytest.approx(1.0)


class TestMomentProperties:
    @given(p=retention, m=domain, f=frequency, size=st.integers(min_value=1, max_value=10_000))
    def test_expected_count_within_range(self, p, m, f, size):
        mu = expected_observed_count(size, f, p, m)
        assert 0 <= mu <= size

    @given(p=retention, m=domain, f=frequency, size=st.integers(min_value=1, max_value=10_000))
    def test_variance_non_negative(self, p, m, f, size):
        assert observed_count_variance(size, f, p, m) >= 0


class TestBoundProperties:
    @given(omega=st.floats(min_value=0.01, max_value=0.99), mu=st.floats(min_value=0.1, max_value=1e6))
    def test_chernoff_bounds_in_unit_interval(self, omega, mu):
        # The exponential can underflow to exactly 0.0 for huge mu, which is fine.
        assert 0.0 <= chernoff_upper_bound(omega, mu) <= 1.0
        assert 0.0 <= chernoff_lower_bound(omega, mu) <= 1.0

    @given(
        lam=lam_values,
        p=retention,
        m=domain,
        f=frequency,
        size=st.integers(min_value=1, max_value=100_000),
    )
    def test_lambda_omega_conversion_roundtrip(self, lam, p, m, f, size):
        omega = convert_lambda_to_omega(lam, size, f, p, m)
        assert convert_omega_to_lambda(omega, size, f, p, m) == pytest.approx(lam, rel=1e-9)


class TestCriterionProperties:
    @given(lam=lam_values, delta=delta_values, p=retention, m=domain, f=frequency)
    def test_corollary_4_threshold_is_the_privacy_boundary(self, lam, delta, p, m, f):
        spec = PrivacySpec(lam=lam, delta=delta, retention_probability=p, domain_size=m)
        threshold = max_group_size(spec, f)
        if not np.isfinite(threshold) or threshold > 10**7:
            return
        at_threshold = int(np.floor(threshold))
        if at_threshold >= 1:
            assert value_is_private(spec, at_threshold, f)
        assert not value_is_private(spec, int(np.floor(threshold)) + 1, f)

    @given(lam=lam_values, delta=delta_values, p=retention, m=domain)
    def test_max_group_size_decreasing_in_frequency(self, lam, delta, p, m):
        spec = PrivacySpec(lam=lam, delta=delta, retention_probability=p, domain_size=m)
        sizes = [max_group_size(spec, f) for f in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


class TestPerturbationOperatorProperties:
    @settings(max_examples=25)
    @given(p=retention, m=domain, seed=st.integers(min_value=0, max_value=2**31 - 1), size=st.integers(min_value=1, max_value=400))
    def test_perturbed_codes_stay_in_domain_and_preserve_length(self, p, m, seed, size):
        operator = UniformPerturbation(p, m)
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, m, size=size)
        published = operator.perturb_codes(codes, rng=seed)
        assert published.shape == codes.shape
        assert published.min() >= 0 and published.max() < m
