"""Byte-identity of the vectorized hot paths against their loop baselines.

PR 3 replaced per-record / per-group Python loops with numpy bulk operations
in the SPS sampling step, the personal-group index build, the closed-form MLE
and the naive Bayes training pass.  These tests pin the contract that made
that safe: for a fixed seed the vectorized code consumes the same RNG stream
and produces the same bytes as the loops it replaced.  The loop baselines are
the ones :mod:`repro.bench.micro` ships (imported, not duplicated, so the
micro-benchmarks and this suite always pin the same reference).  The batched
EM is the one documented exception — reassociated matrix products agree to
machine precision, not bit-for-bit.
"""

import numpy as np
import pytest

from repro.bench.micro import _reference_group_index, _reference_sample_counts
from repro.core.criterion import PrivacySpec
from repro.core.sps import _sample_counts, sps_publish
from repro.dataset.adult import generate_adult
from repro.dataset.census import generate_census
from repro.dataset.groups import personal_groups
from repro.perturbation.uniform import perturb_table
from repro.reconstruction.iterative import iterative_bayes_frequencies
from repro.reconstruction.mle import (
    mle_frequencies,
    mle_frequencies_clipped,
    mle_frequencies_matrix,
    reconstruct_counts,
)


class TestSampleCountsVectorization:
    def test_byte_identical_to_loop_across_many_cases(self):
        master = np.random.default_rng(0)
        for _ in range(300):
            m = int(master.integers(1, 64))
            counts = master.integers(0, 50, size=m).astype(np.int64)
            rate = float(master.random())
            seed = int(master.integers(0, 2**31))
            expected = _reference_sample_counts(counts, rate, np.random.default_rng(seed))
            actual = _sample_counts(counts, rate, np.random.default_rng(seed))
            assert np.array_equal(expected, actual)
            assert actual.dtype == expected.dtype

    def test_rng_stream_position_matches_loop(self):
        # Whatever follows the sampling step must see the same stream state.
        counts = np.array([10, 0, 3, 7, 0, 25], dtype=np.int64)
        ref_rng = np.random.default_rng(42)
        vec_rng = np.random.default_rng(42)
        _reference_sample_counts(counts, 0.37, ref_rng)
        _sample_counts(counts, 0.37, vec_rng)
        assert ref_rng.random() == vec_rng.random()

    def test_never_exceeds_counts_and_preserves_zeroes(self):
        counts = np.array([0, 1, 100, 0, 7], dtype=np.int64)
        sampled = _sample_counts(counts, 0.9, np.random.default_rng(1))
        assert (sampled <= counts).all()
        assert sampled[0] == 0 and sampled[3] == 0


class TestGroupIndexVectorization:
    @pytest.mark.parametrize("table", [generate_adult(3000, seed=5), generate_census(4000, seed=5)])
    def test_identical_keys_counts_indices(self, table):
        reference = _reference_group_index(table)
        index = personal_groups(table)
        assert len(index) == len(reference)
        for group in index:
            ref_group = reference[group.key]
            assert np.array_equal(group.indices, ref_group.indices)
            assert np.array_equal(group.sensitive_counts, ref_group.sensitive_counts)
            assert group.sensitive_counts.dtype == ref_group.sensitive_counts.dtype

    def test_key_elements_are_python_ints(self):
        table = generate_adult(500, seed=0)
        group = next(iter(personal_groups(table)))
        assert all(type(k) is int for k in group.key)


class TestSPSPublishStability:
    def test_published_bytes_depend_only_on_seed(self):
        table = generate_adult(2000, seed=3)
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
        first = sps_publish(table, spec, rng=7)
        second = sps_publish(table, spec, rng=7)
        assert np.array_equal(first.published.codes, second.published.codes)
        assert first.groups == second.groups


class TestBatchedMLE:
    def setup_method(self):
        rng = np.random.default_rng(11)
        self.counts = rng.integers(0, 80, size=(60, 9)).astype(float)
        self.counts[self.counts.sum(axis=1) == 0, 0] = 1  # every subset non-empty

    @pytest.mark.parametrize(
        "estimator",
        [
            mle_frequencies,
            mle_frequencies_clipped,
            lambda c, p: reconstruct_counts(c, p),
            lambda c, p: reconstruct_counts(c, p, clip=True),
        ],
    )
    def test_batch_rows_bitwise_equal_per_vector_calls(self, estimator):
        batched = estimator(self.counts, 0.5)
        stacked = np.stack([estimator(row, 0.5) for row in self.counts])
        assert np.array_equal(batched, stacked)

    def test_matrix_form_matches_closed_form_in_batch(self):
        batched = mle_frequencies_matrix(self.counts, 0.5)
        closed = mle_frequencies(self.counts, 0.5)
        assert np.allclose(batched, closed, atol=1e-12)

    def test_clipped_batch_zero_row_falls_back_to_uniform(self):
        # A subset whose raw MLE clips entirely to zero gets the uniform fallback.
        counts = np.array([[9.0, 1.0, 1.0, 1.0], [1.0, 1.0, 1.0, 1.0]])
        single = mle_frequencies_clipped(counts[1], 0.9)
        batched = mle_frequencies_clipped(counts, 0.9)
        assert np.array_equal(batched[1], single)

    def test_rejects_empty_subset_in_batch(self):
        counts = np.array([[1.0, 2.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            mle_frequencies(counts, 0.5)


class TestBatchedEM:
    def test_batch_agrees_with_per_vector_calls_to_machine_precision(self):
        rng = np.random.default_rng(2)
        counts = rng.integers(1, 150, size=(30, 12)).astype(float)
        batched = iterative_bayes_frequencies(counts, 0.5)
        stacked = np.stack([iterative_bayes_frequencies(row, 0.5) for row in counts])
        assert batched.shape == stacked.shape
        assert np.allclose(batched, stacked, atol=1e-12)

    def test_single_vector_path_unchanged_shape_and_simplex(self):
        result = iterative_bayes_frequencies(np.array([40.0, 10.0, 5.0]), 0.6)
        assert result.shape == (3,)
        assert result.min() >= 0 and np.isclose(result.sum(), 1.0)

    def test_batch_preserves_leading_shape(self):
        counts = np.ones((2, 3, 4))
        result = iterative_bayes_frequencies(counts, 0.5)
        assert result.shape == (2, 3, 4)


class TestNaiveBayesVectorizedFit:
    def test_fit_matches_per_group_reference(self):
        from repro.analysis.learning import NaiveBayesOnReconstruction

        table = generate_adult(2500, seed=9)
        perturbed = perturb_table(table, 0.5, rng=4)
        model = NaiveBayesOnReconstruction(0.5).fit(perturbed)

        # Reference: the pre-vectorization per-attribute-value loop.
        schema = perturbed.schema
        m = schema.sensitive_domain_size
        for column, attribute in enumerate(schema.public):
            likelihood = np.zeros((attribute.size, m))
            for value_code in range(attribute.size):
                mask = perturbed.public_codes[:, column] == value_code
                if not mask.any():
                    continue
                counts = perturbed.sensitive_counts(mask)
                frequencies = mle_frequencies_clipped(counts, 0.5, m)
                likelihood[value_code] = frequencies * mask.sum()
            column_totals = likelihood.sum(axis=0, keepdims=True)
            likelihood = (likelihood + 1.0) / (column_totals + 1.0 * attribute.size)
            assert np.array_equal(model._conditionals[column], likelihood)
