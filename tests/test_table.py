"""Unit tests for repro.dataset.table."""

import numpy as np
import pytest

from repro.dataset.schema import SchemaError
from repro.dataset.table import Table


class TestConstruction:
    def test_from_records_roundtrip(self, disease_schema):
        records = [("male", "eng", "d0"), ("female", "artist", "d9")]
        table = Table.from_records(disease_schema, records)
        assert len(table) == 2
        assert table.records() == records

    def test_empty_table(self, disease_schema):
        table = Table.from_records(disease_schema, [])
        assert len(table) == 0
        assert table.sensitive_counts().sum() == 0

    def test_codes_are_read_only(self, small_table):
        with pytest.raises(ValueError):
            small_table.codes[0, 0] = 1

    def test_wrong_column_count_rejected(self, disease_schema):
        with pytest.raises(SchemaError):
            Table(disease_schema, np.zeros((3, 2), dtype=np.int64))

    def test_out_of_domain_code_rejected(self, disease_schema):
        codes = np.zeros((1, 3), dtype=np.int64)
        codes[0, 2] = 99
        with pytest.raises(SchemaError):
            Table(disease_schema, codes)

    def test_negative_code_rejected(self, disease_schema):
        codes = np.zeros((1, 3), dtype=np.int64)
        codes[0, 0] = -1
        with pytest.raises(SchemaError):
            Table(disease_schema, codes)


class TestAccessorsAndCounting:
    def test_match_public_single_condition(self, small_table):
        mask = small_table.match_public({"Job": "eng"})
        assert mask.sum() == 12

    def test_match_public_multiple_conditions(self, small_table):
        mask = small_table.match_public({"Gender": "male", "Job": "eng"})
        assert mask.sum() == 8

    def test_count_with_sensitive_value(self, small_table):
        assert small_table.count({"Gender": "male", "Job": "eng"}, "d0") == 6
        assert small_table.count({"Gender": "male", "Job": "eng"}, "d1") == 2
        assert small_table.count({"Gender": "male", "Job": "eng"}, "d5") == 0

    def test_sensitive_counts_whole_table(self, small_table):
        counts = small_table.sensitive_counts()
        assert counts[0] == 8  # d0
        assert counts[3] == 3  # d3
        assert counts.sum() == len(small_table)

    def test_sensitive_counts_masked(self, small_table):
        mask = small_table.match_public({"Gender": "female"})
        counts = small_table.sensitive_counts(mask)
        assert counts[0] == 2 and counts[2] == 2

    def test_sensitive_frequencies_sum_to_one(self, small_table):
        freqs = small_table.sensitive_frequencies()
        assert freqs.sum() == pytest.approx(1.0)

    def test_sensitive_frequencies_empty_selection(self, small_table):
        mask = np.zeros(len(small_table), dtype=bool)
        assert small_table.sensitive_frequencies(mask).sum() == 0.0


class TestDerivation:
    def test_with_sensitive_codes_keeps_public(self, small_table):
        new_sensitive = np.zeros(len(small_table), dtype=np.int64)
        published = small_table.with_sensitive_codes(new_sensitive)
        assert np.array_equal(published.public_codes, small_table.public_codes)
        assert published.sensitive_counts()[0] == len(small_table)

    def test_with_sensitive_codes_wrong_length_rejected(self, small_table):
        with pytest.raises(SchemaError):
            small_table.with_sensitive_codes(np.zeros(3, dtype=np.int64))

    def test_select_by_mask(self, small_table):
        mask = small_table.match_public({"Job": "lawyer"})
        subset = small_table.select(mask)
        assert len(subset) == 3
        assert all(record[1] == "lawyer" for record in subset.records())

    def test_concat(self, small_table):
        doubled = small_table.concat(small_table)
        assert len(doubled) == 2 * len(small_table)

    def test_concat_schema_mismatch_rejected(self, small_table, binary_schema):
        other = Table.from_records(binary_schema, [("a", "low")])
        with pytest.raises(SchemaError):
            small_table.concat(other)

    def test_equality(self, small_table):
        same = Table(small_table.schema, small_table.codes)
        assert small_table == same
        different = small_table.with_sensitive_codes(
            np.zeros(len(small_table), dtype=np.int64)
        )
        assert small_table != different
