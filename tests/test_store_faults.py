"""Fault-injection suite: ``kill -9`` a live service, restart, lose nothing.

The service runs as a real subprocess over HTTP with a SQLite store; each
test SIGKILLs it — no shutdown hook, no flush, the unix equivalent of a
power cut — restarts a fresh process on the same store path and asserts the
write-through guarantees:

* every *committed* operation (registered dataset, completed job, applied
  delta append) is still there, byte-for-byte where bytes are pinned;
* a job killed *mid-flight* can never resurface as ``running`` or
  ``completed`` — it either never entered the store or restores as
  ``interrupted``/``failed``;
* the published CSV of a delta dataset always matches an uninterrupted
  reference run with the same sequence of applied appends — a torn append
  is invisible (the splice is atomic), a completed one is durable.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

_LAUNCHER = """
import sys
from repro.service.engine import AnonymizationService
from repro.service.http_api import make_server

service = AnonymizationService(snapshot_path=sys.argv[1])
server = make_server(service, host="127.0.0.1", port=0, verbose=False)
print(server.server_address[1], flush=True)
server.serve_forever()
"""

BASE_CSV = "City,Disease\n" + "\n".join(
    f"c{i % 4},d{i % 3}" for i in range(80)
) + "\n"

APPEND_A = [["c0", "d1"], ["c1", "d2"], ["c9", "d0"]]
APPEND_B = [["c2", "d0"], ["c3", "d1"]]


class ServiceProcess:
    """A repro-service subprocess bound to one store path."""

    def __init__(self, store_path: Path) -> None:
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
        self.proc = subprocess.Popen(
            [sys.executable, "-c", _LAUNCHER, str(store_path)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        line = self.proc.stdout.readline()
        if not line.strip():
            raise RuntimeError("service subprocess died before binding a port")
        self.url = f"http://127.0.0.1:{int(line)}"

    def kill9(self) -> None:
        """SIGKILL — no atexit hooks, no flush, no close."""
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def get(self, path: str):
        with urllib.request.urlopen(self.url + path, timeout=30) as response:
            return json.load(response)

    def post(self, path: str, payload: dict):
        request = urllib.request.Request(
            self.url + path,
            data=json.dumps(payload).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            return json.load(response)

    def post_csv(self, path: str, body: str):
        request = urllib.request.Request(
            self.url + path, data=body.encode(), method="POST",
            headers={"Content-Type": "text/csv"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.load(response)


@pytest.fixture()
def service_factory(tmp_path):
    """Start subprocess services on one shared store path; kill all at exit."""
    procs: list[ServiceProcess] = []
    store_path = tmp_path / "service.db"

    def start() -> ServiceProcess:
        svc = ServiceProcess(store_path)
        procs.append(svc)
        return svc

    yield start
    for svc in procs:
        if svc.proc.poll() is None:
            svc.proc.kill()
            svc.proc.wait(timeout=30)


def _delta_base_body(src: Path, out: Path, **extra) -> dict:
    return {
        "delta": True,
        "name": "living",
        "source": str(src),
        "sensitive": "Disease",
        "backend": "sps",
        "output": str(out),
        "seed": 11,
        **extra,
    }


def _reference_bytes(tmp_path: Path, appends: list[list[list[str]]]) -> bytes:
    """The published CSV of an uninterrupted in-process run (same seeds)."""
    from repro.service.engine import AnonymizationService

    src = tmp_path / "ref-base.csv"
    src.write_text(BASE_CSV, newline="")
    out = tmp_path / "ref-published.csv"
    svc = AnonymizationService()
    svc.publish_delta_base("living", src, "Disease", "sps", out, seed=11)
    for rows in appends:
        svc.append_rows("living", rows=rows)
    svc.close()
    return out.read_bytes()


class TestKill9Durability:
    def test_committed_state_survives_sigkill_and_bytes_match(
        self, tmp_path, service_factory
    ):
        src = tmp_path / "base.csv"
        src.write_text(BASE_CSV, newline="")
        out = tmp_path / "published.csv"

        first = service_factory()
        first.post_csv("/datasets?name=up&sensitive=Disease", BASE_CSV)
        publish = first.post("/publish", {"dataset": "up", "backend": "sps", "seed": 3})
        assert publish["status"] == "completed"
        base = first.post("/publish", _delta_base_body(src, out))
        assert base["status"] == "completed"
        append = first.post("/datasets/living/rows", {"rows": APPEND_A})
        assert append["status"] == "completed"
        first.kill9()  # no shutdown save ever runs

        second = service_factory()
        datasets = second.get("/datasets")
        assert [d["name"] for d in datasets] == ["up"]
        jobs = second.get("/jobs")
        assert [j["status"] for j in jobs] == ["completed"] * 3
        assert jobs[-1]["job_id"] == append["job_id"]

        # The delta dataset is still appendable and the bytes line up with an
        # uninterrupted run applying the same appends in the same order.
        append2 = second.post("/datasets/living/rows", {"rows": APPEND_B})
        assert append2["status"] == "completed"
        assert int(append2["job_id"].rsplit("-", 1)[1]) > int(
            append["job_id"].rsplit("-", 1)[1]
        )
        assert out.read_bytes() == _reference_bytes(tmp_path, [APPEND_A, APPEND_B])
        second.kill9()

    def test_sigkill_mid_append_leaves_dataset_consistent(
        self, tmp_path, service_factory
    ):
        src = tmp_path / "base.csv"
        src.write_text(BASE_CSV, newline="")
        out = tmp_path / "published.csv"

        first = service_factory()
        base = first.post("/publish", _delta_base_body(src, out))
        assert base["status"] == "completed"
        base_rows = 80

        # Fire the append from a thread and SIGKILL while it is (likely)
        # in flight.  Whatever the timing, the invariants below must hold.
        big_append = [[f"c{i % 4}", f"d{i % 3}"] for i in range(2000)]

        def do_append():
            try:
                first.post("/datasets/living/rows", {"rows": big_append})
            except (urllib.error.URLError, ConnectionError, OSError):
                pass  # the kill races the response; both outcomes are fine

        thread = threading.Thread(target=do_append)
        thread.start()
        time.sleep(0.10)
        first.kill9()
        thread.join(timeout=30)

        second = service_factory()
        stats = second.get("/stats")
        assert stats["store"]["backend"] == "sqlite"
        # No job may ever resurface as running after a restart.
        jobs = second.get("/jobs")
        assert all(j["status"] != "running" for j in jobs)
        # The dataset is exactly at base or base+append — never in between.
        # A follow-up append reveals which state committed via its row total,
        # and the published file must match the reference run for that state.
        append3 = second.post("/datasets/living/rows", {"rows": APPEND_A})
        assert append3["status"] == "completed"
        n_rows_final = append3["metadata"]["n_rows"]
        assert n_rows_final in {
            base_rows + len(APPEND_A),
            base_rows + len(big_append) + len(APPEND_A),
        }
        applied = [big_append] if n_rows_final > base_rows + len(APPEND_A) else []
        assert out.read_bytes() == _reference_bytes(tmp_path, [*applied, APPEND_A])
        second.kill9()

    def test_sigkill_mid_publish_never_fakes_completion(
        self, tmp_path, service_factory
    ):
        first = service_factory()
        big_csv = "City,Disease\n" + "\n".join(
            f"c{i % 50},d{i % 5}" for i in range(30_000)
        ) + "\n"
        first.post_csv("/datasets?name=big&sensitive=Disease", big_csv)

        def do_publish():
            try:
                first.post("/publish", {"dataset": "big", "backend": "sps", "seed": 1})
            except (urllib.error.URLError, ConnectionError, OSError):
                pass

        thread = threading.Thread(target=do_publish)
        thread.start()
        time.sleep(0.05)
        first.kill9()
        thread.join(timeout=30)

        second = service_factory()
        assert [d["name"] for d in second.get("/datasets")] == ["big"]
        for job in second.get("/jobs"):
            assert job["status"] in {"interrupted", "failed", "completed"}
            if job["status"] == "completed":
                assert job["published_records"] > 0
        # The service is fully operational on the same store.
        record = second.post("/publish", {"dataset": "big", "backend": "uniform"})
        assert record["status"] == "completed"
        second.kill9()

    def test_legacy_json_store_migrates_transparently_on_first_open(
        self, tmp_path, service_factory
    ):
        # Seed the *store path* with a version-1 JSON snapshot (the
        # pre-connector format) — the service must migrate it in place and
        # serve the old datasets from SQLite.
        from repro.dataset.adult import generate_adult
        from repro.service.models import table_to_json

        store_path = tmp_path / "service.db"
        store_path.write_text(json.dumps({
            "version": 1,
            "datasets": {"old": table_to_json(generate_adult(30, seed=2))},
            "jobs": [],
            "next_job_id": 8,
        }))
        svc = service_factory()
        assert [d["name"] for d in svc.get("/datasets")] == ["old"]
        assert svc.get("/stats")["store"]["backend"] == "sqlite"
        record = svc.post("/publish", {"dataset": "old", "backend": "uniform"})
        assert record["job_id"] == "job-0008"  # the legacy counter continues
        assert (tmp_path / "service.db.pre-store.json").exists()
        svc.kill9()
        # And the migrated store survives the kill like any other.
        again = service_factory()
        assert [d["name"] for d in again.get("/datasets")] == ["old"]
        assert again.get(f"/jobs/{record['job_id']}")["status"] == "completed"
        again.kill9()
