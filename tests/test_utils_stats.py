"""Unit tests for repro.utils.stats."""

import math

import numpy as np
import pytest

from repro.utils.stats import clamp, mean_and_standard_error, normalise_frequencies, relative_error


class TestMeanAndStandardError:
    def test_single_value_has_zero_se(self):
        mean, se = mean_and_standard_error([4.2])
        assert mean == pytest.approx(4.2)
        assert se == 0.0

    def test_constant_series_has_zero_se(self):
        mean, se = mean_and_standard_error([3.0, 3.0, 3.0, 3.0])
        assert mean == pytest.approx(3.0)
        assert se == pytest.approx(0.0)

    def test_known_values(self):
        values = [1.0, 2.0, 3.0, 4.0]
        mean, se = mean_and_standard_error(values)
        assert mean == pytest.approx(2.5)
        expected_se = np.std(values, ddof=1) / math.sqrt(4)
        assert se == pytest.approx(expected_se)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_standard_error([])


class TestRelativeError:
    def test_exact_estimate_has_zero_error(self):
        assert relative_error(10.0, 10.0) == 0.0

    def test_overestimate_and_underestimate_are_symmetric(self):
        assert relative_error(12.0, 10.0) == pytest.approx(relative_error(8.0, 10.0))

    def test_scales_with_truth(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestClamp:
    def test_inside_interval_unchanged(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below_clamps_to_low(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above_clamps_to_high(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)


class TestNormaliseFrequencies:
    def test_sums_to_one(self):
        result = normalise_frequencies([1, 2, 3, 4])
        assert result.sum() == pytest.approx(1.0)
        assert result[3] == pytest.approx(0.4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalise_frequencies([1, -1, 2])

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            normalise_frequencies([0, 0, 0])
