"""Tests for the iterative Bayesian (EM) reconstruction."""

import numpy as np
import pytest

from repro.perturbation.matrix import PerturbationMatrix
from repro.reconstruction.iterative import iterative_bayes_frequencies
from repro.reconstruction.mle import mle_frequencies_clipped


class TestIterativeBayes:
    def test_returns_a_distribution(self):
        counts = np.array([50.0, 30.0, 20.0])
        estimate = iterative_bayes_frequencies(counts, 0.4)
        assert (estimate >= 0).all()
        assert estimate.sum() == pytest.approx(1.0)

    def test_perfect_retention_recovers_observed_frequencies(self):
        counts = np.array([10.0, 30.0, 60.0])
        estimate = iterative_bayes_frequencies(counts, 1.0, tolerance=1e-12)
        assert np.allclose(estimate, counts / counts.sum(), atol=1e-6)

    def test_matches_clipped_mle_when_mle_is_feasible(self):
        # For observed counts consistent with an interior distribution the EM
        # fixed point coincides with the (feasible) MLE.
        original = np.array([0.5, 0.3, 0.2])
        matrix = PerturbationMatrix(0.4, 3)
        expected_observed = matrix.apply_to_frequencies(original) * 1000
        em = iterative_bayes_frequencies(expected_observed, 0.4)
        mle = mle_frequencies_clipped(expected_observed, 0.4)
        assert np.allclose(em, mle, atol=1e-4)
        assert np.allclose(em, original, atol=1e-4)

    def test_infeasible_observed_counts_stay_on_simplex(self):
        # Observed counts below the background rate drive the raw MLE negative;
        # the EM estimate must remain a valid distribution.
        counts = np.array([0.0, 200.0])
        estimate = iterative_bayes_frequencies(counts, 0.2)
        assert estimate[0] >= 0
        assert estimate.sum() == pytest.approx(1.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            iterative_bayes_frequencies(np.array([1.0, -2.0]), 0.5)
        with pytest.raises(ValueError):
            iterative_bayes_frequencies(np.zeros(3), 0.5)
        with pytest.raises(ValueError):
            iterative_bayes_frequencies(np.ones(3), 0.5, max_iterations=0)
