"""Tests for the unequal-size two-sample chi-square test (Equation 4)."""

import numpy as np
import pytest
from scipy import stats

from repro.generalization.chi_square import (
    chi_square_statistic,
    chi_square_threshold,
    same_distribution,
)


class TestStatistic:
    def test_identical_scaled_samples_give_zero(self):
        a = np.array([10.0, 20.0, 30.0])
        b = 3 * a
        assert chi_square_statistic(a, b) == pytest.approx(0.0)

    def test_symmetry(self):
        a = np.array([12.0, 30.0, 8.0])
        b = np.array([40.0, 35.0, 25.0])
        assert chi_square_statistic(a, b) == pytest.approx(chi_square_statistic(b, a))

    def test_manual_value(self):
        a = np.array([10.0, 30.0])
        b = np.array([30.0, 10.0])
        ratio = 1.0  # equal totals
        expected = ((ratio * 10 - ratio * 30) ** 2) / 40 + ((ratio * 30 - ratio * 10) ** 2) / 40
        assert chi_square_statistic(a, b) == pytest.approx(expected)

    def test_empty_bins_skipped(self):
        a = np.array([10.0, 0.0, 30.0])
        b = np.array([12.0, 0.0, 28.0])
        assert np.isfinite(chi_square_statistic(a, b))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            chi_square_statistic(np.ones(3), np.ones(4))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            chi_square_statistic(np.array([1.0, -1.0]), np.array([1.0, 1.0]))

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            chi_square_statistic(np.zeros(3), np.ones(3))


class TestThreshold:
    def test_matches_scipy_quantile(self):
        assert chi_square_threshold(2, 0.05) == pytest.approx(stats.chi2.ppf(0.95, df=2))
        assert chi_square_threshold(50, 0.05) == pytest.approx(stats.chi2.ppf(0.95, df=50))

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            chi_square_threshold(0)
        with pytest.raises(ValueError):
            chi_square_threshold(2, 0.0)


class TestSameDistribution:
    def test_same_underlying_distribution_not_rejected(self):
        rng = np.random.default_rng(0)
        p = np.array([0.5, 0.3, 0.2])
        a = rng.multinomial(500, p).astype(float)
        b = rng.multinomial(2000, p).astype(float)
        assert same_distribution(a, b)

    def test_clearly_different_distributions_rejected(self):
        rng = np.random.default_rng(1)
        a = rng.multinomial(800, [0.7, 0.2, 0.1]).astype(float)
        b = rng.multinomial(800, [0.2, 0.3, 0.5]).astype(float)
        assert not same_distribution(a, b)

    def test_small_samples_rarely_rejected(self):
        # With only a handful of records the test has little power, which is
        # exactly why unobserved/rare values end up merged.
        a = np.array([2.0, 1.0, 1.0])
        b = np.array([1.0, 2.0, 1.0])
        assert same_distribution(a, b)

    def test_false_rejection_rate_close_to_significance(self):
        rng = np.random.default_rng(3)
        p = np.array([0.4, 0.35, 0.25])
        rejections = 0
        trials = 400
        for _ in range(trials):
            a = rng.multinomial(600, p).astype(float)
            b = rng.multinomial(900, p).astype(float)
            if not same_distribution(a, b, significance=0.05):
                rejections += 1
        assert rejections / trials < 0.12
