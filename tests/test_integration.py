"""End-to-end integration tests across the whole publishing + analysis pipeline."""

import numpy as np
import pytest

from repro.analysis.utility import compare_up_and_sps
from repro.core.criterion import PrivacySpec
from repro.core.publisher import ReconstructionPrivacyPublisher
from repro.core.sps import sps_publish
from repro.core.testing import audit_table
from repro.dataset.adult import generate_adult
from repro.dataset.census import generate_census
from repro.dataset.groups import personal_groups
from repro.generalization.merging import generalize_table
from repro.perturbation.rho_privacy import max_retention_for_rho_privacy, satisfies_rho_privacy
from repro.queries.workload import WorkloadConfig, generate_workload
from repro.queries.error import average_relative_error
from repro.reconstruction.mle import mle_frequencies


class TestAdultEndToEnd:
    @pytest.fixture(scope="class")
    def adult(self):
        return generate_adult(15_000, seed=20150323)

    def test_full_pipeline_produces_consistent_artifacts(self, adult):
        publisher = ReconstructionPrivacyPublisher(lam=0.3, delta=0.3, retention_probability=0.5)
        result = publisher.publish(adult, rng=0)

        # 1. Generalisation shrank the schema but kept every record.
        assert len(result.prepared) == len(adult)
        assert sum(m.generalized_domain_size for m in result.generalization.merges) < sum(
            m.original_domain_size for m in result.generalization.merges
        )

        # 2. The audit found violations (ADULT's binary SA makes f >= 0.5 everywhere).
        assert result.audit.record_violation_rate > 0.5

        # 3. Every violating group was sampled; compliant groups were not.
        violating_keys = {a.group.key for a in result.audit.violating_groups}
        sampled_keys = {g.key for g in result.sps.groups if g.sampled}
        assert sampled_keys == violating_keys

        # 4. The published table keeps the NA structure of the prepared table.
        assert {g.key for g in personal_groups(result.published)} == {
            g.key for g in personal_groups(result.prepared)
        }

    def test_aggregate_utility_survives_while_personal_risk_is_bounded(self, adult):
        """The paper's headline claim on a medium-size ADULT sample."""
        publisher = ReconstructionPrivacyPublisher(lam=0.3, delta=0.3, retention_probability=0.5)
        prepared, generalization = publisher.prepare(adult)
        spec = publisher.spec_for(prepared)

        queries = generate_workload(
            adult, prepared, WorkloadConfig(n_queries=100), generalization=generalization, rng=1
        )
        comparison = compare_up_and_sps(prepared, spec, queries, runs=2, rng=2)
        # SPS costs some utility but stays in the same ballpark as UP
        # (the paper reports roughly +50 % in the ADULT worst case).
        assert comparison.sps_error <= 3.0 * comparison.up_error + 0.05

    def test_rho_privacy_guides_retention_choice(self, adult):
        p_max = max_retention_for_rho_privacy(2, rho1=0.4, rho2=0.8)
        assert 0 < p_max < 1
        assert satisfies_rho_privacy(p_max, 2, 0.4, 0.8)
        publisher = ReconstructionPrivacyPublisher(lam=0.3, delta=0.3, retention_probability=p_max)
        result = publisher.publish(adult, rng=3)
        assert len(result.published) > 0


class TestCensusEndToEnd:
    def test_census_pipeline_age_is_uninformative_and_violations_are_rare(self):
        census = generate_census(40_000, seed=20150323)
        generalization = generalize_table(census)
        assert generalization.merge_for("Age").generalized_domain_size == 1

        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=50)
        audit = audit_table(generalization.table, spec)
        # CENSUS's many balanced SA values make personal groups much harder to
        # violate than ADULT's binary SA (Figure 4 vs Figure 2).
        assert audit.group_violation_rate < 0.3

        result = sps_publish(generalization.table, spec, rng=0)
        assert abs(len(result.published) - len(census)) < 0.1 * len(census)

    def test_census_reconstruction_on_large_aggregate_is_accurate(self):
        census = generate_census(30_000, seed=7)
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=50)
        result = sps_publish(census, spec, rng=1)
        true_frequencies = census.sensitive_frequencies()
        estimates = mle_frequencies(result.published.sensitive_counts(), 0.5)
        assert np.abs(estimates - true_frequencies).max() < 0.02


class TestUtilityMonotonicity:
    def test_relative_error_falls_with_data_size(self):
        """Figure 5(d)'s shape: more data means better aggregate reconstruction."""
        spec_p = 0.5
        errors = []
        for size in (5_000, 40_000):
            census = generate_census(size, seed=11)
            queries = generate_workload(census, census, WorkloadConfig(n_queries=60), rng=0)
            spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=spec_p, domain_size=50)
            published = sps_publish(census, spec, rng=5).published
            errors.append(average_relative_error(queries, census, published, spec_p))
        assert errors[1] < errors[0]
