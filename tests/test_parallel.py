"""The shared multi-worker scheduler and its determinism contract.

The load-bearing suite for :mod:`repro.parallel`: for a fixed seed and
``chunk_size``, the published table, the CSV bytes and the audit must be
byte-identical at any ``workers`` count and on any backend — pinned here for
every registered strategy, the way ``tests/test_stream.py`` pins streaming
against the in-memory pipeline.  Also covers the ordered emitter, backend
resolution/fallback, worker-failure cleanup (the spool and partial-output
bugfix) and the perf-gate script's comparison logic.
"""

import importlib.util
import io
import os
import pickle
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.dataset.loaders import read_csv, write_csv
from repro.parallel import (
    OrderedEmitter,
    StrategyKernel,
    iter_ordered_map,
    resolve_backend,
    run_chunks,
)
from repro.parallel.kernels import UniformRowKernel, encode_block_csv
from repro.pipeline import publish
from repro.pipeline.execution import run_chunks_serial
from repro.pipeline.strategy import SPSStrategy
from repro.service.engine import AnonymizationService
from repro.stream import stream_publish

ALL_STRATEGIES = ("sps", "uniform", "dp-laplace", "dp-gaussian", "generalize+sps")


def _csv_text(table):
    buffer = io.StringIO()
    write_csv(table, buffer)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def adult_csv():
    return _csv_text(repro.generate_adult(1200, seed=11))


# --------------------------------------------------------------------- #
# OrderedEmitter
# --------------------------------------------------------------------- #


class TestOrderedEmitter:
    def test_out_of_order_pushes_flush_in_order(self):
        flushed = []
        emitter = OrderedEmitter(flushed.append)
        assert emitter.push(3, "d") == 0
        assert emitter.push(1, "b") == 0
        assert emitter.buffered == 2
        assert emitter.push(0, "a") == 2  # flushes 0 and 1
        assert flushed == ["a", "b"]
        assert emitter.push(2, "c") == 2  # flushes 2 and the buffered 3
        assert flushed == ["a", "b", "c", "d"]
        emitter.close()

    def test_duplicate_or_stale_index_rejected(self):
        emitter = OrderedEmitter(lambda r: None)
        emitter.push(0, "a")
        with pytest.raises(ValueError, match="already emitted"):
            emitter.push(0, "again")
        emitter.push(2, "c")
        with pytest.raises(ValueError, match="already emitted"):
            emitter.push(2, "again")

    def test_close_with_hole_raises(self):
        emitter = OrderedEmitter(lambda r: None)
        emitter.push(1, "b")
        with pytest.raises(ValueError, match="chunk 0 never arrived"):
            emitter.close()


# --------------------------------------------------------------------- #
# Backend resolution
# --------------------------------------------------------------------- #


def _module_level_sum(chunk, rng):
    return sum(chunk) + int(rng.integers(0, 10))


class TestResolveBackend:
    def test_single_worker_or_single_task_is_serial(self):
        assert resolve_backend("auto", 1, 100, _module_level_sum)[0] == "serial"
        assert resolve_backend("process", 8, 1, _module_level_sum)[0] == "serial"
        assert resolve_backend("serial", 8, 100, _module_level_sum)[0] == "serial"

    def test_auto_prefers_process_for_picklable_kernels(self):
        backend, payload = resolve_backend("auto", 4, 8, _module_level_sum)
        assert backend == "process"
        assert pickle.loads(payload) is _module_level_sum

    def test_auto_keeps_tiny_jobs_on_threads(self):
        # A few-chunk job can never amortise process-pool start-up, so auto
        # stays on threads below the floor; explicit process bypasses it.
        from repro.parallel.scheduler import AUTO_MIN_PROCESS_TASKS

        tiny = AUTO_MIN_PROCESS_TASKS - 1
        assert resolve_backend("auto", 4, tiny, _module_level_sum)[0] == "thread"
        assert resolve_backend("process", 4, tiny, _module_level_sum)[0] == "process"

    def test_auto_falls_back_to_thread_for_closures(self):
        captured = []
        backend, _ = resolve_backend("auto", 4, 8, lambda c, r: captured)
        assert backend == "thread"

    def test_explicit_process_with_unpicklable_kernel_is_an_error(self):
        captured = []
        with pytest.raises(ValueError, match="picklable"):
            resolve_backend("process", 4, 8, lambda c, r: captured)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown parallel backend"):
            resolve_backend("gpu", 4, 8, _module_level_sum)


# --------------------------------------------------------------------- #
# run_chunks / iter_ordered_map
# --------------------------------------------------------------------- #


class TestRunChunks:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_matches_sequential_reference_on_every_backend(self, backend):
        items = list(range(37))
        expected = run_chunks_serial(items, _module_level_sum, seed=5, chunk_size=4)
        got = run_chunks(
            items, _module_level_sum, seed=5, chunk_size=4, workers=3, backend=backend
        )
        assert got == expected

    def test_results_ordered_even_when_completion_is_reversed(self):
        first_may_finish = threading.Event()

        def stalling(chunk, rng):
            # The first chunk blocks until the last chunk has run, forcing
            # maximally out-of-order completion.
            if chunk[0] == 0:
                assert first_may_finish.wait(timeout=10)
            if chunk[0] == 8:
                first_may_finish.set()
            return chunk[0]

        got = run_chunks(
            list(range(10)), stalling, seed=0, chunk_size=2, workers=5, backend="thread"
        )
        assert got == [0, 2, 4, 6, 8]

    def test_worker_exception_propagates(self):
        def boom(chunk, rng):
            if chunk[0] >= 4:
                raise RuntimeError("kernel exploded")
            return chunk[0]

        with pytest.raises(RuntimeError, match="kernel exploded"):
            run_chunks(list(range(8)), boom, seed=0, chunk_size=2, workers=2, backend="thread")

    def test_lazy_payloads_pulled_with_backpressure(self):
        pulled = []

        def payloads():
            for i in range(20):
                pulled.append(i)
                yield (i,)

        def slow_identity(value):
            time.sleep(0.005)
            return value

        iterator = iter_ordered_map(
            slow_identity, payloads(), workers=2, backend="thread", n_tasks=20
        )
        first = next(iterator)
        assert first == 0
        # Submission backpressure: far fewer than all 20 payloads were pulled
        # to produce the first result (bounded in-flight window).
        assert len(pulled) <= 2 * 2 + 3
        assert list(iterator) == list(range(1, 20))


# --------------------------------------------------------------------- #
# Worker-count equivalence: every strategy, workers x chunk_rows
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def sequential_reference(adult_csv):
    """Per-strategy reference outputs of the sequential paths (workers=1)."""
    references = {}
    for strategy in ALL_STRATEGIES:
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        in_memory = publish(table, strategy=strategy, rng=7, chunk_size=32)
        streamed = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy=strategy,
            rng=7, chunk_size=32, chunk_rows=300, workers=1,
        )
        sink = io.StringIO()
        stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy=strategy,
            rng=7, chunk_size=32, chunk_rows=300, workers=1, output=sink,
        )
        references[strategy] = {
            "in_memory": in_memory,
            "streamed": streamed,
            "csv": sink.getvalue(),
        }
    return references


def _audit_digest(audit):
    if audit is None:
        return None
    return (
        audit.n_groups,
        len(audit.violating_groups),
        float(audit.group_violation_rate),
        float(audit.record_violation_rate),
        audit.total_records,
    )


class TestWorkerCountEquivalence:
    @pytest.mark.parametrize("chunk_rows", [250, 900])
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_bytes_csv_and_audit_identical_to_sequential(
        self, adult_csv, sequential_reference, strategy, workers, chunk_rows
    ):
        reference = sequential_reference[strategy]
        report = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy=strategy,
            rng=7, chunk_size=32, chunk_rows=chunk_rows, workers=workers,
        )
        # Published table: identical to the parallel-free streamed run and
        # the classic in-memory pipeline.
        assert (report.published.codes == reference["streamed"].published.codes).all()
        assert (report.published.codes == reference["in_memory"].published.codes).all()
        # CSV bytes: identical through the worker-side encode path.
        sink = io.StringIO()
        stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy=strategy,
            rng=7, chunk_size=32, chunk_rows=chunk_rows, workers=workers, output=sink,
        )
        assert sink.getvalue() == reference["csv"]
        # Audit and per-group records: same report content.
        assert _audit_digest(report.audit) == _audit_digest(reference["streamed"].audit)
        assert report.groups == reference["streamed"].groups
        assert report.workers == workers

    @pytest.mark.parametrize("workers", [2, 4])
    def test_in_memory_publish_workers_identical(self, adult_csv, sequential_reference, workers):
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        report = publish(table, strategy="sps", rng=7, chunk_size=32, workers=workers)
        reference = sequential_reference["sps"]["in_memory"]
        assert (report.published.codes == reference.published.codes).all()
        assert report.groups == reference.groups

    def test_thread_backend_also_byte_identical(self, adult_csv, sequential_reference):
        report = stream_publish(
            io.StringIO(adult_csv), sensitive="Income", strategy="sps",
            rng=7, chunk_size=32, chunk_rows=300, workers=3, parallel_backend="thread",
        )
        reference = sequential_reference["sps"]["streamed"]
        assert (report.published.codes == reference.published.codes).all()

    def test_workers_must_be_positive(self, adult_csv):
        with pytest.raises(ValueError, match="workers must be positive"):
            stream_publish(
                io.StringIO(adult_csv), sensitive="Income", rng=7, workers=0
            )
        with pytest.raises(ValueError, match="workers must be positive"):
            publish(repro.generate_adult(100, seed=0), workers=0)

    def test_workers_and_custom_runner_conflict(self):
        table = repro.generate_adult(100, seed=0)
        with pytest.raises(ValueError, match="not both"):
            publish(table, workers=2, runner=run_chunks_serial)


# --------------------------------------------------------------------- #
# Kernels
# --------------------------------------------------------------------- #


class TestKernels:
    def test_strategy_kernel_pickles_and_matches_direct_call(self, adult_csv):
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        strategy = SPSStrategy()
        resolved = strategy.resolve({})
        spec = strategy.spec_for(table, resolved)
        kernel = StrategyKernel(strategy, table.schema, spec, resolved)
        clone = pickle.loads(pickle.dumps(kernel))
        from repro.dataset.groups import personal_groups

        groups = list(personal_groups(table))[:5]
        direct = strategy.chunk_publisher(table.schema, spec, resolved)
        a = kernel(groups, np.random.default_rng(3))
        b = clone(groups, np.random.default_rng(3))
        c = direct(groups, np.random.default_rng(3))
        assert (a[0] == b[0]).all() and (a[0] == c[0]).all()
        assert tuple(a[1]) == tuple(b[1]) == tuple(c[1])

    def test_encode_block_csv_matches_write_csv_bytes(self, adult_csv):
        table = read_csv(io.StringIO(adult_csv), sensitive="Income")
        encoded = encode_block_csv(table.schema, table.codes[:50])
        expected = _csv_text(
            type(table)(table.schema, table.codes[:50])
        ).split("\r\n", 1)[1]  # drop the header line
        assert encoded.text == expected
        assert encoded.n_rows == 50

    def test_builder_errors_propagate_unmasked(self, adult_csv):
        # A real ValueError from a strategy's chunk_publisher builder must
        # reach the caller verbatim — only the None (no kernel) case may be
        # rewritten into the "cannot publish out-of-core" message.
        class BadBuilder(SPSStrategy):
            name = "sps-bad-builder"

            def chunk_publisher(self, schema, spec, resolved):
                raise ValueError("significance must be between 0 and 1")

        with pytest.raises(ValueError, match="significance must be between 0 and 1"):
            stream_publish(
                io.StringIO(adult_csv), sensitive="Income", strategy=BadBuilder(), rng=7
            )

    def test_uniform_row_kernel_matches_remap_plus_where(self):
        remaps = (np.array([1, 0]), np.array([0, 2, 1]))
        block = np.array([[0, 2], [1, 1], [0, 0]])
        retain = np.array([True, False, True])
        replacements = np.array([9, 9, 9])
        kernel = UniformRowKernel(remaps=remaps, schema=None, encode=False)
        out = kernel((block, retain, replacements))
        assert out.tolist() == [[1, 1], [0, 9], [1, 0]]


# --------------------------------------------------------------------- #
# Failure cleanup: the spool / partial-output bugfix
# --------------------------------------------------------------------- #


class _ExplodingWorkerStrategy(SPSStrategy):
    """Module-level (hence picklable) strategy whose worker dies mid-publish."""

    name = "sps-worker-death"

    def chunk_publisher(self, schema, spec, resolved):
        inner = super().chunk_publisher(schema, spec, resolved)

        def chunk_fn(chunk, rng):
            if chunk[0].key[0] > 0:  # not the very first chunk
                os._exit(13)  # simulate a hard worker crash (OOM-killer style)
            return inner(chunk, rng)

        return chunk_fn


class TestFailureCleanup:
    def test_spool_closed_when_read_fails_midway(self, tmp_path, monkeypatch):
        # A ragged row *after* the spool exists: before the fix the spool's
        # temp files were stranded on read-phase failures (cleanup only
        # covered the enforce stage).
        import repro.stream.engine as engine_module

        spools = []
        original = engine_module._RowSpool

        class RecordingSpool(original):
            def __init__(self, n_cols):
                super().__init__(n_cols)
                spools.append(self)

        monkeypatch.setattr(engine_module, "_RowSpool", RecordingSpool)
        rows = "City,Disease\n" + "Oslo,Flu\n" * 40 + "broken-row\n"
        with pytest.raises(Exception):
            stream_publish(
                io.StringIO(rows), sensitive="Disease", strategy="uniform",
                rng=1, chunk_rows=16,
            )
        assert spools, "row spool was never created"
        assert all(s._codes.closed and s._retain.closed for s in spools)

    def test_partial_output_removed_when_worker_process_dies(self, adult_csv, tmp_path):
        out = tmp_path / "published.csv"
        with pytest.raises(Exception) as excinfo:
            stream_publish(
                io.StringIO(adult_csv), sensitive="Income",
                strategy=_ExplodingWorkerStrategy(),
                rng=7, chunk_size=8, chunk_rows=300, workers=2,
                parallel_backend="process", output=out,
            )
        # A dead worker surfaces as a broken-pool error, never a hang ...
        assert "process" in type(excinfo.value).__name__.lower() or isinstance(
            excinfo.value, RuntimeError
        )
        # ... and the partial CSV the sink had started is gone.
        assert not out.exists()

    def test_partial_output_removed_on_worker_exception(self, adult_csv, tmp_path):
        class Exploding(SPSStrategy):
            name = "sps-exploding"

            def chunk_publisher(self, schema, spec, resolved):
                def chunk_fn(chunk, rng):
                    raise ValueError("strategy exploded mid-publish")

                return chunk_fn

        out = tmp_path / "published.csv"
        with pytest.raises(ValueError, match="exploded"):
            stream_publish(
                io.StringIO(adult_csv), sensitive="Income", strategy=Exploding(),
                rng=7, chunk_size=8, chunk_rows=300, workers=3, output=out,
            )
        assert not out.exists()


# --------------------------------------------------------------------- #
# Service integration: JobSpec.workers + HTTP field
# --------------------------------------------------------------------- #


class TestServiceWorkers:
    def test_stream_job_workers_recorded_and_byte_identical(self, adult_csv, tmp_path):
        source = tmp_path / "input.csv"
        source.write_text(adult_csv, newline="")
        service = AnonymizationService()
        out1 = tmp_path / "w1.csv"
        out4 = tmp_path / "w4.csv"
        record1 = service.publish_stream(
            source, "Income", "sps", seed=7, chunk_size=32, workers=1, output=out1
        )
        record4 = service.publish_stream(
            source, "Income", "sps", seed=7, chunk_size=32, workers=4, output=out4
        )
        assert record1.spec.max_workers == 1
        assert record4.spec.max_workers == 4
        assert record4.spec.to_json()["max_workers"] == 4
        assert out1.read_bytes() == out4.read_bytes()

    def test_stream_job_rejects_bad_workers(self, tmp_path):
        service = AnonymizationService()
        from repro.service.registry import ServiceError

        with pytest.raises(ServiceError, match="workers must be positive"):
            service.publish_stream(tmp_path / "x.csv", "Income", "sps", workers=0)

    def test_http_workers_field_both_job_modes(self, adult_csv, tmp_path):
        import json as json_module
        import threading
        import urllib.request

        from repro.service.http_api import make_server

        source = tmp_path / "input.csv"
        source.write_text(adult_csv, newline="")
        service = AnonymizationService()
        service.register_synthetic("smoke", "adult", n_records=500, seed=1)
        server = make_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.server_address[1]}"

            def post(payload):
                request = urllib.request.Request(
                    f"{base}/publish",
                    data=json_module.dumps(payload).encode(),
                    method="POST",
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as response:
                    return json_module.load(response)

            job = post({"dataset": "smoke", "backend": "sps", "seed": 3, "workers": 2})
            assert job["status"] == "completed"
            assert job["spec"]["max_workers"] == 2
            stream_job = post({
                "stream": True, "source": str(source), "sensitive": "Income",
                "backend": "sps", "seed": 3, "workers": 2,
            })
            assert stream_job["status"] == "completed"
            assert stream_job["spec"]["max_workers"] == 2
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# --------------------------------------------------------------------- #
# Bench parallel suite + the perf-gate script
# --------------------------------------------------------------------- #


def _load_gate_module():
    path = Path(__file__).parent.parent / "scripts" / "check_bench_regression.py"
    spec = importlib.util.spec_from_file_location("check_bench_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchParallel:
    def test_tiny_suite_runs_and_reports_byte_identity(self):
        from repro.bench.runner import run_suite
        from repro.bench.schema import validate_report
        from repro.bench.timing import TimingSpec

        report = run_suite(
            "parallel", tiny=True, timing=TimingSpec(warmup=0, repeats=1),
            scenario_filter=["sps"],
        )
        validate_report(report)
        assert report["suite"] == "parallel"
        assert [s["workers"] for s in report["scenarios"]] == [1, 2, 4]
        for entry in report["scenarios"]:
            assert entry["ops"]["byte_identical"] is True
            assert entry["ops"]["speedup_vs_w1"] > 0
        assert report["environment"]["cpu_count"] >= 1

    def test_scenario_listing_order_is_workers_ascending(self):
        from repro.bench.parallel import parallel_scenarios

        names = [s.name for s in parallel_scenarios(tiny=True)]
        assert names[0].endswith("/w1") and names[1].endswith("/w2") and names[2].endswith("/w4")
        assert len(names) == 6


class TestPerfGateScript:
    def test_throughput_regression_detected(self):
        gate = _load_gate_module()
        baseline = {
            "suite": "core",
            "scenarios": [{"name": "s/a/c1/w1", "seconds": {"best": 1.0}}],
        }
        fast = {
            "suite": "core",
            "scenarios": [{"name": "s/a/c1/w1", "seconds": {"best": 1.2}}],
        }
        slow = {
            "suite": "core",
            "scenarios": [{"name": "s/a/c1/w1", "seconds": {"best": 2.0}}],
        }
        assert gate.compare_throughput(fast, baseline, tolerance=0.25)[0] == []
        problems, _ = gate.compare_throughput(slow, baseline, tolerance=0.25)
        assert len(problems) == 1 and "+100%" in problems[0]

    def test_sub_floor_baselines_are_notes_not_failures(self):
        gate = _load_gate_module()
        baseline = {
            "suite": "service",
            "scenarios": [{"name": "tiny/w1", "seconds": {"best": 0.0008}}],
        }
        candidate = {
            "suite": "service",
            "scenarios": [{"name": "tiny/w1", "seconds": {"best": 0.003}}],
        }
        # +275% but under the 50ms gating floor: noted, never a failure.
        problems, notes = gate.compare_throughput(candidate, baseline, tolerance=0.25)
        assert problems == [] and "gating floor" in notes[0]

    def test_missing_baseline_scenarios_are_notes_not_failures(self):
        gate = _load_gate_module()
        candidate = {
            "suite": "core",
            "scenarios": [{"name": "new-scenario", "seconds": {"best": 5.0}}],
        }
        problems, notes = gate.compare_throughput(candidate, {"scenarios": []}, 0.25)
        assert problems == [] and len(notes) == 1

    def test_identity_check_flags_worker_dependent_counts(self):
        gate = _load_gate_module()
        report = {
            "suite": "service",
            "scenarios": [
                {"name": "sps/adult-100/c64/w1", "ops": {"published_records": 100}},
                {"name": "sps/adult-100/c64/w4", "ops": {"published_records": 99}},
            ],
        }
        problems = gate.check_identity(report)
        assert len(problems) == 1 and "depends on the worker count" in problems[0]

    def test_identity_check_flags_non_identical_bytes(self):
        gate = _load_gate_module()
        report = {
            "suite": "parallel",
            "scenarios": [{"name": "p/x/w2", "ops": {"byte_identical": False}}],
        }
        assert len(gate.check_identity(report)) == 1

    def test_determinism_check(self):
        gate = _load_gate_module()
        a = {"scenarios": [{"name": "x", "ops": {"published_records": 5, "rps": 1.5}}]}
        b = {"scenarios": [{"name": "x", "ops": {"published_records": 5, "rps": 9.9}}]}
        assert gate.check_determinism(a, b) == []  # floats (wall-clock) ignored
        c = {"scenarios": [{"name": "x", "ops": {"published_records": 6, "rps": 1.5}}]}
        assert len(gate.check_determinism(a, c)) == 1
