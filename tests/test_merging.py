"""Tests for graph-based public-attribute value merging (Section 3.4)."""

import numpy as np
import pytest

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.generalization.merging import generalize_table, merge_attribute_values


def build_table(rates: dict[str, float], size_per_value: int = 600, seed: int = 0) -> Table:
    """A table with one public attribute whose values have given P(high) rates."""
    schema = Schema(
        public=(Attribute("Group", tuple(rates)),),
        sensitive=Attribute("Income", ("low", "high")),
    )
    rng = np.random.default_rng(seed)
    records = []
    for value, rate in rates.items():
        highs = rng.random(size_per_value) < rate
        records += [(value, "high" if h else "low") for h in highs]
    return Table.from_records(schema, records)


class TestMergeAttributeValues:
    def test_values_with_same_impact_are_merged(self):
        table = build_table({"a": 0.3, "b": 0.3, "c": 0.8})
        merge = merge_attribute_values(table, "Group")
        assert merge.generalized_domain_size == 2
        assert merge.value_map["a"] == merge.value_map["b"]
        assert merge.value_map["a"] != merge.value_map["c"]

    def test_distinct_impacts_stay_separate(self):
        table = build_table({"a": 0.1, "b": 0.5, "c": 0.9})
        merge = merge_attribute_values(table, "Group")
        assert merge.generalized_domain_size == 3

    def test_all_same_impact_collapses_to_one(self):
        table = build_table({"a": 0.4, "b": 0.4, "c": 0.4, "d": 0.4})
        merge = merge_attribute_values(table, "Group")
        assert merge.generalized_domain_size == 1

    def test_unobserved_values_are_merged_together(self):
        schema = Schema(
            public=(Attribute("Group", ("a", "b", "ghost1", "ghost2")),),
            sensitive=Attribute("Income", ("low", "high")),
        )
        rng = np.random.default_rng(0)
        records = []
        for value, rate in (("a", 0.1), ("b", 0.9)):
            highs = rng.random(500) < rate
            records += [(value, "high" if h else "low") for h in highs]
        table = Table.from_records(schema, records)
        merge = merge_attribute_values(table, "Group")
        assert merge.value_map["ghost1"] == merge.value_map["ghost2"]

    def test_code_map_is_consistent_with_value_map(self):
        table = build_table({"a": 0.2, "b": 0.2, "c": 0.9})
        merge = merge_attribute_values(table, "Group")
        code_map = merge.code_map()
        for original_code, original_value in enumerate(merge.original.values):
            expected = merge.generalized.encode(merge.value_map[original_value])
            assert code_map[original_code] == expected

    def test_unknown_attribute_rejected(self, small_table):
        with pytest.raises(Exception):
            merge_attribute_values(small_table, "Salary")


class TestGeneralizeTable:
    def test_sensitive_column_untouched(self):
        table = build_table({"a": 0.3, "b": 0.3, "c": 0.8})
        result = generalize_table(table)
        assert np.array_equal(result.table.sensitive_codes, table.sensitive_codes)

    def test_record_count_preserved(self):
        table = build_table({"a": 0.3, "b": 0.35, "c": 0.8})
        result = generalize_table(table)
        assert len(result.table) == len(table)

    def test_group_counts_preserved_under_merge(self):
        table = build_table({"a": 0.3, "b": 0.3, "c": 0.8})
        result = generalize_table(table)
        merge = result.merge_for("Group")
        merged_label = merge.value_map["a"]
        merged_count = result.table.count({"Group": merged_label})
        assert merged_count == table.count({"Group": "a"}) + table.count({"Group": "b"})

    def test_translate_conditions(self):
        table = build_table({"a": 0.3, "b": 0.3, "c": 0.8})
        result = generalize_table(table)
        translated = result.translate_conditions({"Group": "b"})
        assert translated["Group"] == result.merge_for("Group").value_map["b"]

    def test_merge_for_unknown_attribute_rejected(self):
        table = build_table({"a": 0.3, "b": 0.8})
        result = generalize_table(table)
        with pytest.raises(KeyError):
            result.merge_for("Salary")

    def test_significance_controls_merging(self):
        # With a very small significance level (harder to reject), borderline
        # values merge; with a large one they separate.
        table = build_table({"a": 0.42, "b": 0.50}, size_per_value=800, seed=2)
        loose = generalize_table(table, significance=1e-6)
        strict = generalize_table(table, significance=0.2)
        assert loose.merge_for("Group").generalized_domain_size <= strict.merge_for(
            "Group"
        ).generalized_domain_size

    def test_multi_attribute_table(self, small_table):
        result = generalize_table(small_table)
        assert len(result.merges) == 2
        assert result.table.schema.sensitive_domain_size == 10
