"""Shared fixtures: small hand-built tables and schemas used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table


@pytest.fixture()
def disease_schema() -> Schema:
    """The Gender/Job/Disease schema of the paper's Example 2."""
    return Schema(
        public=(
            Attribute("Gender", ("male", "female")),
            Attribute("Job", ("eng", "lawyer", "artist")),
        ),
        sensitive=Attribute("Disease", tuple(f"d{i}" for i in range(10))),
    )


@pytest.fixture()
def small_table(disease_schema: Schema) -> Table:
    """A tiny deterministic table with two personal groups of known frequencies."""
    records = []
    # Personal group (male, eng): 8 records, 6 x d0, 2 x d1.
    records += [("male", "eng", "d0")] * 6 + [("male", "eng", "d1")] * 2
    # Personal group (female, eng): 4 records, 2 x d0, 2 x d2.
    records += [("female", "eng", "d0")] * 2 + [("female", "eng", "d2")] * 2
    # Personal group (male, lawyer): 3 records, all d3.
    records += [("male", "lawyer", "d3")] * 3
    return Table.from_records(disease_schema, records)


@pytest.fixture()
def binary_schema() -> Schema:
    """A minimal schema with a binary sensitive attribute (ADULT-like)."""
    return Schema(
        public=(Attribute("Group", ("a", "b", "c")),),
        sensitive=Attribute("Income", ("low", "high")),
    )


@pytest.fixture()
def skewed_binary_table(binary_schema: Schema) -> Table:
    """A table whose groups have very different sizes and frequencies."""
    rng = np.random.default_rng(7)
    rows = []
    sizes = {"a": 400, "b": 60, "c": 8}
    high_rates = {"a": 0.8, "b": 0.5, "c": 0.25}
    for group, size in sizes.items():
        highs = rng.random(size) < high_rates[group]
        for is_high in highs:
            rows.append((group, "high" if is_high else "low"))
    return Table.from_records(binary_schema, rows)
