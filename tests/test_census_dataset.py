"""Tests for the synthetic CENSUS generator and its paper calibration."""

import numpy as np
import pytest

from repro.dataset.census import (
    AGE_DOMAIN_SIZE,
    CENSUS_SIZE,
    OCCUPATION_DOMAIN_SIZE,
    census_sample_sizes,
    census_schema,
    generate_census,
)
from repro.generalization.chi_square import chi_square_statistic, chi_square_threshold


@pytest.fixture(scope="module")
def census_small():
    return generate_census(30_000, seed=20150323)


class TestSchema:
    def test_domain_sizes_match_the_paper(self):
        schema = census_schema()
        assert schema.public_attribute("Age").size == 77
        assert schema.public_attribute("Gender").size == 2
        assert schema.public_attribute("Education").size == 14
        assert schema.public_attribute("Marital").size == 6
        assert schema.public_attribute("Race").size == 9
        assert schema.sensitive.size == 50

    def test_full_size_and_sample_sizes(self):
        assert CENSUS_SIZE == 500_000
        assert census_sample_sizes() == (100_000, 200_000, 300_000, 400_000, 500_000)


class TestGenerator:
    def test_requested_size(self, census_small):
        assert len(census_small) == 30_000

    def test_reproducible(self):
        assert generate_census(5_000, seed=11) == generate_census(5_000, seed=11)

    def test_all_occupations_occur(self, census_small):
        counts = census_small.sensitive_counts()
        assert (counts > 0).all()

    def test_occupation_reasonably_balanced(self, census_small):
        frequencies = census_small.sensitive_frequencies()
        # No single occupation dominates: the paper calls CENSUS "balanced".
        assert frequencies.max() < 0.15

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate_census(-1)

    def test_occupation_independent_of_age(self, census_small):
        """Age should carry no information about Occupation (Table 5: 77 -> 1)."""
        ages = census_small.public_codes[:, 0]
        young = ages < AGE_DOMAIN_SIZE // 3
        old = ages >= 2 * AGE_DOMAIN_SIZE // 3
        counts_young = census_small.sensitive_counts(young)
        counts_old = census_small.sensitive_counts(old)
        statistic = chi_square_statistic(counts_young, counts_old)
        threshold = chi_square_threshold(OCCUPATION_DOMAIN_SIZE, 0.05)
        assert statistic <= threshold

    def test_occupation_depends_on_gender(self, census_small):
        """Gender should remain informative (Table 5 keeps Gender's domain)."""
        genders = census_small.public_codes[:, 1]
        counts_male = census_small.sensitive_counts(genders == 0)
        counts_female = census_small.sensitive_counts(genders == 1)
        statistic = chi_square_statistic(counts_male, counts_female)
        threshold = chi_square_threshold(OCCUPATION_DOMAIN_SIZE, 0.05)
        assert statistic > threshold

    def test_all_public_values_observed(self, census_small):
        public = census_small.public_codes
        schema = census_small.schema
        for column, attribute in enumerate(schema.public):
            observed = np.unique(public[:, column])
            assert len(observed) == attribute.size
