"""Tests for the service engine: deterministic parallelism, caching, jobs, snapshots."""

import numpy as np
import pytest

from repro.dataset.adult import generate_adult
from repro.service.engine import AnonymizationService
from repro.service.parallel import chunk_items, chunk_rngs, run_chunked
from repro.service.registry import NotFoundError, ServiceError


@pytest.fixture()
def service(skewed_binary_table) -> AnonymizationService:
    svc = AnonymizationService()
    svc.register_table("skewed", skewed_binary_table)
    return svc


class TestParallelPrimitives:
    def test_chunk_items_partitions_in_order(self):
        chunks = chunk_items(list(range(10)), 4)
        assert [list(c) for c in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_chunk_rngs_reproducible(self):
        a = [rng.random() for rng in chunk_rngs(42, 5)]
        b = [rng.random() for rng in chunk_rngs(42, 5)]
        assert a == b

    def test_run_chunked_order_independent_of_workers(self):
        items = list(range(100))

        def chunk_fn(chunk, rng):
            return [x + rng.integers(0, 1000) for x in chunk]

        sequential = run_chunked(items, chunk_fn, seed=1, chunk_size=7, max_workers=1)
        parallel = run_chunked(items, chunk_fn, seed=1, chunk_size=7, max_workers=8)
        assert sequential == parallel

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            chunk_items([1], 0)


class TestDeterministicEngine:
    @pytest.mark.parametrize("backend", ["sps", "dp-laplace", "generalize+sps"])
    def test_identical_output_at_any_worker_count(self, service, backend):
        """Same seed ⇒ byte-identical published table at any worker count."""
        reference = service.publish("skewed", backend, seed=21, chunk_size=2, max_workers=1)
        for workers in (2, 4, 8):
            other = service.publish(
                "skewed", backend, seed=21, chunk_size=2, max_workers=workers
            )
            assert reference.published.codes.tobytes() == other.published.codes.tobytes()

    def test_different_seeds_differ(self, service):
        a = service.publish("skewed", "sps", seed=1, chunk_size=2)
        b = service.publish("skewed", "sps", seed=2, chunk_size=2)
        assert not np.array_equal(a.published.codes, b.published.codes)


class TestJobsAndCaching:
    def test_second_publish_hits_group_index_cache(self, service):
        first = service.publish("skewed", "sps", seed=1)
        second = service.publish("skewed", "sps", seed=2)
        assert not first.timings.group_index_cached
        assert second.timings.group_index_cached
        assert second.timings.group_index_seconds == 0.0
        entry = service.datasets.get("skewed")
        assert entry.group_index_misses == 1
        assert entry.group_index_hits >= 1

    def test_job_records_spec_timings_audit(self, service):
        record = service.publish(
            "skewed", "sps", params={"lam": 0.4}, seed=5, chunk_size=2, max_workers=2
        )
        assert record.status == "completed"
        assert record.spec.params == {"lam": 0.4}
        assert record.spec.max_workers == 2
        assert record.timings.total_seconds > 0
        assert record.audit is not None
        assert record.audit.n_groups == 3
        fetched = service.job(record.job_id)
        assert fetched is record

    def test_failed_job_recorded_and_raised(self, service):
        with pytest.raises(ServiceError, match="failed"):
            service.publish("skewed", "sps", params={"lam": -1.0})
        records = service.jobs.records()
        assert records[-1].status == "failed"
        assert "lambda" in records[-1].error

    def test_unknown_dataset_and_job(self, service):
        with pytest.raises(NotFoundError):
            service.publish("nope", "sps")
        with pytest.raises(NotFoundError):
            service.job("job-9999")

    def test_duplicate_dataset_rejected_unless_replace(self, service, skewed_binary_table):
        with pytest.raises(ServiceError, match="already registered"):
            service.register_table("skewed", skewed_binary_table)
        service.register_table("skewed", skewed_binary_table, replace=True)

    def test_non_numeric_param_is_client_error(self, service):
        with pytest.raises(ServiceError, match="must be a number"):
            service.publish("skewed", "sps", params={"lam": None})
        assert service.jobs.records()[-1].status == "failed"

    def test_published_tables_evicted_beyond_cap(self, skewed_binary_table):
        from repro.service.registry import JobStore

        svc = AnonymizationService()
        svc.jobs = JobStore(max_published_tables=2)
        svc.register_table("skewed", skewed_binary_table)
        first = svc.publish("skewed", "uniform", seed=1)
        second = svc.publish("skewed", "uniform", seed=2)
        third = svc.publish("skewed", "uniform", seed=3)
        assert first.published is None  # evicted, record kept
        assert svc.job(first.job_id).status == "completed"
        assert second.published is not None
        assert third.published is not None
        with pytest.raises(ServiceError, match="evicted|no published table"):
            svc.published_table(first.job_id)


class TestAuditEndpointLogic:
    def test_audit_summary_and_worst_groups(self, service):
        report = service.audit("skewed", lam=0.3, delta=0.3, retention_probability=0.5)
        summary = report["summary"]
        assert summary["n_groups"] == 3
        assert 0.0 <= summary["group_violation_rate"] <= 1.0
        assert len(report["worst_violations"]) == summary["n_violating_groups"]

    def test_audit_reuses_cached_index(self, service):
        service.publish("skewed", "sps", seed=1)
        report = service.audit("skewed")
        assert report["group_index_cached"] is True


class TestSyntheticRegistration:
    def test_register_synthetic_adult(self):
        svc = AnonymizationService()
        entry = svc.register_synthetic("adult", "adult", n_records=2000, seed=0)
        assert entry.n_records == 2000
        assert entry.table.schema.sensitive_name == "Income"

    def test_unknown_generator_rejected(self):
        svc = AnonymizationService()
        with pytest.raises(ServiceError, match="unknown synthetic generator"):
            svc.register_synthetic("x", "nope")


class TestSnapshots:
    def test_snapshot_roundtrip(self, tmp_path, skewed_binary_table):
        path = tmp_path / "state.json"
        svc = AnonymizationService(snapshot_path=path)
        svc.register_table("skewed", skewed_binary_table)
        record = svc.publish("skewed", "sps", seed=3)
        svc.save()

        restored = AnonymizationService(snapshot_path=path)
        assert restored.datasets.get("skewed").table == skewed_binary_table
        restored_job = restored.job(record.job_id)
        assert restored_job.spec == record.spec
        assert restored_job.audit == record.audit
        assert restored_job.published is None  # tables are process-local
        # Job ids continue after the restored history.
        next_record = restored.publish("skewed", "uniform", seed=0)
        assert next_record.job_id != record.job_id

    def test_save_without_path_rejected(self, service):
        with pytest.raises(ServiceError, match="no snapshot path"):
            service.save()

    def test_snapshot_of_adult_sample(self, tmp_path):
        path = tmp_path / "adult.json"
        svc = AnonymizationService(snapshot_path=path)
        svc.register_table("adult", generate_adult(500, seed=0))
        svc.save()
        restored = AnonymizationService(snapshot_path=path)
        assert restored.datasets.get("adult").n_records == 500
