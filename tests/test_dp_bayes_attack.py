"""Tests for the naive-Bayes attack built from DP marginal answers."""

import pytest

from repro.dataset.adult import generate_adult
from repro.dp.bayes_attack import DPNaiveBayesAttacker, run_bayes_attack
from repro.dp.mechanisms import LaplaceMechanism
from repro.dp.queries import PrivateCountQuerier
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table


@pytest.fixture(scope="module")
def adult():
    return generate_adult(12_000, seed=9)


class TestDPNaiveBayesAttacker:
    def test_attack_beats_majority_baseline_at_low_privacy(self, adult):
        """Cormode's point: DP answers at a weak epsilon still let an attacker
        predict individual SA values better than the base rate."""
        querier = PrivateCountQuerier(adult, LaplaceMechanism(epsilon=1.0, sensitivity=1.0), rng=0)
        result = run_bayes_attack(adult, querier)
        assert result.accuracy > result.majority_baseline + 0.02
        assert result.lift > 0
        assert result.queries_used > 0
        assert result.epsilon_spent == pytest.approx(result.queries_used * 1.0)

    def test_heavy_noise_degrades_the_attack(self, adult):
        weak = run_bayes_attack(
            adult, PrivateCountQuerier(adult, LaplaceMechanism(epsilon=1.0), rng=1)
        )
        strong_noise = run_bayes_attack(
            adult, PrivateCountQuerier(adult, LaplaceMechanism(epsilon=0.0005), rng=1)
        )
        assert strong_noise.accuracy <= weak.accuracy + 0.02

    def test_predict_requires_fit(self, adult):
        attacker = DPNaiveBayesAttacker(
            PrivateCountQuerier(adult, LaplaceMechanism(epsilon=1.0), rng=0)
        )
        with pytest.raises(RuntimeError):
            attacker.predict([["Bachelors", "Sales", "White", "Male"]])

    def test_predict_validates_record_width(self, adult):
        attacker = DPNaiveBayesAttacker(
            PrivateCountQuerier(adult, LaplaceMechanism(epsilon=1.0), rng=0)
        ).fit()
        with pytest.raises(ValueError):
            attacker.predict([["Bachelors", "Sales"]])

    def test_empty_table_rejected(self):
        schema = Schema(
            public=(Attribute("A", ("x",)),),
            sensitive=Attribute("S", ("0", "1")),
        )
        empty = Table.from_records(schema, [])
        querier = PrivateCountQuerier(empty, LaplaceMechanism(epsilon=1.0), rng=0)
        with pytest.raises(ValueError):
            run_bayes_attack(empty, querier)
