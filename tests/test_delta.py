"""The incremental re-publish engine and its byte-identity contract.

The load-bearing example-based suite for :mod:`repro.delta` (the property
harness lives in ``tests/test_delta_properties.py``): for every
``delta_capable`` strategy and any append split, splicing the appended rows
through :func:`repro.delta.delta_publish` must equal a full re-publish of
``base + appended`` bit for bit — published CSV bytes, audit results and
per-chunk RNG streams — at any ``chunk_rows`` and any worker count.  The
fault-injection tests pin the atomicity half of the contract: a failure at
any point of the splice leaves the previously published file untouched.
"""

import csv
import dataclasses
import io
import json
import logging
import os
from pathlib import Path

import pytest

import repro
from repro.dataset.schema import SchemaError
from repro.delta import (
    DeltaState,
    DeltaUnsupportedError,
    delta_publish,
    publish_base,
)
from repro.delta.cli import main as delta_cli_main
from repro.obs.metrics import DELTA_GROUPS_TOUCHED, DELTA_ROWS_APPENDED
from repro.pipeline import PublishPipeline, publish
from repro.pipeline.strategy import (
    SPSStrategy,
    register_strategy,
    unregister_strategy,
)
from repro.stream import ChunkedReader, stream_publish

SEED = 7
CHUNK_SIZE = 8
CHUNK_ROWS = 400


def _write_csv(path: Path, header, rows) -> None:
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        writer.writerows(rows)


@pytest.fixture(scope="module")
def adult():
    """(header, records) of a small adult table, file column order."""
    table = repro.generate_adult(1200, seed=11)
    header = list(table.schema.public_names) + [table.schema.sensitive_name]
    return header, [list(row) for row in table.records()]


def _split_publish(
    tmp_path,
    header,
    records,
    n_append,
    *,
    strategy="sps",
    seed=SEED,
    chunk_size=CHUNK_SIZE,
    chunk_rows=CHUNK_ROWS,
    workers=1,
    sensitive="Income",
):
    """Publish base, delta-splice the tail, full-publish everything.

    Returns ``(delta_bytes, full_bytes, delta_report, full_report)``.
    """
    base_csv = tmp_path / "base.csv"
    append_csv = tmp_path / "append.csv"
    full_csv = tmp_path / "full.csv"
    _write_csv(base_csv, header, records[:-n_append])
    _write_csv(append_csv, header, records[-n_append:])
    _write_csv(full_csv, header, records)

    published = tmp_path / "published.csv"
    base_report = publish_base(
        base_csv, sensitive=sensitive, output=published, strategy=strategy,
        rng=seed, chunk_size=chunk_size, chunk_rows=chunk_rows,
    )
    assert base_report.mode == "base" and base_report.state is not None
    delta_report = delta_publish(base_report.state, append_csv, workers=workers)

    full_out = tmp_path / "full_published.csv"
    full_report = stream_publish(
        full_csv, sensitive=sensitive, strategy=strategy, rng=seed,
        chunk_size=chunk_size, chunk_rows=chunk_rows, output=full_out,
    )
    return published.read_bytes(), full_out.read_bytes(), delta_report, full_report


# --------------------------------------------------------------------- #
# Byte identity: delta == full, for every capable strategy
# --------------------------------------------------------------------- #


class TestByteIdentity:
    @pytest.mark.parametrize("strategy", ["sps", "dp-laplace", "dp-gaussian"])
    def test_delta_equals_full_publish(self, adult, tmp_path, strategy):
        header, records = adult
        delta_bytes, full_bytes, delta_report, full_report = _split_publish(
            tmp_path, header, records, 120, strategy=strategy
        )
        assert delta_bytes == full_bytes
        assert delta_report.mode == "delta"
        assert delta_report.rows_appended == 120
        assert delta_report.n_rows == len(records)
        if strategy == "sps":
            assert delta_report.audit is not None and full_report.audit is not None
            assert (
                delta_report.audit.group_violation_rate
                == full_report.audit.group_violation_rate
            )
            assert delta_report.audit.is_private == full_report.audit.is_private
        else:
            # DP strategies have no per-group audit on either path.
            assert delta_report.audit is None and full_report.audit is None

    @pytest.mark.parametrize("workers", [1, 3])
    def test_workers_never_change_bytes(self, adult, tmp_path, workers):
        header, records = adult
        delta_bytes, full_bytes, _, _ = _split_publish(
            tmp_path, header, records, 90, workers=workers
        )
        assert delta_bytes == full_bytes

    @pytest.mark.parametrize("chunk_rows", [97, 1000])
    def test_chunk_rows_never_changes_bytes(self, adult, tmp_path, chunk_rows):
        header, records = adult
        delta_bytes, full_bytes, _, _ = _split_publish(
            tmp_path, header, records, 75, chunk_rows=chunk_rows
        )
        assert delta_bytes == full_bytes

    def test_in_memory_rows_equal_csv_append(self, adult, tmp_path):
        header, records = adult
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, header, records[:-60])
        published = tmp_path / "published.csv"
        report = publish_base(
            base_csv, sensitive="Income", output=published,
            rng=SEED, chunk_size=CHUNK_SIZE,
        )
        # An in-memory batch (no header row, base column order) and a CSV
        # source of the same rows splice to the same bytes.
        rows_out = tmp_path / "rows.csv"
        delta_publish(report.state, records[-60:], output=rows_out)
        append_csv = tmp_path / "append.csv"
        _write_csv(append_csv, header, records[-60:])
        csv_out = tmp_path / "from-csv.csv"
        delta_publish(report.state, append_csv, output=csv_out)
        assert rows_out.read_bytes() == csv_out.read_bytes()

    def test_chained_appends_equal_one_full_publish(self, adult, tmp_path):
        header, records = adult
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, header, records[:-100])
        published = tmp_path / "published.csv"
        report = publish_base(
            base_csv, sensitive="Income", output=published,
            rng=SEED, chunk_size=CHUNK_SIZE,
        )
        state = report.state
        # Two successive appends, each advancing the state in place.
        first = delta_publish(state, records[-100:-40])
        second = delta_publish(first.state, records[-40:])
        assert second.state.n_rows == len(records)

        full_csv = tmp_path / "full.csv"
        _write_csv(full_csv, header, records)
        full_out = tmp_path / "full_published.csv"
        stream_publish(
            full_csv, sensitive="Income", strategy="sps", rng=SEED,
            chunk_size=CHUNK_SIZE, output=full_out,
        )
        assert published.read_bytes() == full_out.read_bytes()

    def test_successor_state_round_trips_through_json(self, adult, tmp_path):
        header, records = adult
        _, _, delta_report, _ = _split_publish(tmp_path, header, records, 50)
        state = delta_report.state
        assert DeltaState.from_json(state.to_json()) == state
        path = tmp_path / "state.json"
        state.save(path)
        assert DeltaState.load(path) == state


# --------------------------------------------------------------------- #
# Dirty-chunk resolution and the loud full fallback
# --------------------------------------------------------------------- #

_TINY_HEADER = ["City", "Disease"]


def _tiny_rows(cities, diseases, repeat=4):
    return [[c, d] for c in cities for d in diseases for _ in range(repeat)]


class TestDirtyChunks:
    def _base(self, tmp_path, rows, chunk_size=1):
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, rows)
        return publish_base(
            base_csv, sensitive="Disease", output=tmp_path / "published.csv",
            rng=3, chunk_size=chunk_size,
        )

    def test_key_localized_append_leaves_most_chunks_clean(self, adult, tmp_path):
        # Appending rows for one key range must not dirty the whole output.
        rows = _tiny_rows("abcdefgh", ["flu", "cold"])
        report = self._base(tmp_path, rows)  # 8 groups, chunk_size=1
        appended = [["h", "flu"], ["h", "cold"]]
        delta = delta_publish(report.state, appended)
        assert delta.mode == "delta"
        assert delta.n_chunks == 8
        assert delta.n_chunks_dirty == 1
        assert delta.groups_touched == 1

    def test_new_group_dirties_insertion_point_onward(self, tmp_path):
        rows = _tiny_rows("aceg", ["flu", "cold"])
        report = self._base(tmp_path, rows)  # groups a, c, e, g
        # "b" inserts at position 1: chunks 1.. shift, chunk 0 stays clean.
        delta = delta_publish(report.state, [["b", "flu"]])
        assert delta.mode == "delta"
        assert delta.n_chunks == 5
        assert 0 < delta.n_chunks_dirty < delta.n_chunks

    def test_new_sensitive_value_falls_back_to_full(self, tmp_path, caplog, monkeypatch):
        rows = _tiny_rows("abcd", ["flu", "cold"])
        report = self._base(tmp_path, rows)
        # A CLI test running earlier may have left the "repro" logger
        # non-propagating (configure_cli_logging does); caplog listens on
        # the root logger, so restore propagation for the capture.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        with caplog.at_level("WARNING", logger="repro.delta"):
            delta = delta_publish(report.state, [["a", "covid"]])
        assert delta.mode == "full"
        assert delta.n_chunks_dirty == delta.n_chunks
        assert any("sensitive domain" in r.message for r in caplog.records)
        # The fallback is loud but still byte-identical to a full publish.
        full_csv = tmp_path / "full.csv"
        _write_csv(full_csv, _TINY_HEADER, rows + [["a", "covid"]])
        full_out = tmp_path / "full_published.csv"
        stream_publish(
            full_csv, sensitive="Disease", strategy="sps", rng=3,
            chunk_size=1, output=full_out,
        )
        assert Path(report.state.output).read_bytes() == full_out.read_bytes()


# --------------------------------------------------------------------- #
# Stance flag and error surfaces
# --------------------------------------------------------------------- #


class TestStanceAndErrors:
    @pytest.mark.parametrize("strategy", ["uniform", "generalize+sps"])
    def test_non_capable_strategy_refused(self, tmp_path, strategy):
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("ab", ["flu", "cold"]))
        with pytest.raises(DeltaUnsupportedError, match="delta_capable"):
            publish_base(
                base_csv, sensitive="Disease", output=tmp_path / "out.csv",
                strategy=strategy, rng=1,
            )

    def test_output_must_be_a_path(self, tmp_path):
        with pytest.raises(ValueError, match="path"):
            publish_base(
                io.StringIO("City,Disease\na,flu\n"), sensitive="Disease",
                output=io.StringIO(), rng=1,
            )

    def test_state_version_rejected(self, adult, tmp_path):
        header, records = adult
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, header, records[:200])
        report = publish_base(
            base_csv, sensitive="Income", output=tmp_path / "out.csv", rng=1
        )
        payload = report.state.to_json()
        payload["state_version"] = 99
        with pytest.raises(ValueError, match="version"):
            DeltaState.from_json(payload)

    def test_inconsistent_state_rejected(self, tmp_path):
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("abcd", ["flu", "cold"]))
        report = publish_base(
            base_csv, sensitive="Disease", output=tmp_path / "out.csv",
            rng=1, chunk_size=1,
        )
        broken = dataclasses.replace(
            report.state, chunk_row_counts=report.state.chunk_row_counts[:-1]
        )
        with pytest.raises(ValueError, match="inconsistent"):
            delta_publish(broken, [["a", "flu"]])

    def test_tampered_base_file_detected(self, tmp_path):
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("abcd", ["flu", "cold"]))
        report = publish_base(
            base_csv, sensitive="Disease", output=tmp_path / "out.csv",
            rng=1, chunk_size=1,
        )
        published = Path(report.state.output)
        lines = published.read_bytes().splitlines(keepends=True)
        published.write_bytes(b"".join(lines[:-2]))  # drop two published rows
        with pytest.raises(ValueError, match="modified outside the delta engine"):
            delta_publish(report.state, [["a", "flu"]])

    def test_appended_header_mismatch_detected(self, tmp_path):
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("ab", ["flu", "cold"]))
        report = publish_base(
            base_csv, sensitive="Disease", output=tmp_path / "out.csv", rng=1
        )
        wrong = tmp_path / "wrong.csv"
        _write_csv(wrong, ["Town", "Disease"], [["a", "flu"]])
        with pytest.raises(SchemaError, match="does not match the published"):
            delta_publish(report.state, wrong)

    def test_workers_must_be_positive(self, tmp_path):
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("ab", ["flu", "cold"]))
        report = publish_base(
            base_csv, sensitive="Disease", output=tmp_path / "out.csv", rng=1
        )
        with pytest.raises(ValueError, match="workers"):
            delta_publish(report.state, [["a", "flu"]], workers=0)

    def test_report_summary_is_json_ready(self, tmp_path):
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("ab", ["flu", "cold"]))
        report = publish_base(
            base_csv, sensitive="Disease", output=tmp_path / "out.csv", rng=1
        )
        delta = delta_publish(report.state, [["a", "flu"]])
        summary = json.loads(json.dumps(delta.summary()))
        assert summary["mode"] == "delta"
        assert summary["rows_appended"] == 1
        assert summary["audit"]["is_private"] in (True, False)


# --------------------------------------------------------------------- #
# Fault injection: every failure leaves the published base untouched
# --------------------------------------------------------------------- #


class _ExplodingDeltaStrategy(SPSStrategy):
    """Module-level (hence picklable) strategy whose kernel dies on demand.

    Armed through an environment variable so the *base* publish succeeds
    and only the later delta splice explodes — fork-started workers inherit
    the armed environment.
    """

    name = "sps-delta-exploding"

    def chunk_publisher(self, schema, spec, resolved):
        inner = super().chunk_publisher(schema, spec, resolved)

        def chunk_fn(chunk, rng):
            mode = os.environ.get("REPRO_TEST_DELTA_EXPLODE")
            if mode == "raise":
                raise OSError("disk full")
            if mode == "exit":
                os._exit(13)  # simulate a hard worker crash (OOM-killer style)
            return inner(chunk, rng)

        return chunk_fn


@pytest.fixture()
def exploding_strategy():
    strategy = _ExplodingDeltaStrategy()
    register_strategy(strategy)
    try:
        yield strategy
    finally:
        unregister_strategy(strategy.name)


def _no_temp_leftovers(directory: Path) -> bool:
    return not [p for p in directory.iterdir() if p.suffix == ".tmp" or ".tmp" in p.name]


class TestFaultInjection:
    def _exploding_base(self, tmp_path, exploding_strategy, monkeypatch):
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("abcdefgh", ["flu", "cold"]))
        report = publish_base(
            base_csv, sensitive="Disease", output=tmp_path / "published.csv",
            strategy=exploding_strategy, rng=3, chunk_size=1,
        )
        return report.state, Path(report.state.output).read_bytes()

    def test_kernel_failure_leaves_base_intact(
        self, tmp_path, exploding_strategy, monkeypatch
    ):
        state, base_bytes = self._exploding_base(
            tmp_path, exploding_strategy, monkeypatch
        )
        monkeypatch.setenv("REPRO_TEST_DELTA_EXPLODE", "raise")
        with pytest.raises(OSError, match="disk full"):
            delta_publish(state, [["h", "flu"]])
        assert Path(state.output).read_bytes() == base_bytes
        assert _no_temp_leftovers(tmp_path)

    def test_worker_death_leaves_base_intact(
        self, tmp_path, exploding_strategy, monkeypatch
    ):
        state, base_bytes = self._exploding_base(
            tmp_path, exploding_strategy, monkeypatch
        )
        monkeypatch.setenv("REPRO_TEST_DELTA_EXPLODE", "exit")
        # Appending new trailing groups dirties several chunks, enough for a
        # real process fan-out; the dead worker surfaces as a broken-pool
        # error, never a hang, and the splice never reaches the rename.
        appended = [["x", "flu"], ["y", "cold"], ["z", "flu"], ["z", "cold"]]
        with pytest.raises(Exception) as excinfo:
            delta_publish(state, appended, workers=2, parallel_backend="process")
        assert "process" in type(excinfo.value).__name__.lower() or isinstance(
            excinfo.value, RuntimeError
        )
        assert Path(state.output).read_bytes() == base_bytes
        assert _no_temp_leftovers(tmp_path)

    def test_sink_write_failure_mid_splice_leaves_base_intact(
        self, tmp_path, monkeypatch
    ):
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("abcdefgh", ["flu", "cold"]))
        report = publish_base(
            base_csv, sensitive="Disease", output=tmp_path / "published.csv",
            rng=3, chunk_size=1,
        )
        base_bytes = Path(report.state.output).read_bytes()

        from repro.delta import engine as engine_module

        def exploding_write(self, encoded):
            raise OSError("sink write failed")

        monkeypatch.setattr(
            engine_module._SpliceWriter, "write_encoded", exploding_write
        )
        with pytest.raises(OSError, match="sink write failed"):
            delta_publish(report.state, [["h", "flu"]])
        assert Path(report.state.output).read_bytes() == base_bytes
        assert _no_temp_leftovers(tmp_path)

    def test_schema_incompatible_append_leaves_base_intact(self, tmp_path):
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("ab", ["flu", "cold"]))
        report = publish_base(
            base_csv, sensitive="Disease", output=tmp_path / "published.csv",
            rng=3,
        )
        base_bytes = Path(report.state.output).read_bytes()
        with pytest.raises(SchemaError, match="appended rows, line 3"):
            delta_publish(report.state, [["a", "flu"], ["ragged"]])
        assert Path(report.state.output).read_bytes() == base_bytes
        assert _no_temp_leftovers(tmp_path)


# --------------------------------------------------------------------- #
# ChunkedReader.from_rows — the append source (regression, satellite #3)
# --------------------------------------------------------------------- #


class TestFromRows:
    def test_ragged_row_names_source_and_line(self):
        reader = ChunkedReader.from_rows(
            [["a", "flu"], ["ragged"]], _TINY_HEADER, sensitive="Disease"
        )
        with pytest.raises(SchemaError, match=r"appended rows.*line 3"):
            list(reader.chunks())

    def test_missing_sensitive_column_names_source(self):
        reader = ChunkedReader.from_rows(
            [["a", "b"]], ["City", "Town"], sensitive="Disease"
        )
        with pytest.raises(SchemaError, match="appended rows"):
            list(reader.chunks())

    def test_empty_batch_names_source(self):
        reader = ChunkedReader.from_rows([], _TINY_HEADER, sensitive="Disease")
        with pytest.raises(SchemaError, match="appended rows"):
            list(reader.chunks())

    def test_custom_label_used_in_errors(self):
        reader = ChunkedReader.from_rows(
            [["only"]], _TINY_HEADER, sensitive="Disease", label="POST body"
        )
        with pytest.raises(SchemaError, match="POST body"):
            list(reader.chunks())

    def test_rows_round_trip_like_a_file(self):
        reader = ChunkedReader.from_rows(
            [["a", "flu"], ["b", "cold"]], _TINY_HEADER,
            sensitive="Disease", chunk_rows=1,
        )
        assert [len(chunk) for chunk in reader.chunks()] == [1, 1]
        assert reader.public_names == ["City"]


# --------------------------------------------------------------------- #
# Front-door wiring: repro.publish(append=) and PublishPipeline.with_append
# --------------------------------------------------------------------- #


class TestPublishWiring:
    @pytest.fixture()
    def base_state(self, adult, tmp_path):
        header, records = adult
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, header, records[:-80])
        report = publish_base(
            base_csv, sensitive="Income", output=tmp_path / "published.csv",
            rng=SEED, chunk_size=CHUNK_SIZE,
        )
        return report.state, records[-80:]

    def test_publish_append_delegates(self, base_state, tmp_path):
        state, appended = base_state
        out = tmp_path / "delta-out.csv"
        report = publish(append=appended, delta_state=state, output=out)
        assert report.mode == "delta"
        assert report.rows_appended == 80
        assert out.exists()

    def test_pipeline_with_append(self, base_state, tmp_path):
        state, appended = base_state
        direct = tmp_path / "direct-out.csv"
        # Direct engine call first (separate output keeps the base pristine),
        # then the pipeline splices in place — same successor state.
        direct_report = delta_publish(state, appended, output=direct)
        report = PublishPipeline("sps").with_append(appended, state).run()
        assert report.mode == "delta"
        assert report.state.groups == direct_report.state.groups

    def test_publish_append_requires_state(self, base_state):
        _, appended = base_state
        with pytest.raises(ValueError, match="delta_state"):
            publish(append=appended)

    def test_publish_append_rejects_table_and_params(self, base_state):
        state, appended = base_state
        table = repro.generate_adult(50, seed=1)
        with pytest.raises(ValueError):
            publish(table, append=appended, delta_state=state)
        with pytest.raises(ValueError, match="delta state"):
            publish(append=appended, delta_state=state, lam=0.5)
        with pytest.raises(ValueError, match="chunk_rows"):
            publish(append=appended, delta_state=state, chunk_rows=10)

    def test_pipeline_strategy_mismatch_rejected(self, base_state):
        state, appended = base_state
        with pytest.raises(ValueError, match="sps"):
            PublishPipeline("uniform").with_append(appended, state)
        with pytest.raises(ValueError, match="parameters"):
            PublishPipeline("sps", lam=0.4).with_append(appended, state)

    def test_pipeline_run_with_table_and_append_conflicts(self, base_state):
        state, appended = base_state
        pipeline = PublishPipeline("sps").with_append(appended, state)
        with pytest.raises(ValueError):
            pipeline.run(repro.generate_adult(50, seed=1))

    def test_metrics_count_touched_groups_and_rows(self, base_state, tmp_path):
        state, appended = base_state
        groups_before = DELTA_GROUPS_TOUCHED.value(strategy="sps")
        rows_before = DELTA_ROWS_APPENDED.value(strategy="sps")
        report = delta_publish(state, appended, output=tmp_path / "m.csv")
        assert (
            DELTA_GROUPS_TOUCHED.value(strategy="sps") - groups_before
            == report.groups_touched
        )
        assert DELTA_ROWS_APPENDED.value(strategy="sps") - rows_before == 80


# --------------------------------------------------------------------- #
# Service layer: delta datasets as jobs
# --------------------------------------------------------------------- #


class TestServiceDelta:
    @pytest.fixture()
    def service_base(self, tmp_path):
        from repro.service.engine import AnonymizationService

        service = AnonymizationService()
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("abcd", ["flu", "cold"]))
        out = tmp_path / "published.csv"
        record = service.publish_delta_base(
            "living", base_csv, "Disease", "sps", out, seed=3, chunk_size=2
        )
        return service, record, out

    def test_delta_base_job_records_spec_and_state(self, service_base):
        service, record, out = service_base
        assert record.status == "completed"
        assert record.spec.delta is True
        assert record.spec.rows_appended == 0
        assert record.metadata["mode"] == "base"
        assert out.exists()
        assert "living" in service.deltas

    def test_append_rows_runs_incremental_job(self, service_base):
        service, _, out = service_base
        before = out.read_bytes()
        n_rows = service.deltas["living"].n_rows
        record = service.append_rows("living", rows=[["d", "flu"], ["d", "cold"]])
        assert record.status == "completed"
        assert record.spec.delta is True
        assert record.spec.rows_appended == 2
        assert record.metadata["mode"] == "delta"
        assert record.metadata["rows_appended"] == 2
        # The job timeline carries the delta phases, in order.
        phases = [event["event"] for event in record.events]
        assert phases.index("append_read") < phases.index("diff") < phases.index("splice")
        assert phases[-1] == "completed"
        # The published CSV advanced atomically and the state chained.
        assert out.read_bytes() != before
        assert service.deltas["living"].n_rows == n_rows + 2

    def test_append_from_source_path_records_row_count(self, service_base, tmp_path):
        service, _, _ = service_base
        append_csv = tmp_path / "append.csv"
        _write_csv(append_csv, _TINY_HEADER, [["d", "flu"], ["d", "cold"], ["e", "flu"]])
        record = service.append_rows("living", source=append_csv)
        assert record.status == "completed"
        # A source append only knows its row count after the read; the spec
        # is backfilled so HTTP clients see it, same as a rows= append.
        assert record.spec.rows_appended == 3
        assert record.spec.source == str(append_csv)
        assert record.metadata["rows_appended"] == 3

    def test_append_to_unknown_dataset_is_not_found(self, service_base):
        from repro.service.registry import NotFoundError

        service, _, _ = service_base
        with pytest.raises(NotFoundError, match="nope"):
            service.append_rows("nope", rows=[["a", "flu"]])

    def test_duplicate_delta_name_requires_replace(self, service_base, tmp_path):
        from repro.service.registry import ServiceError

        service, _, _ = service_base
        base_csv = tmp_path / "base2.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("ab", ["flu", "cold"]))
        with pytest.raises(ServiceError, match="already exists"):
            service.publish_delta_base(
                "living", base_csv, "Disease", "sps", tmp_path / "out2.csv"
            )

    def test_failed_append_marks_job_failed(self, service_base):
        from repro.service.registry import ServiceError

        service, _, out = service_base
        before = out.read_bytes()
        with pytest.raises(ServiceError):
            service.append_rows("living", rows=[["ragged"]])
        failed = [r for r in service.jobs.records() if r.status == "failed"]
        assert failed and failed[-1].error
        assert out.read_bytes() == before  # base survives the failed splice

    def test_delta_spec_round_trips_through_json(self, service_base):
        from repro.service.models import JobSpec

        _, record, _ = service_base
        payload = json.loads(json.dumps(record.spec.to_json()))
        assert payload["delta"] is True
        restored = JobSpec.from_json(payload)
        assert restored.delta is True
        assert restored.sensitive == "Disease"
        assert restored.rows_appended == 0


class TestServiceDeltaHttp:
    @pytest.fixture()
    def server(self, tmp_path):
        import threading

        from repro.service.engine import AnonymizationService
        from repro.service.http_api import make_server

        service = AnonymizationService()
        server = make_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{server.server_address[1]}", tmp_path
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    @staticmethod
    def _post_json(url, payload):
        import urllib.request

        request = urllib.request.Request(
            url, data=json.dumps(payload).encode(), method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return response.status, json.load(response)

    def test_delta_lifecycle_over_http(self, server):
        import urllib.error

        url, tmp_path = server
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("abcd", ["flu", "cold"]))
        out = tmp_path / "published.csv"
        status, job = self._post_json(f"{url}/publish", {
            "delta": True, "name": "living", "source": str(base_csv),
            "sensitive": "Disease", "backend": "sps", "output": str(out),
            "seed": 3, "chunk_size": 2,
        })
        assert status == 201
        assert job["spec"]["delta"] is True
        assert job["status"] == "completed"

        status, appended = self._post_json(f"{url}/datasets/living/rows", {
            "rows": [["d", "flu"], ["d", "cold"]],
        })
        assert status == 201
        assert appended["status"] == "completed"
        assert appended["metadata"]["mode"] == "delta"
        assert appended["spec"]["rows_appended"] == 2

        # Unknown dataset -> 404; malformed rows -> 400.
        with pytest.raises(urllib.error.HTTPError) as not_found:
            self._post_json(f"{url}/datasets/nope/rows", {"rows": [["a", "flu"]]})
        assert not_found.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as bad:
            self._post_json(f"{url}/datasets/living/rows", {"rows": "a,flu"})
        assert bad.value.code == 400


# --------------------------------------------------------------------- #
# The repro-delta CLI
# --------------------------------------------------------------------- #


class TestCli:
    def test_init_then_append_end_to_end(self, tmp_path, capsys):
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("abcd", ["flu", "cold"]))
        append_csv = tmp_path / "append.csv"
        _write_csv(append_csv, _TINY_HEADER, [["d", "flu"], ["d", "cold"]])
        state_path = tmp_path / "state.json"
        out = tmp_path / "published.csv"

        code = delta_cli_main([
            "init", str(base_csv), "--sensitive", "Disease",
            "--seed", "3", "--chunk-size", "2",
            "--output", str(out), "--state", str(state_path),
        ])
        assert code == 0
        base_summary = json.loads(capsys.readouterr().out)
        assert base_summary["mode"] == "base"
        assert state_path.exists() and out.exists()
        n_rows_base = base_summary["n_rows"]

        code = delta_cli_main([
            "append", str(append_csv), "--state", str(state_path),
        ])
        assert code == 0
        delta_summary = json.loads(capsys.readouterr().out)
        assert delta_summary["mode"] == "delta"
        assert delta_summary["rows_appended"] == 2
        # The state file advances so the next append chains off this one.
        saved = DeltaState.load(state_path)
        assert saved.n_rows == n_rows_base + 2

    def test_bad_inputs_exit_2(self, tmp_path, capsys):
        state_path = tmp_path / "state.json"
        assert delta_cli_main([
            "init", str(tmp_path / "missing.csv"), "--sensitive", "Disease",
            "--output", str(tmp_path / "out.csv"), "--state", str(state_path),
        ]) == 2
        # Unsupported strategy stance is a refusal, not a crash.
        base_csv = tmp_path / "base.csv"
        _write_csv(base_csv, _TINY_HEADER, _tiny_rows("ab", ["flu"]))
        assert delta_cli_main([
            "init", str(base_csv), "--sensitive", "Disease",
            "--strategy", "uniform",
            "--output", str(tmp_path / "out.csv"), "--state", str(state_path),
        ]) == 2
