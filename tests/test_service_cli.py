"""Tests for the ``python -m repro.service`` command-line front end."""

import json

import pytest

from repro.service.cli import main


def run_cli(capsys, *argv: str) -> dict | list:
    assert main(list(argv)) == 0
    return json.loads(capsys.readouterr().out)


class TestCli:
    def test_backends_verb(self, capsys):
        output = run_cli(capsys, "backends")
        assert {"sps", "uniform", "dp-laplace", "dp-gaussian", "generalize+sps"} <= set(output)

    def test_register_publish_audit_lifecycle_with_store(self, capsys, tmp_path):
        store = str(tmp_path / "state.json")
        created = run_cli(
            capsys,
            "register", "demo", "--synthetic", "adult", "--rows", "1500",
            "--seed", "1", "--store", store,
        )
        assert created["n_records"] == 1500

        job = run_cli(
            capsys,
            "publish", "--dataset", "demo", "--backend", "sps",
            "--lam", "0.4", "--seed", "7", "--workers", "2", "--store", store,
        )
        assert job["status"] == "completed"
        assert job["spec"]["params"] == {"lam": 0.4}
        assert job["audit"] is not None

        # A fresh invocation sees the persisted dataset and job history.
        jobs = run_cli(capsys, "jobs", "--store", store)
        assert [j["job_id"] for j in jobs] == [job["job_id"]]
        datasets = run_cli(capsys, "datasets", "--store", store)
        assert [d["name"] for d in datasets] == ["demo"]

        audit = run_cli(capsys, "audit", "--dataset", "demo", "--store", store)
        assert audit["summary"]["n_groups"] > 0

        stats = run_cli(capsys, "stats", "--store", store)
        assert stats["n_datasets"] == 1
        assert stats["n_jobs"] == 1

    def test_publish_writes_output_csv(self, capsys, tmp_path):
        store = str(tmp_path / "state.json")
        output = tmp_path / "published.csv"
        run_cli(
            capsys,
            "register", "demo", "--synthetic", "adult", "--rows", "800", "--store", store,
        )
        job = run_cli(
            capsys,
            "publish", "--dataset", "demo", "--backend", "uniform",
            "--output", str(output), "--store", store,
        )
        lines = output.read_text().splitlines()
        assert lines[0] == "Education,Occupation,Race,Gender,Income"
        assert len(lines) == job["published_records"] + 1

    def test_register_csv_requires_sensitive(self, capsys, tmp_path):
        csv_path = tmp_path / "data.csv"
        csv_path.write_text("a,b\nx,y\n")
        assert main(["register", "d", "--csv", str(csv_path)]) == 2
        assert "--sensitive" in capsys.readouterr().err

    def test_register_csv_file(self, capsys, tmp_path):
        csv_path = tmp_path / "data.csv"
        csv_path.write_text("Job,Income\neng,high\nartist,low\n")
        created = run_cli(
            capsys, "register", "d", "--csv", str(csv_path), "--sensitive", "Income"
        )
        assert created["n_records"] == 2

    def test_error_exit_code(self, capsys):
        assert main(["publish", "--dataset", "missing", "--backend", "sps"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_failed_publish_persisted_to_store(self, capsys, tmp_path):
        store = str(tmp_path / "state.json")
        run_cli(
            capsys,
            "register", "demo", "--synthetic", "adult", "--rows", "500", "--store", store,
        )
        assert main(
            ["publish", "--dataset", "demo", "--backend", "sps",
             "--lam", "-1", "--store", store]
        ) == 2
        capsys.readouterr()
        jobs = run_cli(capsys, "jobs", "--store", store)
        assert len(jobs) == 1
        assert jobs[0]["status"] == "failed"
        assert "lambda" in jobs[0]["error"]

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_experiments_runner_version_flag(self, capsys):
        from repro import __version__
        from repro.experiments.runner import main as experiments_main

        with pytest.raises(SystemExit) as excinfo:
            experiments_main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out
