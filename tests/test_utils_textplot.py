"""Unit tests for repro.utils.textplot."""

import pytest

from repro.utils.textplot import render_series, render_table


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table(["a", "b"], [[1, 2.5], [3, 4.25]])
        assert "a" in text and "b" in text
        assert "2.5" in text and "4.25" in text

    def test_title_on_first_line(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_columns_are_aligned(self):
        text = render_table(["name", "v"], [["long-name", 1], ["x", 22]])
        lines = text.splitlines()
        # The value column starts at the same offset in both data rows.
        assert lines[2].index("1") == lines[3].index("2")


class TestRenderSeries:
    def test_each_series_becomes_a_column(self):
        text = render_series("p", [0.1, 0.5], {"UP": [1.0, 2.0], "SPS": [1.5, 2.5]})
        assert "UP" in text and "SPS" in text
        assert "0.1" in text and "0.5" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series("p", [1, 2, 3], {"UP": [1.0, 2.0]})
