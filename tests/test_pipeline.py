"""Tests for the strategy-first publishing pipeline (repro.pipeline)."""

import numpy as np
import pytest

import repro
from repro.core.testing import audit_table
from repro.dataset.groups import personal_groups
from repro.pipeline import (
    ParamError,
    ParamSpec,
    PublishPipeline,
    PublishReport,
    PublishStrategy,
    StrategyOutcome,
    UnknownStrategyError,
    available_strategies,
    get_strategy,
    publish,
    register_strategy,
    strategy_descriptions,
    unregister_strategy,
)
from repro.service.engine import AnonymizationService

BUILTIN_STRATEGIES = {"sps", "uniform", "dp-laplace", "dp-gaussian", "generalize+sps"}


class TestRegistry:
    def test_builtin_strategies_registered(self):
        assert BUILTIN_STRATEGIES <= set(available_strategies())

    @pytest.mark.parametrize("name", sorted(BUILTIN_STRATEGIES))
    def test_round_trip_by_name(self, name):
        strategy = get_strategy(name)
        assert strategy.name == name
        assert name in strategy_descriptions()
        assert isinstance(strategy.params, tuple)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(UnknownStrategyError, match="unknown strategy"):
            get_strategy("no-such-strategy")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(get_strategy("sps"))

    def test_descriptions_expose_typed_specs(self):
        descriptions = strategy_descriptions()
        lam = next(s for s in descriptions["sps"]["params"] if s["name"] == "lam")
        assert lam["kind"] == "float"
        assert lam["default"] == 0.3
        assert descriptions["generalize+sps"]["generalizes"] is True
        assert descriptions["dp-laplace"]["audits"] is False


class TestTypedParams:
    def test_float_param_keeps_float_type(self):
        spec = ParamSpec.floating("x", 0.5)
        assert spec.coerce(1) == 1.0
        assert isinstance(spec.coerce(1), float)

    def test_int_param_preserves_int_type(self):
        spec = ParamSpec.integer("n", 4, minimum=1)
        assert spec.coerce(7) == 7
        assert isinstance(spec.coerce(7), int)
        assert isinstance(spec.coerce(7.0), int)

    def test_int_param_rejects_fractional_and_bool(self):
        spec = ParamSpec.integer("n", 4)
        with pytest.raises(ParamError, match="must be an integer"):
            spec.coerce(2.5)
        with pytest.raises(ParamError, match="must be an integer"):
            spec.coerce(True)

    def test_float_param_rejects_non_numbers(self):
        spec = ParamSpec.floating("x", 0.5)
        for bad in (None, "abc", True, float("nan")):
            with pytest.raises(ParamError, match="must be a number"):
                spec.coerce(bad)

    def test_numeric_strings_accepted_for_http_compatibility(self):
        # 1.1.x coerced str params with float(); keep accepting them.
        assert ParamSpec.floating("x", 0.5).coerce("0.3") == 0.3
        assert ParamSpec.integer("n", 1).coerce("7") == 7
        assert isinstance(ParamSpec.integer("n", 1).coerce("7"), int)
        with pytest.raises(ParamError, match="must be an integer"):
            ParamSpec.integer("n", 1).coerce("2.5")

    def test_range_violations_have_clear_errors(self):
        with pytest.raises(ParamError, match=r"lambda.*\(0, inf\)"):
            get_strategy("sps").resolve({"lam": -1.0})
        with pytest.raises(ParamError, match=r"delta.*\(0, 1\)"):
            get_strategy("sps").resolve({"delta": 1.0})
        with pytest.raises(ParamError, match=r"\(0, 1\]"):
            get_strategy("sps").resolve({"retention_probability": 0.0})

    def test_unknown_params_rejected(self):
        with pytest.raises(ParamError, match="does not accept parameters"):
            get_strategy("sps").resolve({"typo": 1.0})

    def test_bad_default_fails_at_declaration(self):
        with pytest.raises(ParamError):
            ParamSpec.floating("x", -1.0, minimum=0.0)

    def test_defaults_are_coerced_to_declared_type(self):
        assert ParamSpec.integer("n", 2.0).default == 2
        assert isinstance(ParamSpec.integer("n", 2.0).default, int)
        assert isinstance(ParamSpec.floating("x", 1).default, float)


class TestPublishEntryPoint:
    @pytest.mark.parametrize("name", sorted(BUILTIN_STRATEGIES))
    def test_every_strategy_publishes(self, skewed_binary_table, name):
        report = publish(skewed_binary_table, strategy=name, rng=7, chunk_size=2)
        assert isinstance(report, PublishReport)
        assert report.strategy == name
        assert len(report.published) > 0
        assert report.published.schema.sensitive_name == "Income"
        assert report.total_seconds >= 0.0
        assert set(report.timings) == {
            "prepare", "generalize", "group_index", "audit", "enforce", "report"
        }
        # The report stage is the residual, so the stages sum to the total.
        assert report.total_seconds == pytest.approx(sum(report.timings.values()))

    def test_audit_runs_for_auditing_strategies(self, skewed_binary_table):
        report = publish(skewed_binary_table, strategy="sps", rng=1)
        reference = audit_table(skewed_binary_table, report.spec)
        assert report.audit.group_violation_rate == reference.group_violation_rate
        assert publish(skewed_binary_table, strategy="dp-laplace", rng=1).audit is None

    def test_audit_can_be_skipped(self, skewed_binary_table):
        report = publish(skewed_binary_table, strategy="sps", rng=1, audit=False)
        assert report.audit is None

    def test_unaudited_whole_table_strategy_skips_group_index(
        self, skewed_binary_table, monkeypatch
    ):
        from repro.pipeline import pipeline as pipeline_module

        def boom(table):
            raise AssertionError("group index should not be built")

        monkeypatch.setattr(pipeline_module, "personal_groups", boom)
        report = publish(skewed_binary_table, strategy="uniform", rng=1, audit=False)
        assert len(report.published) == len(skewed_binary_table)
        # With the audit on, the index is required again.
        with pytest.raises(AssertionError, match="group index"):
            publish(skewed_binary_table, strategy="uniform", rng=1)

    def test_deterministic_for_fixed_seed(self, skewed_binary_table):
        a = publish(skewed_binary_table, strategy="sps", rng=9, chunk_size=2)
        b = publish(skewed_binary_table, strategy="sps", rng=9, chunk_size=2)
        assert np.array_equal(a.published.codes, b.published.codes)
        assert a.seed == b.seed == 9

    def test_generator_rng_is_deterministic(self, skewed_binary_table):
        a = publish(skewed_binary_table, strategy="sps", rng=np.random.default_rng(3))
        b = publish(skewed_binary_table, strategy="sps", rng=np.random.default_rng(3))
        assert np.array_equal(a.published.codes, b.published.codes)

    def test_sps_report_carries_group_records(self, skewed_binary_table):
        report = publish(skewed_binary_table, strategy="sps", rng=5)
        assert len(report.groups) == len(personal_groups(skewed_binary_table))
        assert report.summary()["n_sampled_groups"] == report.n_sampled_groups
        assert report.sps.published is report.published

    def test_generalize_strategy_reports_domains(self, skewed_binary_table):
        report = publish(skewed_binary_table, strategy="generalize+sps", rng=6)
        assert report.generalization is not None
        assert report.metadata["generalized_domains"]["Group"]["before"] == 3

    def test_dp_report_has_no_sps_view(self, skewed_binary_table):
        report = publish(skewed_binary_table, strategy="dp-laplace", rng=5)
        with pytest.raises(ValueError, match="no privacy spec"):
            report.sps
        assert report.summary()["strategy"] == "dp-laplace"

    def test_generalization_rejected_for_non_generalizing_strategy(
        self, skewed_binary_table
    ):
        from repro.generalization.merging import generalize_table

        generalization = generalize_table(skewed_binary_table)
        with pytest.raises(ValueError, match="no generalize stage"):
            publish(skewed_binary_table, strategy="sps", generalization=generalization)

    def test_raw_groups_rejected_for_generalizing_strategy(self, skewed_binary_table):
        # A raw-table index would silently be enforced against the generalised
        # schema; the pipeline demands the matching generalization.
        raw_groups = personal_groups(skewed_binary_table)
        with pytest.raises(ValueError, match="with_generalization"):
            publish(skewed_binary_table, strategy="generalize+sps", groups=raw_groups)

    def test_cached_groups_with_matching_generalization(self, skewed_binary_table):
        from repro.generalization.merging import generalize_table

        generalization = generalize_table(skewed_binary_table)
        groups = personal_groups(generalization.table)
        report = publish(
            skewed_binary_table, strategy="generalize+sps",
            rng=4, groups=groups, generalization=generalization,
        )
        assert report.group_index_cached is True
        assert report.generalization is generalization


class TestFluentBuilder:
    def test_chained_configuration(self, skewed_binary_table):
        index = personal_groups(skewed_binary_table)
        report = (
            PublishPipeline("sps", lam=0.4)
            .with_params(delta=0.2)
            .with_rng(11)
            .with_chunk_size(2)
            .with_groups(index)
            .with_audit(False)
            .run(skewed_binary_table)
        )
        assert report.params["lam"] == 0.4
        assert report.params["delta"] == 0.2
        assert report.audit is None
        assert report.group_index_cached is True

    def test_pipeline_is_reusable(self, skewed_binary_table):
        pipeline = PublishPipeline("sps").with_rng(2)
        a = pipeline.run(skewed_binary_table)
        b = pipeline.run(skewed_binary_table)
        assert np.array_equal(a.published.codes, b.published.codes)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            PublishPipeline("sps").with_chunk_size(0)


class TestCoreServiceEquivalence:
    """Same seed ⇒ identical published table through either entry point."""

    @pytest.mark.parametrize("name", sorted(BUILTIN_STRATEGIES))
    @pytest.mark.parametrize("workers", [1, 3])
    def test_library_and_service_agree(self, skewed_binary_table, name, workers):
        library = publish(skewed_binary_table, strategy=name, rng=21, chunk_size=2)
        service = AnonymizationService()
        service.register_table("skewed", skewed_binary_table)
        job = service.publish(
            "skewed", name, seed=21, chunk_size=2, max_workers=workers
        )
        assert (
            library.published.codes.tobytes() == job.published.codes.tobytes()
        ), f"library and service outputs diverge for {name!r}"


class TestCustomStrategy:
    def test_registered_once_available_everywhere(self, skewed_binary_table):
        class TopKStrategy(PublishStrategy):
            """Keep only the n_keep most common SA values per group (toy)."""

            name = "test-top-k"
            audits = False
            params = (
                ParamSpec.integer("n_keep", 1, minimum=1, doc="values kept per group"),
            )

            def enforce(self, table, groups, spec, resolved, seed, runner, chunk_size):
                keep = resolved["n_keep"]
                assert isinstance(keep, int)  # typed specs preserve int
                n_public = len(table.schema.public)
                blocks = []
                for group in groups:
                    top = np.argsort(group.sensitive_counts)[::-1][:keep]
                    codes = np.repeat(top, group.sensitive_counts[top])
                    block = np.empty((codes.size, n_public + 1), dtype=np.int64)
                    block[:, :n_public] = np.asarray(group.key, dtype=np.int64)
                    block[:, n_public] = codes
                    blocks.append(block)
                from repro.dataset.table import Table

                return StrategyOutcome(published=Table(table.schema, np.vstack(blocks)))

        register_strategy(TopKStrategy())
        try:
            # Library path.
            report = publish(skewed_binary_table, strategy="test-top-k", n_keep=1)
            assert len(report.published) > 0
            # Fractional n_keep is rejected with the declared type.
            with pytest.raises(ParamError, match="must be an integer"):
                publish(skewed_binary_table, strategy="test-top-k", n_keep=1.5)
            # Service path picks the strategy up without any service-side code.
            service = AnonymizationService()
            service.register_table("skewed", skewed_binary_table)
            job = service.publish("skewed", "test-top-k", params={"n_keep": 2})
            assert job.status == "completed"
            assert job.spec.backend == "test-top-k"
        finally:
            unregister_strategy("test-top-k")
            from repro.service import backends as backends_module

            backends_module._BACKENDS.pop("test-top-k", None)

    def test_generalizing_strategy_without_significance_param(self, skewed_binary_table):
        """A custom generalizing strategy need not declare 'significance'."""
        from repro.pipeline.strategy import SPSStrategy

        class GeneralizingSPS(SPSStrategy):
            name = "test-generalizing"
            generalizes = True  # inherits sps params only — no significance

        register_strategy(GeneralizingSPS())
        try:
            report = publish(skewed_binary_table, strategy="test-generalizing", rng=2)
            assert report.generalization is not None
            service = AnonymizationService()
            service.register_table("skewed", skewed_binary_table)
            assert service.publish("skewed", "test-generalizing").status == "completed"
        finally:
            unregister_strategy("test-generalizing")
            from repro.service import backends as backends_module

            backends_module._BACKENDS.pop("test-generalizing", None)

    def test_replaced_strategy_reaches_the_service(self, skewed_binary_table):
        """register_strategy(replace=True) must not leave a stale service adapter."""
        from repro.pipeline.strategy import SPSStrategy
        from repro.service.backends import get_backend

        original = get_strategy("sps")
        assert get_backend("sps").strategy is original
        replacement = SPSStrategy()
        try:
            register_strategy(replacement, replace=True)
            assert get_backend("sps").strategy is replacement
        finally:
            register_strategy(original, replace=True)
            assert get_backend("sps").strategy is original

    def test_unregistered_strategy_disappears_from_the_service(self):
        """unregister_strategy must also retire the cached service adapter."""
        from repro.pipeline.strategy import SPSStrategy
        from repro.service.backends import available_backends, get_backend
        from repro.service.registry import ServiceError

        class Ephemeral(SPSStrategy):
            name = "test-ephemeral"

        register_strategy(Ephemeral())
        assert get_backend("test-ephemeral").strategy.name == "test-ephemeral"
        assert "test-ephemeral" in available_backends()
        unregister_strategy("test-ephemeral")
        assert "test-ephemeral" not in available_backends()
        with pytest.raises(ServiceError, match="unknown backend"):
            get_backend("test-ephemeral")


class TestDeprecatedPublisherShim:
    def test_constructor_warns_but_old_signature_works(self, skewed_binary_table):
        with pytest.warns(DeprecationWarning, match="repro.publish"):
            publisher = repro.ReconstructionPrivacyPublisher(
                lam=0.3, delta=0.3, retention_probability=0.5
            )
        result = publisher.publish(skewed_binary_table, rng=0)
        assert isinstance(result, repro.PublishResult)
        assert result.generalization is not None
        assert result.audit is not None
        assert len(result.published) > 0
        assert result.sps.spec == result.spec

    def test_shim_matches_pipeline_output(self, skewed_binary_table):
        with pytest.warns(DeprecationWarning):
            publisher = repro.ReconstructionPrivacyPublisher(
                lam=0.3, delta=0.3, retention_probability=0.5, generalize=False
            )
        old_style = publisher.publish(skewed_binary_table, rng=13)
        new_style = publish(
            skewed_binary_table, strategy="sps",
            lam=0.3, delta=0.3, retention_probability=0.5, rng=13,
        )
        assert np.array_equal(
            old_style.published.codes, new_style.published.codes
        )

    def test_audit_and_baseline_signatures_still_work(self, skewed_binary_table):
        with pytest.warns(DeprecationWarning):
            publisher = repro.ReconstructionPrivacyPublisher(
                lam=0.3, delta=0.3, retention_probability=0.5, generalize=False
            )
        audit = publisher.audit(skewed_binary_table)
        assert audit.n_groups == 3
        baseline = publisher.publish_uniform_baseline(skewed_binary_table, rng=0)
        assert len(baseline) == len(skewed_binary_table)
