"""Tests for the end-to-end ReconstructionPrivacyPublisher pipeline."""

import numpy as np
import pytest

from repro.core.publisher import ReconstructionPrivacyPublisher
from repro.dataset.adult import generate_adult
from repro.dataset.groups import personal_groups


@pytest.fixture(scope="module")
def adult_sample():
    return generate_adult(10_000, seed=20150323)


class TestPublisher:
    def test_publish_produces_all_artifacts(self, adult_sample):
        publisher = ReconstructionPrivacyPublisher(lam=0.3, delta=0.3, retention_probability=0.5)
        result = publisher.publish(adult_sample, rng=0)
        assert result.generalization is not None
        assert result.spec.domain_size == 2
        assert len(result.published) > 0
        assert len(result.audit.groups) == len(personal_groups(result.prepared))

    def test_generalization_can_be_disabled(self, adult_sample):
        publisher = ReconstructionPrivacyPublisher(
            lam=0.3, delta=0.3, retention_probability=0.5, generalize=False
        )
        result = publisher.publish(adult_sample, rng=0)
        assert result.generalization is None
        assert result.prepared.schema == adult_sample.schema

    def test_generalization_reduces_group_count(self, adult_sample):
        publisher = ReconstructionPrivacyPublisher(lam=0.3, delta=0.3, retention_probability=0.5)
        prepared, _ = publisher.prepare(adult_sample)
        before = len(personal_groups(adult_sample))
        after = len(personal_groups(prepared))
        assert after < before

    def test_audit_matches_publish_audit(self, adult_sample):
        publisher = ReconstructionPrivacyPublisher(lam=0.3, delta=0.3, retention_probability=0.5)
        standalone = publisher.audit(adult_sample)
        result = publisher.publish(adult_sample, rng=0)
        assert standalone.group_violation_rate == pytest.approx(result.audit.group_violation_rate)

    def test_published_data_passes_a_re_audit_of_sampled_sizes(self, adult_sample):
        """Every published group's *sample* size respects the s_g threshold.

        Privacy is achieved on the sampled records before scaling (Section 5
        "Remarks"), so the bookkeeping sample_size must not exceed s_g (up to
        the +-1 of stochastic rounding).
        """
        publisher = ReconstructionPrivacyPublisher(lam=0.3, delta=0.3, retention_probability=0.5)
        result = publisher.publish(adult_sample, rng=0)
        # Per-value stochastic rounding can overshoot s_g by at most one record
        # per sensitive value (m = 2 for ADULT).
        slack = result.spec.domain_size
        for record in result.sps.groups:
            assert record.sample_size <= record.max_group_size + slack or not record.sampled

    def test_uniform_baseline_keeps_size(self, adult_sample):
        publisher = ReconstructionPrivacyPublisher(lam=0.3, delta=0.3, retention_probability=0.5)
        baseline = publisher.publish_uniform_baseline(adult_sample, rng=0)
        prepared, _ = publisher.prepare(adult_sample)
        assert len(baseline) == len(prepared)
        assert np.array_equal(baseline.public_codes, prepared.public_codes)

    def test_spec_uses_table_domain(self, adult_sample):
        publisher = ReconstructionPrivacyPublisher(lam=0.2, delta=0.4, retention_probability=0.7)
        spec = publisher.spec_for(adult_sample)
        assert spec.domain_size == adult_sample.schema.sensitive_domain_size
        assert spec.lam == 0.2 and spec.delta == 0.4

    def test_sps_reduces_violation_risk_relative_to_up(self, adult_sample):
        """The published (scaled) data should not allow tighter personal
        reconstruction than plain UP on a violating group: its effective number
        of independent trials is the sample size, which is what the audit uses."""
        publisher = ReconstructionPrivacyPublisher(lam=0.3, delta=0.3, retention_probability=0.5)
        result = publisher.publish(adult_sample, rng=0)
        sampled = [g for g in result.sps.groups if g.sampled]
        assert sampled, "expected at least one violating group in ADULT"
        for record in sampled:
            assert record.sample_size < record.original_size
