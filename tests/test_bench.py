"""Tests for the repro.bench subsystem.

Covers the acceptance surface of the benchmark harness: deterministic
scenario-matrix expansion, warmup/repeat timer behaviour, report schema
round-trips through JSON, run-to-run determinism of the recorded operation
counts, the ``repro-bench`` CLI, and a tiny-size smoke run of every ported
paper scenario.
"""

import json

import numpy as np
import pytest

from repro.bench.cli import main as bench_main
from repro.bench.micro import run_micro_benchmarks
from repro.bench.paper import (
    available_paper_scenarios,
    paper_scenario,
    smoke_config,
)
from repro.bench.runner import report_path, run_suite, write_report
from repro.bench.scenarios import ScenarioMatrix, core_matrix, matrix_for, service_matrix
from repro.bench.schema import SCHEMA_VERSION, SchemaError, validate_report
from repro.bench.timing import Measurement, TimingSpec, time_callable
from repro.utils.textplot import render_listing

EXPECTED_PAPER_SCENARIOS = {
    "core-ops",
    "table1",
    "table2",
    "tables4-5",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "ablation-bounds",
    "ablation-sampling",
    "criteria-comparison",
}


class TestScenarioMatrix:
    def test_expansion_is_full_cross_product_in_fixed_order(self):
        matrix = ScenarioMatrix(
            strategies=("sps", "uniform"),
            datasets=(("adult", 100), ("census", 200)),
            chunk_sizes=(8, 16),
            workers=(1, 2),
        )
        scenarios = matrix.expand("core")
        assert len(scenarios) == matrix.size == 16
        # Strategy-major order, workers innermost.
        assert scenarios[0].name == "sps/adult-100/c8/w1"
        assert scenarios[1].name == "sps/adult-100/c8/w2"
        assert scenarios[2].name == "sps/adult-100/c16/w1"
        assert scenarios[-1].name == "uniform/census-200/c16/w2"
        assert len({s.name for s in scenarios}) == 16
        # Expansion is deterministic.
        assert [s.name for s in matrix.expand("core")] == [s.name for s in scenarios]

    def test_presets_cover_both_datasets_and_tiny_is_smaller(self):
        tiny, full = core_matrix(tiny=True), core_matrix()
        assert tiny.size < full.size
        assert {d for d, _ in tiny.datasets} == {"adult", "census"}
        assert all(rows <= 5_000 for _, rows in tiny.datasets)
        service = service_matrix(tiny=True)
        assert len(service.workers) > 1  # the workers axis is real in the service suite

    def test_matrix_for_rejects_unknown_suite(self):
        with pytest.raises(ValueError, match="paper"):
            matrix_for("paper")


class TestTiming:
    def test_warmup_and_repeats_counts(self):
        calls = []
        spec = TimingSpec(warmup=2, repeats=3)
        result, measurement = time_callable(lambda: calls.append(1) or len(calls), spec)
        assert len(calls) == 5  # 2 discarded + 3 timed
        assert result == 5  # last pass's return value
        assert len(measurement.seconds) == 3
        assert measurement.best <= measurement.mean

    def test_deterministic_work_under_fixed_seed(self):
        def work(seed):
            return int(np.random.default_rng(seed).integers(0, 1000, size=100).sum())

        first, _ = time_callable(lambda: work(7), TimingSpec(warmup=1, repeats=2))
        second, _ = time_callable(lambda: work(7), TimingSpec(warmup=1, repeats=2))
        assert first == second

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            TimingSpec(warmup=-1)
        with pytest.raises(ValueError):
            TimingSpec(repeats=0)

    def test_measurement_json(self):
        measurement = Measurement(seconds=(0.2, 0.1, 0.3))
        data = measurement.to_json()
        assert data["best"] == 0.1
        assert data["repeats"] == [0.2, 0.1, 0.3]


class TestSchema:
    def _tiny_report(self, tmp_path):
        report = run_suite(
            "core",
            tiny=True,
            seed=3,
            timing=TimingSpec(warmup=0, repeats=1),
            scenario_filter=["sps/adult-2000/c64/w1"],
            include_micro=False,
        )
        return report

    def test_round_trip_through_json_stays_valid(self, tmp_path):
        report = self._tiny_report(tmp_path)
        path = write_report(report, tmp_path)
        assert path == report_path("core", tmp_path)
        loaded = json.loads(path.read_text())
        validate_report(loaded)  # must not raise
        assert loaded == report
        assert loaded["schema_version"] == SCHEMA_VERSION

    def test_validator_catches_all_problems_at_once(self):
        with pytest.raises(SchemaError) as excinfo:
            validate_report({"schema_version": 99, "suite": "nope", "scenarios": []})
        message = str(excinfo.value)
        assert "schema_version" in message
        assert "suite" in message
        assert "scenarios" in message
        assert "seed" in message

    def test_validator_rejects_duplicate_scenario_names(self, tmp_path):
        report = self._tiny_report(tmp_path)
        report["scenarios"] = report["scenarios"] * 2
        with pytest.raises(SchemaError, match="duplicate"):
            validate_report(report)

    def test_validator_rejects_non_object(self):
        with pytest.raises(SchemaError):
            validate_report([1, 2, 3])

    def _serve_report(self):
        scenario = {
            "name": "serve/audit/adult-2000/c4",
            "suite": "serve",
            "strategy": "audit",
            "dataset": "adult",
            "rows": 2000,
            "chunk_size": 256,
            "workers": 4,
            "params": {"clients": 4, "requests_per_client": 10, "queue_limit": 64},
            "ops": {
                "throughput_rps": 1000.0,
                "p50_seconds": 0.001,
                "p95_seconds": 0.002,
                "p99_seconds": 0.003,
                "cache_hit_ratio": 1.0,
                "queue_rejections": 0,
                "byte_identical": True,
            },
            "seconds": {"best": 0.01, "mean": 0.01, "std": 0.0, "repeats": [0.01]},
        }
        return {
            "schema_version": SCHEMA_VERSION,
            "suite": "serve",
            "scale": "tiny",
            "seed": 1,
            "timing": {"warmup": 1, "repeats": 3},
            "environment": {
                "python": "3", "numpy": "2", "platform": "x", "repro_version": "1",
                "cpu_count": 1,
            },
            "scenarios": [scenario],
        }

    def test_serve_report_validates(self):
        validate_report(self._serve_report())  # must not raise

    def test_serve_report_requires_latency_percentiles(self):
        report = self._serve_report()
        del report["scenarios"][0]["ops"]["p95_seconds"]
        with pytest.raises(SchemaError, match="p95_seconds"):
            validate_report(report)


class TestRunnerDeterminism:
    def test_core_suite_same_seed_same_scenarios_and_ops(self):
        kwargs = dict(
            tiny=True,
            seed=123,
            timing=TimingSpec(warmup=0, repeats=1),
            scenario_filter=["sps"],
            include_micro=False,
        )
        first = run_suite("core", **kwargs)
        second = run_suite("core", **kwargs)
        assert [s["name"] for s in first["scenarios"]] == [s["name"] for s in second["scenarios"]]
        assert [s["ops"] for s in first["scenarios"]] == [s["ops"] for s in second["scenarios"]]
        assert all("enforce" in s["stages"] for s in first["scenarios"])

    def test_service_suite_runs_and_reuses_cached_index(self):
        report = run_suite(
            "service", tiny=True, seed=5, timing=TimingSpec(warmup=1, repeats=1)
        )
        validate_report(report)
        assert report["suite"] == "service"
        for entry in report["scenarios"]:
            # The warmup pass populated the dataset's group-index cache.
            assert entry["ops"]["group_index_cached"] is True
            assert entry["ops"]["published_records"] > 0

    def test_unknown_scenario_filter_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_suite("core", tiny=True, scenario_filter=["no-such-scenario"])

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("nope")


class TestMicroBenchmarks:
    def test_vectorized_paths_match_their_baselines(self):
        entries = run_micro_benchmarks(seed=1, tiny=True, timing=TimingSpec(warmup=0, repeats=1))
        by_name = {entry["name"]: entry for entry in entries}
        assert set(by_name) == {"sps-sample-counts", "group-index-build", "mle-batch", "em-batch"}
        # The elementwise/integer rewrites are exact; the EM is machine-precision.
        for name in ("sps-sample-counts", "group-index-build", "mle-batch"):
            assert by_name[name]["identical"] is True
        assert by_name["em-batch"]["max_abs_diff"] < 1e-12
        for entry in entries:
            assert entry["n"] > 0 and entry["baseline_seconds"] >= 0


class TestPaperScenarios:
    def test_all_twelve_ported_scripts_are_registered(self):
        assert set(available_paper_scenarios()) == EXPECTED_PAPER_SCENARIOS

    @pytest.mark.parametrize("name", sorted(EXPECTED_PAPER_SCENARIOS))
    def test_smoke_run_at_tiny_sizes(self, name):
        scenario = paper_scenario(name)
        config = smoke_config()
        result = scenario.run(config)
        rendered = scenario.render(result)
        assert isinstance(rendered, str) and rendered.strip()
        summary = scenario.summarize(result)
        assert isinstance(summary, dict) and summary
        if scenario.checks_at_tiny:
            scenario.check(result, config)  # closed-form checks hold at any size

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown paper scenario"):
            paper_scenario("figure99")


class TestCLI:
    def test_list_flag(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "core scenario matrix" in out
        assert "paper scenarios" in out
        assert "figure3" in out

    def test_run_writes_schema_valid_report(self, tmp_path, capsys):
        code = bench_main(
            [
                "run",
                "--suite", "core",
                "--tiny",
                "--seed", "9",
                "--scenario", "uniform",
                "--warmup", "0",
                "--repeats", "1",
                "--no-micro",
                "--output-dir", str(tmp_path),
            ]
        )
        assert code == 0
        path = tmp_path / "BENCH_core.json"
        assert path.exists()
        validate_report(json.loads(path.read_text()))
        assert "BENCH_core.json" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            bench_main(["--version"])
        assert excinfo.value.code == 0


class TestRenderListing:
    def test_mapping_and_pairs_render_identically(self):
        as_mapping = render_listing({"a": "first", "b": "second"}, title="t")
        as_pairs = render_listing([("a", "first"), ("b", "second")], title="t")
        assert as_mapping == as_pairs
        assert as_mapping.splitlines()[0] == "t"
        assert "first" in as_mapping
