"""End-to-end test of the HTTP JSON API on an ephemeral port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.engine import AnonymizationService
from repro.service.http_api import make_server

CSV_BODY = "Job,City,Income\n" + "\n".join(
    f"{'eng' if i % 2 else 'artist'},c{i % 3},{'high' if i % 4 == 0 else 'low'}"
    for i in range(120)
)


@pytest.fixture()
def server_url():
    service = AnonymizationService()
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def get_json(url: str):
    with urllib.request.urlopen(url) as response:
        return json.load(response)


def post(url: str, data: bytes, content_type: str):
    request = urllib.request.Request(
        url, data=data, method="POST", headers={"Content-Type": content_type}
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def post_json(url: str, payload: dict):
    return post(url, json.dumps(payload).encode(), "application/json")


class TestEndToEnd:
    def test_register_publish_audit_lifecycle(self, server_url):
        # Register: CSV streamed as the request body.
        created = post(
            f"{server_url}/datasets?name=up&sensitive=Income",
            CSV_BODY.encode(),
            "text/csv",
        )
        assert created["n_records"] == 120
        assert created["sensitive_attribute"] == "Income"

        datasets = get_json(f"{server_url}/datasets")
        assert [d["name"] for d in datasets] == ["up"]

        # Publish through two backends.
        job = post_json(
            f"{server_url}/publish",
            {"dataset": "up", "backend": "sps", "seed": 3, "max_workers": 2},
        )
        assert job["status"] == "completed"
        assert job["published_records"] > 0
        assert job["audit"]["n_groups"] == 6
        job2 = post_json(
            f"{server_url}/publish", {"dataset": "up", "backend": "dp-laplace", "seed": 3}
        )
        assert job2["status"] == "completed"
        # Second job hits the cached group index.
        assert job2["timings"]["group_index_cached"] is True

        # Job listing and detail agree.
        jobs = get_json(f"{server_url}/jobs")
        assert [j["job_id"] for j in jobs] == [job["job_id"], job2["job_id"]]
        detail = get_json(f"{server_url}/jobs/{job['job_id']}")
        assert detail["spec"]["backend"] == "sps"

        # Published table download.
        with urllib.request.urlopen(
            f"{server_url}/jobs/{job['job_id']}/table.csv"
        ) as response:
            lines = response.read().decode().splitlines()
        assert lines[0] == "Job,City,Income"
        assert len(lines) == job["published_records"] + 1

        # Audit via GET query parameters and POST JSON give the same answer.
        audit_get = get_json(
            f"{server_url}/audit?dataset=up&lam=0.3&delta=0.3&p=0.5"
        )
        audit_post = post_json(
            f"{server_url}/audit",
            {"dataset": "up", "lam": 0.3, "delta": 0.3, "retention_probability": 0.5},
        )
        assert audit_get["summary"] == audit_post["summary"]
        assert audit_get["group_index_cached"] is True

        # Stats reflect the traffic.
        stats = get_json(f"{server_url}/stats")
        assert stats["n_datasets"] == 1
        assert stats["n_jobs"] == 2
        assert stats["jobs_by_backend"] == {"sps": 1, "dp-laplace": 1}
        assert stats["group_index_hits"] >= 2

    def test_health_and_overview(self, server_url):
        from repro import __version__

        for endpoint in ("health", "healthz"):
            payload = get_json(f"{server_url}/{endpoint}")
            assert payload["status"] == "ok"
            assert payload["version"] == __version__
        overview = get_json(f"{server_url}/")
        assert "sps" in overview["backends"]

    def test_stats_reports_version_and_strategies(self, server_url):
        from repro import __version__

        stats = get_json(f"{server_url}/stats")
        assert stats["version"] == __version__
        # Typed parameter specs are exposed alongside the legacy defaults map.
        assert stats["backends"]["sps"]["lam"] == 0.3
        sps = stats["strategies"]["sps"]
        lam = next(spec for spec in sps["params"] if spec["name"] == "lam")
        assert lam["kind"] == "float"
        assert lam["range"] == "(0, inf)"


class TestErrorHandling:
    def expect_status(self, url: str, status: int, method="GET", data=None, headers=None):
        request = urllib.request.Request(
            url, data=data, method=method, headers=headers or {}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == status
        return json.load(excinfo.value)

    def test_unknown_route_404(self, server_url):
        body = self.expect_status(f"{server_url}/nope", 404)
        assert "error" in body

    def test_unknown_dataset_404(self, server_url):
        self.expect_status(f"{server_url}/datasets/missing", 404)
        self.expect_status(f"{server_url}/jobs/job-0001", 404)

    def test_register_without_params_400(self, server_url):
        self.expect_status(
            f"{server_url}/datasets", 400, method="POST", data=b"a,b\n1,2\n"
        )

    def test_empty_csv_body_400(self, server_url):
        self.expect_status(
            f"{server_url}/datasets?name=x&sensitive=b", 400, method="POST", data=b""
        )

    def test_header_only_csv_400(self, server_url):
        body = self.expect_status(
            f"{server_url}/datasets?name=x&sensitive=b",
            400,
            method="POST",
            data=b"a,b\n",
        )
        assert "no data rows" in body["error"]

    def test_publish_bad_backend_400(self, server_url):
        post(
            f"{server_url}/datasets?name=up&sensitive=Income",
            CSV_BODY.encode(),
            "text/csv",
        )
        body = self.expect_status(
            f"{server_url}/publish",
            400,
            method="POST",
            data=json.dumps({"dataset": "up", "backend": "nope"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        assert "unknown backend" in body["error"]

    def test_invalid_json_body_400(self, server_url):
        self.expect_status(
            f"{server_url}/publish",
            400,
            method="POST",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )

    def test_non_numeric_param_400_not_crash(self, server_url):
        post(
            f"{server_url}/datasets?name=up&sensitive=Income",
            CSV_BODY.encode(),
            "text/csv",
        )
        body = self.expect_status(
            f"{server_url}/publish",
            400,
            method="POST",
            data=json.dumps(
                {"dataset": "up", "backend": "sps", "params": {"lam": None}}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        assert "must be a number" in body["error"]
        body = self.expect_status(
            f"{server_url}/publish",
            400,
            method="POST",
            data=json.dumps(
                {"dataset": "up", "backend": "sps", "seed": None}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        assert "must be an integer" in body["error"]

    def test_error_with_unread_body_does_not_corrupt_keepalive(self, server_url):
        """An error fired before the CSV body is consumed must not leave the
        body bytes to be parsed as the next request on a reused connection."""
        import http.client
        from urllib.parse import urlparse

        parsed = urlparse(server_url)
        connection = http.client.HTTPConnection(parsed.hostname, parsed.port)
        try:
            # Missing ?name= triggers a 400 before the body is read.
            connection.request("POST", "/datasets", body=CSV_BODY.encode())
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            response.read()
            # The same client object transparently reconnects; the follow-up
            # request must parse cleanly.
            connection.request("GET", "/health")
            response = connection.getresponse()
            assert response.status == 200
        finally:
            connection.close()
