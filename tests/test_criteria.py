"""Tests for the classical posterior/prior criteria and the comparison report."""

import numpy as np
import pytest

from repro.core.criterion import PrivacySpec
from repro.criteria.classic import (
    beta_likeness_report,
    l_diversity_report,
    small_count_report,
    t_closeness_report,
    total_variation_distance,
)
from repro.criteria.comparison import compare_criteria
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table


@pytest.fixture()
def smooth_and_skewed_table():
    """Two groups: one mirroring the global distribution, one heavily skewed."""
    schema = Schema(
        public=(Attribute("Group", ("balanced", "skewed")),),
        sensitive=Attribute("Disease", ("a", "b", "c", "d")),
    )
    records = []
    # Balanced group: 100 records spread 40/30/20/10.
    for value, count in zip("abcd", (40, 30, 20, 10)):
        records += [("balanced", value)] * count
    # Skewed group: 100 records, 97 of one value, 1 each of the others.
    records += [("skewed", "a")] * 97 + [("skewed", "b"), ("skewed", "c"), ("skewed", "d")]
    return Table.from_records(schema, records)


class TestLDiversity:
    def test_distinct_counts_values(self, smooth_and_skewed_table):
        report = l_diversity_report(smooth_and_skewed_table, l=4)
        assert report.is_satisfied  # both groups contain all four values

    def test_entropy_flags_the_skewed_group(self, smooth_and_skewed_table):
        report = l_diversity_report(smooth_and_skewed_table, l=3, variant="entropy")
        assert not report.is_satisfied
        assert len(report.failing_groups) == 1

    def test_l_of_one_is_trivial(self, smooth_and_skewed_table):
        assert l_diversity_report(smooth_and_skewed_table, l=1).is_satisfied

    def test_homogeneous_group_fails_distinct(self, binary_schema):
        table = Table.from_records(binary_schema, [("a", "high")] * 50)
        report = l_diversity_report(table, l=2)
        assert not report.is_satisfied
        assert report.group_failure_rate == 1.0
        assert report.record_failure_rate == 1.0

    def test_invalid_arguments_rejected(self, smooth_and_skewed_table):
        with pytest.raises(ValueError):
            l_diversity_report(smooth_and_skewed_table, l=0)
        with pytest.raises(ValueError):
            l_diversity_report(smooth_and_skewed_table, l=2, variant="recursive")


class TestTCloseness:
    def test_total_variation_distance(self):
        assert total_variation_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0
        assert total_variation_distance(np.array([0.5, 0.5]), np.array([0.5, 0.5])) == 0.0
        with pytest.raises(ValueError):
            total_variation_distance(np.ones(2), np.ones(3))

    def test_skewed_group_fails_tight_t(self, smooth_and_skewed_table):
        report = t_closeness_report(smooth_and_skewed_table, t=0.1)
        assert not report.is_satisfied
        # Only the skewed group should fail; the balanced one is not far from
        # the (mixture) global distribution at t=0.4.
        loose = t_closeness_report(smooth_and_skewed_table, t=0.4)
        assert len(loose.failing_groups) <= len(report.failing_groups)

    def test_t_of_one_is_trivial(self, smooth_and_skewed_table):
        assert t_closeness_report(smooth_and_skewed_table, t=1.0).is_satisfied

    def test_invalid_t_rejected(self, smooth_and_skewed_table):
        with pytest.raises(ValueError):
            t_closeness_report(smooth_and_skewed_table, t=-0.1)


class TestBetaLikeness:
    def test_large_gain_flagged(self, smooth_and_skewed_table):
        # Value "a" has global frequency ~0.685; the skewed group raises it to
        # 0.97, a relative gain of ~0.42, so beta=0.2 fails and beta=1.0 passes.
        tight = beta_likeness_report(smooth_and_skewed_table, beta=0.2)
        loose = beta_likeness_report(smooth_and_skewed_table, beta=1.0)
        assert not tight.is_satisfied
        assert loose.is_satisfied

    def test_statistical_relationship_counts_as_violation(self, binary_schema):
        """The drawback the paper highlights: a genuine statistical pattern
        (one group's rate far above the global rate) violates beta-likeness."""
        records = [("a", "high")] * 80 + [("a", "low")] * 20 + [("b", "low")] * 900 + [("b", "high")] * 100
        table = Table.from_records(binary_schema, records)
        report = beta_likeness_report(table, beta=1.0)
        assert not report.is_satisfied

    def test_invalid_beta_rejected(self, smooth_and_skewed_table):
        with pytest.raises(ValueError):
            beta_likeness_report(smooth_and_skewed_table, beta=0.0)


class TestSmallCount:
    def test_singleton_counts_flagged(self, smooth_and_skewed_table):
        report = small_count_report(smooth_and_skewed_table, k=3)
        assert not report.is_satisfied  # the skewed group has counts of 1

    def test_large_counts_pass(self, smooth_and_skewed_table):
        assert small_count_report(smooth_and_skewed_table, k=1).is_satisfied

    def test_invalid_k_rejected(self, smooth_and_skewed_table):
        with pytest.raises(ValueError):
            small_count_report(smooth_and_skewed_table, k=0)


class TestComparison:
    def test_comparison_contains_all_criteria(self, smooth_and_skewed_table):
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=4)
        comparison = compare_criteria(smooth_and_skewed_table, spec)
        names = {report.criterion for report in comparison.reports}
        assert names == {
            "distinct-l-diversity",
            "entropy-l-diversity",
            "t-closeness",
            "beta-likeness",
            "small-count",
        }
        text = comparison.render()
        assert "reconstruction-privacy" in text
        assert "failing records" in text

    def test_reconstruction_privacy_tolerates_statistical_patterns(self, binary_schema):
        """The key contrast of Section 1.2: a strong pattern in a *small* group
        violates t-closeness/beta-likeness but not reconstruction privacy."""
        records = [("a", "high")] * 20 + [("a", "low")] * 5 + [("b", "low")] * 1000 + [("b", "high")] * 100
        table = Table.from_records(binary_schema, records)
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
        comparison = compare_criteria(table, spec, t=0.2, beta=1.0)
        t_report = next(r for r in comparison.reports if r.criterion == "t-closeness")
        assert not t_report.is_satisfied
        # Group "a" (25 records) is far below s_g, so reconstruction privacy
        # does not flag it even though its distribution deviates strongly.
        group_a_key = (table.schema.public_attribute("Group").encode("a"),)
        assert group_a_key in t_report.failing_groups
        from repro.core.testing import audit_table

        audit = audit_table(table, spec)
        violating_keys = {a.group.key for a in audit.violating_groups}
        assert group_a_key not in violating_keys
