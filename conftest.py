"""Pytest bootstrap: make ``src/`` importable even without an installed package.

The canonical workflow is ``pip install -e .``; this shim only covers offline
environments where the editable install is unavailable.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
