"""Hierarchical spans: the tracing half of :mod:`repro.obs`.

A *span* is one timed region of a run — the whole publish, one pipeline
stage, one work chunk — with a name, a monotonic start/duration, structured
attributes and a parent, forming the ``publish → stage → chunk`` tree that
``docs/observability.md`` documents.

The API is built so instrumented code never branches on whether tracing is
on:

* :func:`span` always returns a context manager that measures wall-clock
  time (two ``perf_counter`` calls); when a :class:`Tracer` is active the
  closed span is also recorded on it.  Stage timings everywhere in the
  codebase are *derived from these spans*, so enabling tracing changes what
  is recorded, never what is measured — and never the published bytes.
* Spans executed inside pool workers cannot reach the parent's tracer;
  workers time themselves and the scheduler merges the finished records in
  chunk order through :meth:`Tracer.record` (see
  :mod:`repro.parallel.scheduler`), which keeps traces deterministic modulo
  the timing values themselves.

Activate a tracer with ``with Tracer() as tracer: ...`` and export it with
:mod:`repro.obs.export`.  Activation uses a :mod:`contextvars` variable, so
concurrent threads (e.g. the service's request handlers) can trace
independent runs without seeing each other's current span.
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any

#: The active tracer (``None`` means tracing is off — the default).
_ACTIVE_TRACER: ContextVar["Tracer | None"] = ContextVar("repro_obs_tracer", default=None)

#: The id of the innermost open span in this context (parent of new spans).
_CURRENT_SPAN: ContextVar[int | None] = ContextVar("repro_obs_span", default=None)


def current_tracer() -> "Tracer | None":
    """The tracer activated in this context, or ``None`` when tracing is off."""
    return _ACTIVE_TRACER.get()


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: the unit a trace is made of.

    ``start`` is seconds since the owning tracer's epoch (its creation
    instant); ``duration`` is wall-clock seconds.  ``parent_id`` is ``None``
    for root spans.  ``attributes`` are JSON-compatible key/values
    (strategy, seed, chunk_id, backend, rows, ...).
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    duration: float
    attributes: dict[str, Any] = field(default_factory=dict)


class Span:
    """An open span: a reusable timing context that records itself on exit.

    Always measures (``duration`` and ``elapsed()`` are valid with tracing
    off); only *records* when a tracer was active at creation.  Use
    :meth:`set` to attach attributes any time before the block exits.
    """

    __slots__ = (
        "name", "attributes", "duration",
        "_tracer", "_span_id", "_parent_id", "_start_perf", "_start_offset", "_token",
    )

    def __init__(self, name: str, tracer: "Tracer | None", attributes: dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.duration = 0.0
        self._tracer = tracer
        self._span_id: int | None = None
        self._parent_id: int | None = None
        self._start_perf = 0.0
        self._start_offset = 0.0
        self._token = None

    def set(self, **attributes: Any) -> "Span":
        """Merge attributes into the span; chainable."""
        self.attributes.update(attributes)
        return self

    def elapsed(self) -> float:
        """Seconds since the span was entered (valid while still open)."""
        return time.perf_counter() - self._start_perf

    def __enter__(self) -> "Span":
        self._start_perf = time.perf_counter()
        if self._tracer is not None:
            self._parent_id = _CURRENT_SPAN.get()
            self._span_id = self._tracer._next_span_id()
            self._start_offset = self._start_perf - self._tracer.epoch_perf
            self._token = _CURRENT_SPAN.set(self._span_id)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.duration = time.perf_counter() - self._start_perf
        if self._tracer is not None:
            _CURRENT_SPAN.reset(self._token)
            if exc_type is not None:
                self.attributes.setdefault("error", exc_type.__name__)
            self._tracer._append(
                SpanRecord(
                    span_id=self._span_id,
                    parent_id=self._parent_id,
                    name=self.name,
                    start=self._start_offset,
                    duration=self.duration,
                    attributes=dict(self.attributes),
                )
            )


def span(name: str, **attributes: Any) -> Span:
    """A timing context for one region of a run — the one instrumentation call.

    >>> with span("enforce", strategy="sps") as sp:
    ...     _ = sum(range(10))
    >>> sp.duration >= 0.0
    True

    With no active :class:`Tracer` the span still measures (so stage
    timings stay span-derived either way) but records nothing.
    """
    return Span(name, _ACTIVE_TRACER.get(), dict(attributes))


class Tracer:
    """Collects the span records of one traced run.

    Activate with a ``with`` block; everything executed inside (including
    other threads *started inside*, which inherit the context) records its
    spans here::

        with Tracer() as tracer:
            repro.publish(table, strategy="sps", rng=7)
        export.write_trace(tracer, "trace.jsonl")

    Parameters
    ----------
    live:
        Optional text stream; every finished span is also written to it
        immediately as one logfmt line (see
        :func:`repro.obs.export.logfmt`) — ``tail``-able progress for long
        runs.
    """

    def __init__(self, live: Any | None = None) -> None:
        #: Unix time of the tracer's creation (trace epoch, for headers).
        self.epoch_unix = time.time()
        #: ``perf_counter`` instant all span ``start`` offsets are relative to.
        self.epoch_perf = time.perf_counter()
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._ids = iter(range(1, 2**63)).__next__
        self._live = live
        self._token = None

    # -- collection ---------------------------------------------------- #
    def _next_span_id(self) -> int:
        with self._lock:
            return self._ids()

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
        if self._live is not None:
            from repro.obs.export import logfmt_span

            self._live.write(logfmt_span(record) + "\n")

    def record(
        self,
        name: str,
        duration: float,
        *,
        start: float | None = None,
        attributes: dict[str, Any] | None = None,
        parent: int | None = None,
    ) -> SpanRecord:
        """Record an externally-timed span (e.g. timed inside a pool worker).

        ``parent`` defaults to the caller's current open span, so chunk
        records merged by the scheduler land under the enforce stage that
        consumed them.  Returns the appended :class:`SpanRecord`.
        """
        # Worker-side durations live in a different clock domain than this
        # tracer's epoch, so a derived start can underflow slightly — clamp.
        offset = self.elapsed() - duration if start is None else float(start)
        record = SpanRecord(
            span_id=self._next_span_id(),
            parent_id=_CURRENT_SPAN.get() if parent is None else parent,
            name=name,
            start=max(0.0, offset),
            duration=float(duration),
            attributes=dict(attributes or {}),
        )
        self._append(record)
        return record

    def elapsed(self) -> float:
        """Seconds since the tracer's epoch."""
        return time.perf_counter() - self.epoch_perf

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        """Every span recorded so far, in completion order."""
        with self._lock:
            return tuple(self._records)

    def span(self, name: str, **attributes: Any) -> Span:
        """Like the module-level :func:`span` but bound to this tracer
        whether or not it is the active one."""
        return Span(name, self, dict(attributes))

    # -- activation ----------------------------------------------------- #
    def __enter__(self) -> "Tracer":
        self._token = _ACTIVE_TRACER.set(self)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        _ACTIVE_TRACER.reset(self._token)
        self._token = None
