"""The run environment, recorded once and reused everywhere.

Benchmark reports, trace headers and the ``/metrics`` endpoint all need the
same facts — interpreter, numpy, platform, core count, library version — to
make numbers comparable across machines and PRs.  This module is the single
source: :func:`runtime_environment` returns the canonical dict (cached after
the first call; none of it changes within a process) and
:func:`record_build_info` publishes it as the ``repro_build_info`` gauge.
"""

from __future__ import annotations

import os
import platform
from functools import lru_cache
from typing import Any

import numpy as np


@lru_cache(maxsize=1)
def runtime_environment() -> dict[str, Any]:
    """The canonical environment record of this process.

    Keys (stable; validated by the bench report schema and the trace
    schema): ``python``, ``numpy``, ``platform``, ``repro_version`` —
    strings — and ``cpu_count`` — an integer.
    """
    from repro import __version__

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "repro_version": __version__,
        "cpu_count": os.cpu_count() or 1,
    }


def record_build_info() -> None:
    """Set the ``repro_build_info`` info-gauge from :func:`runtime_environment`."""
    from repro.obs.metrics import BUILD_INFO

    env = runtime_environment()
    BUILD_INFO.set(1, **{key: str(value) for key, value in env.items()})
