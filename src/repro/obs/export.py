"""Exporters and validators for traces and metrics.

Three renderings of the same observability data:

* **JSONL traces** — :func:`write_trace` serialises a
  :class:`~repro.obs.trace.Tracer` as one JSON object per line: a header
  record first (schema version, environment, epoch), then one record per
  span.  :func:`validate_trace` is the schema's single source of truth and
  is run by CI on every trace artifact.
* **logfmt** — :func:`logfmt_span` renders one span as a ``key=value`` line;
  a :class:`~repro.obs.trace.Tracer` built with ``live=stream`` emits these
  to the stream as spans close (tail-able progress).
* **Prometheus text exposition** — :func:`render_prometheus` renders a
  :class:`~repro.obs.metrics.MetricsRegistry` in the ``text/plain;
  version=0.0.4`` format the service's ``GET /metrics`` serves;
  :func:`parse_prometheus` is the strict round-trip check used by tests and
  CI.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from collections.abc import Iterable, Iterator
from typing import IO, Any

from repro.obs.environment import runtime_environment
from repro.obs.metrics import Histogram, MetricsRegistry, REGISTRY
from repro.obs.trace import SpanRecord, Tracer

#: Version of the JSONL trace layout; bump when a field changes shape.
TRACE_SCHEMA_VERSION = 1


class TraceSchemaError(ValueError):
    """Raised by :func:`validate_trace` with every problem found, one per line."""


# ---------------------------------------------------------------------- #
# JSONL traces
# ---------------------------------------------------------------------- #
def span_to_json(record: SpanRecord) -> dict[str, Any]:
    """One span as its JSONL trace record."""
    return {
        "type": "span",
        "span_id": record.span_id,
        "parent_id": record.parent_id,
        "name": record.name,
        "start": record.start,
        "duration": record.duration,
        "attributes": dict(record.attributes),
    }


def trace_header(tracer: Tracer) -> dict[str, Any]:
    """The header record written as a trace's first line."""
    return {
        "type": "header",
        "trace_schema_version": TRACE_SCHEMA_VERSION,
        "epoch_unix": tracer.epoch_unix,
        "environment": runtime_environment(),
    }


def iter_trace_lines(tracer: Tracer) -> Iterator[str]:
    """Yield the JSONL lines of a trace (header first, spans in record order)."""
    yield json.dumps(trace_header(tracer), sort_keys=True)
    for record in tracer.spans:
        yield json.dumps(span_to_json(record), sort_keys=True)


def write_trace(tracer: Tracer, destination: str | Path | IO[str]) -> None:
    """Write the trace of ``tracer`` to a path or open text stream as JSONL."""
    if hasattr(destination, "write"):
        for line in iter_trace_lines(tracer):
            destination.write(line + "\n")
        return
    with Path(destination).open("w", encoding="utf-8") as handle:
        for line in iter_trace_lines(tracer):
            handle.write(line + "\n")


def _check(problems: list[str], condition: bool, message: str) -> bool:
    if not condition:
        problems.append(message)
    return condition


_NUMBER = (int, float)


def validate_trace(source: str | Path | IO[str] | Iterable[dict[str, Any]]) -> int:
    """Validate a JSONL trace; return the number of spans.

    Accepts a path, an open text stream, or already-parsed record dicts.
    Raises :class:`TraceSchemaError` listing every problem found: missing or
    malformed header, bad field types, negative times, duplicate span ids,
    or a ``parent_id`` that never appears as a ``span_id``.
    """
    if isinstance(source, (str, Path)):
        with Path(source).open("r", encoding="utf-8") as handle:
            return validate_trace(_parse_lines(handle))
    if hasattr(source, "read"):
        return validate_trace(_parse_lines(source))

    problems: list[str] = []
    records = list(source)
    if not _check(problems, bool(records), "trace is empty"):
        raise TraceSchemaError("\n".join(problems))

    header = records[0]
    if _check(problems, isinstance(header, dict) and header.get("type") == "header",
              "line 1 must be the header record (type='header')"):
        _check(
            problems,
            header.get("trace_schema_version") == TRACE_SCHEMA_VERSION,
            f"trace_schema_version must be {TRACE_SCHEMA_VERSION} "
            f"(got {header.get('trace_schema_version')!r})",
        )
        _check(problems, isinstance(header.get("epoch_unix"), _NUMBER),
               "header.epoch_unix must be a number")
        environment = header.get("environment")
        if _check(problems, isinstance(environment, dict), "header.environment must be an object"):
            for key in ("python", "numpy", "platform", "repro_version"):
                _check(problems, isinstance(environment.get(key), str),
                       f"header.environment.{key} must be a string")
            _check(problems, isinstance(environment.get("cpu_count"), int),
                   "header.environment.cpu_count must be an integer")

    seen_ids: set[int] = set()
    spans = records[1:]
    for i, record in enumerate(spans):
        where = f"spans[{i}]"
        if not _check(problems, isinstance(record, dict), f"{where} must be an object"):
            continue
        _check(problems, record.get("type") == "span", f"{where}.type must be 'span'")
        _check(problems, isinstance(record.get("name"), str) and record.get("name"),
               f"{where}.name must be a non-empty string")
        span_id = record.get("span_id")
        if _check(problems, isinstance(span_id, int) and not isinstance(span_id, bool),
                  f"{where}.span_id must be an integer"):
            _check(problems, span_id not in seen_ids, f"duplicate span_id {span_id}")
            seen_ids.add(span_id)
        parent = record.get("parent_id")
        _check(problems, parent is None or (isinstance(parent, int) and not isinstance(parent, bool)),
               f"{where}.parent_id must be an integer or null")
        for key in ("start", "duration"):
            value = record.get(key)
            _check(
                problems,
                isinstance(value, _NUMBER) and not isinstance(value, bool) and value >= 0,
                f"{where}.{key} must be a non-negative number",
            )
        _check(problems, isinstance(record.get("attributes"), dict),
               f"{where}.attributes must be an object")

    for i, record in enumerate(spans):
        if isinstance(record, dict):
            parent = record.get("parent_id")
            if isinstance(parent, int) and parent not in seen_ids:
                problems.append(f"spans[{i}].parent_id {parent} never appears as a span_id")

    if problems:
        raise TraceSchemaError("\n".join(problems))
    return len(spans)


def _parse_lines(handle: IO[str]) -> list[dict[str, Any]]:
    records: list[dict[str, Any]] = []
    for n, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"line {n} is not valid JSON: {exc}") from exc
    return records


# ---------------------------------------------------------------------- #
# logfmt
# ---------------------------------------------------------------------- #
def logfmt(mapping: dict[str, Any]) -> str:
    """Render a mapping as one logfmt line (``key=value``, quoted as needed).

    >>> logfmt({"span": "enforce", "seconds": 0.25, "note": "two words"})
    'span=enforce seconds=0.25 note="two words"'
    """
    parts = []
    for key, value in mapping.items():
        if isinstance(value, float):
            text = format(value, ".6g")
        elif isinstance(value, bool):
            text = "true" if value else "false"
        else:
            text = str(value)
        if any(c in text for c in ' "=') or text == "":
            text = '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


def logfmt_span(record: SpanRecord) -> str:
    """One span as a logfmt line (the tracer's ``live=`` stream format)."""
    data: dict[str, Any] = {
        "span": record.name,
        "start": record.start,
        "duration": record.duration,
    }
    data.update(record.attributes)
    return logfmt(data)


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry = REGISTRY) -> str:
    """Render a registry in the Prometheus text exposition format (0.0.4).

    Metrics appear in registration order; each family gets its ``# HELP``
    and ``# TYPE`` comments.  Metrics with no samples yet are skipped for
    counters/gauges with labels (there is nothing to say) but label-less
    ones render as 0 so scrapes always see the full instrument set.
    """
    lines: list[str] = []
    for metric in registry.metrics():
        samples = list(metric.samples())
        if not samples and metric.labelnames:
            continue
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for labels, holder in samples:
                cumulative = holder.cumulative()
                for bound, count in zip(holder.buckets, cumulative, strict=True):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{metric.name}_bucket{_labels_text(bucket_labels)} {count}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(f"{metric.name}_bucket{_labels_text(inf_labels)} {holder.count}")
                lines.append(f"{metric.name}_sum{_labels_text(labels)} {_format_value(holder.sum)}")
                lines.append(f"{metric.name}_count{_labels_text(labels)} {holder.count}")
            continue
        if not samples:
            lines.append(f"{metric.name} 0")
            continue
        for labels, value in samples:
            lines.append(f"{metric.name}{_labels_text(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[+-]?(?:Inf|NaN|[0-9eE.+-]+))$"
)


def parse_prometheus(text: str) -> dict[str, list[tuple[str, float]]]:
    """Strictly parse Prometheus text exposition into ``{family: samples}``.

    The round-trip check behind the tests and CI's ``/metrics`` assertion:
    every non-comment line must be a well-formed sample, every sample must
    follow a ``# TYPE`` comment for its family, and the text must end with a
    newline.  Returns ``{family_name: [(sample_line_name+labels, value)]}``.
    """
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    families: dict[str, list[tuple[str, float]]] = {}
    typed: set[str] = set()
    for n, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {n}: malformed TYPE comment: {line!r}")
            typed.add(parts[2])
            families.setdefault(parts[2], [])
            continue
        if line.startswith("#"):
            raise ValueError(f"line {n}: unknown comment: {line!r}")
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {n}: malformed sample: {line!r}")
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
                break
        if family not in typed:
            raise ValueError(f"line {n}: sample {name!r} has no preceding TYPE comment")
        families[family].append((name + (match.group("labels") or ""), float(match.group("value"))))
    return families
