"""Process-local counters, gauges and histograms: the metrics half of
:mod:`repro.obs`.

One :class:`MetricsRegistry` holds every metric of the process; the default
:data:`REGISTRY` is what the library's instrumented paths and the service's
``GET /metrics`` endpoint share.  Metrics follow Prometheus conventions —
snake-case names with a ``repro_`` prefix, ``_total`` suffix on counters,
base units (seconds, bytes) — and render to the text exposition format via
:func:`repro.obs.export.render_prometheus`.

Recording is cheap and thread-safe (one registry lock around a dict update);
a disabled registry (``REGISTRY.disable()``) makes every ``inc``/``set``/
``observe`` an immediate no-op, so instrumentation can stay unconditional in
hot paths.  Updating a metric **never** touches any random state — enabling
or disabling metrics cannot change published bytes.
"""

from __future__ import annotations

import re
import threading
from collections.abc import Iterator
from typing import Any

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-scale work, chunk kernels included).
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class MetricError(ValueError):
    """Invalid metric or label name, or conflicting re-registration."""


def _label_key(
    labelnames: tuple[str, ...], labels: dict[str, Any], metric: str
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise MetricError(
            f"metric {metric!r} takes labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Metric:
    """Base class: a named family of samples keyed by label values."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: tuple[str, ...]) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r} on metric {name!r}")
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._values: dict[tuple[str, ...], Any] = {}

    def samples(self) -> Iterator[tuple[dict[str, str], Any]]:
        """Yield ``(labels, value)`` pairs in first-seen order."""
        with self._registry._lock:
            items = list(self._values.items())
        for key, value in items:
            yield dict(zip(self.labelnames, key, strict=True)), value

    def clear(self) -> None:
        """Drop every sample (used by tests and registry reset)."""
        with self._registry._lock:
            self._values.clear()


class Counter(Metric):
    """A monotonically increasing count (``*_total`` by convention)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        key = _label_key(self.labelnames, labels, self.name)
        with self._registry._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value for one label combination (0.0 when never incremented)."""
        key = _label_key(self.labelnames, labels, self.name)
        with self._registry._lock:
            return float(self._values.get(key, 0.0))


class Gauge(Metric):
    """A value that can go up and down (or an info-style constant 1)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(self.labelnames, labels, self.name)
        with self._registry._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(self.labelnames, labels, self.name)
        with self._registry._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value for one label combination (0.0 when never set)."""
        key = _label_key(self.labelnames, labels, self.name)
        with self._registry._lock:
            return float(self._values.get(key, 0.0))


class HistogramValue:
    """Cumulative bucket counts plus sum/count for one label combination."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)  # cumulative at render time, raw here
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Counts per bucket as Prometheus wants them: cumulative, ``le``-keyed."""
        out, running = [], 0
        for n in self.counts:
            running += n
            out.append(running)
        return out


class Histogram(Metric):
    """Distribution of observations over fixed buckets (e.g. chunk seconds)."""

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: tuple[str, ...], buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(registry, name, help, labelnames)
        if not buckets or list(buckets) != sorted(buckets):
            raise MetricError(f"histogram {name!r} buckets must be sorted and non-empty")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(self.labelnames, labels, self.name)
        with self._registry._lock:
            holder = self._values.get(key)
            if holder is None:
                holder = self._values[key] = HistogramValue(self.buckets)
            holder.observe(float(value))


class MetricsRegistry:
    """All metrics of one process, in registration order.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice with
    the same name returns the same object (and raises :class:`MetricError`
    when the second call asks for a different kind or label set), so modules
    can declare their metrics independently without import-order coupling.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.RLock()
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: tuple[str, ...], **kwargs: Any) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise MetricError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(self, name, help, tuple(labelnames), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str, labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def metrics(self) -> list[Metric]:
        """Every registered metric, in registration order."""
        with self._lock:
            return list(self._metrics.values())

    def enable(self) -> None:
        """Turn recording on (the default)."""
        self.enabled = True

    def disable(self) -> None:
        """Make every update a no-op (cheap kill switch for hot paths)."""
        self.enabled = False

    def reset(self) -> None:
        """Clear every metric's samples (declarations stay registered)."""
        for metric in self.metrics():
            metric.clear()


#: The process-wide default registry: what the instrumented library paths
#: update and what the service's ``GET /metrics`` endpoint renders.
REGISTRY = MetricsRegistry()

# ---------------------------------------------------------------------- #
# The standard instrument set (declared once; modules import these).
# ---------------------------------------------------------------------- #

#: Rows published, by strategy, across the pipeline and streaming paths.
ROWS_PUBLISHED = REGISTRY.counter(
    "repro_rows_published_total",
    "Rows published across all entry points (pipeline, stream, service).",
    labelnames=("strategy",),
)

#: Completed publishing runs, by execution path and strategy.
PUBLISH_RUNS = REGISTRY.counter(
    "repro_publish_runs_total",
    "Completed publishing runs by path (pipeline or stream) and strategy.",
    labelnames=("path", "strategy"),
)

#: Work chunks executed by the shared scheduler, by resolved backend.
CHUNKS_TOTAL = REGISTRY.counter(
    "repro_chunks_total",
    "Work chunks executed by the chunk scheduler, by resolved backend.",
    labelnames=("backend",),
)

#: Per-chunk wall-clock seconds (recorded when a tracer is active, since
#: durations are timed worker-side by the traced kernel wrapper).
CHUNK_SECONDS = REGISTRY.histogram(
    "repro_chunk_seconds",
    "Wall-clock seconds per scheduler work chunk (recorded while tracing).",
    labelnames=("backend",),
)

#: Random draws consumed by instrumented perturbation paths.
RNG_DRAWS = REGISTRY.counter(
    "repro_rng_draws_total",
    "Random draws consumed by instrumented perturbation paths.",
)

#: Published-row throughput of the most recent streaming enforce stage.
STREAM_ROWS_PER_SECOND = REGISTRY.gauge(
    "repro_stream_rows_per_second",
    "Published-row throughput of the most recent streaming enforce stage.",
)

#: Personal groups receiving appended rows, per delta-publish, by strategy.
DELTA_GROUPS_TOUCHED = REGISTRY.counter(
    "repro_delta_groups_touched_total",
    "Personal groups receiving appended rows across delta-publish runs.",
    labelnames=("strategy",),
)

#: Rows appended through the incremental delta-publish path, by strategy.
DELTA_ROWS_APPENDED = REGISTRY.counter(
    "repro_delta_rows_appended_total",
    "Rows appended through the incremental delta-publish path.",
    labelnames=("strategy",),
)

#: Storage-connector operations (get/put/delete/...), by backend and op.
STORE_OPS = REGISTRY.counter(
    "repro_store_ops_total",
    "Storage-connector operations by backend (sqlite, memory, json) and op.",
    labelnames=("backend", "op"),
)

#: Committed storage transactions, by backend and read/write mode.
STORE_TXNS = REGISTRY.counter(
    "repro_store_txns_total",
    "Committed storage transactions by backend and mode (write=true/false).",
    labelnames=("backend", "write"),
)

#: Wall-clock seconds per request served by the serving front end, by
#: top-level endpoint (``audit``, ``publish``, ``datasets``, ...).
SERVE_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_serve_request_seconds",
    "Wall-clock seconds per request served by the serving front end.",
    labelnames=("endpoint",),
)

#: Requests currently waiting in the serving front end's bounded job queue.
SERVE_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_serve_queue_depth",
    "Requests currently waiting in the serving front end's bounded queue.",
)

#: Requests rejected with 429 because the bounded job queue was full.
SERVE_QUEUE_REJECTIONS = REGISTRY.counter(
    "repro_serve_queue_rejections_total",
    "Requests rejected with 429 because the bounded job queue was full.",
)

#: Response-cache lookups by result (``hit`` or ``miss``).
SERVE_CACHE_HITS = REGISTRY.counter(
    "repro_serve_cache_hits_total",
    "Response-cache lookups by the serving front end, by result (hit/miss).",
    labelnames=("result",),
)

#: Response-cache entries dropped because their dataset changed.
SERVE_CACHE_INVALIDATIONS = REGISTRY.counter(
    "repro_serve_cache_invalidations_total",
    "Response-cache entries invalidated by dataset re-registers and appends.",
)

#: Peak traced allocation of the most recent ``track_memory`` streaming run.
TRACEMALLOC_PEAK = REGISTRY.gauge(
    "repro_tracemalloc_peak_bytes",
    "Peak tracemalloc allocation of the most recent track_memory stream run.",
)

#: Info-style gauge carrying the run environment as labels (value always 1);
#: populated by :func:`repro.obs.environment.record_build_info`.
BUILD_INFO = REGISTRY.gauge(
    "repro_build_info",
    "Run environment as labels (python, numpy, platform, repro_version, cpu_count).",
    labelnames=("python", "numpy", "platform", "repro_version", "cpu_count"),
)
