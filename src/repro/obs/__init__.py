"""repro.obs — structured tracing and metrics for every execution path.

A zero-dependency observability layer threaded through the pipeline
(:mod:`repro.pipeline`), the streaming engine (:mod:`repro.stream`), the
multi-worker scheduler (:mod:`repro.parallel`) and the service
(:mod:`repro.service`):

* **Spans** (:mod:`repro.obs.trace`) — hierarchical timed regions
  (``publish → stage → chunk``) with structured attributes.  Stage timings
  on :class:`~repro.pipeline.report.PublishReport` and
  :class:`~repro.stream.report.StreamReport` are derived from these spans;
  activating a :class:`Tracer` records them without changing a single
  published byte.
* **Metrics** (:mod:`repro.obs.metrics`) — a process-local registry of
  counters, gauges and histograms (rows published, chunks executed, chunk
  seconds, RNG draws, tracemalloc peak) rendered by the service's
  ``GET /metrics`` endpoint in Prometheus text format.
* **Exporters** (:mod:`repro.obs.export`) — JSONL trace files (the
  ``--trace`` flag on ``repro-stream``, ``repro-bench`` and
  ``repro-service``), live logfmt lines, and the Prometheus renderer, each
  with a strict validator used by the tests and CI.

Quickstart::

    from repro.obs import Tracer, export

    with Tracer() as tracer:
        report = repro.publish(table, strategy="sps", rng=7)
    export.write_trace(tracer, "publish-trace.jsonl")
"""

from repro.obs import export
from repro.obs.environment import record_build_info, runtime_environment
from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    parse_prometheus,
    render_prometheus,
    validate_trace,
    write_trace,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.trace import Span, SpanRecord, Tracer, current_tracer, span

__all__ = [
    "REGISTRY",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "TraceSchemaError",
    "Tracer",
    "configure_cli_logging",
    "current_tracer",
    "export",
    "parse_prometheus",
    "record_build_info",
    "render_prometheus",
    "runtime_environment",
    "span",
    "validate_trace",
    "write_trace",
]


def configure_cli_logging(verbose: bool = False, quiet: bool = False) -> None:
    """Configure the ``repro`` logger hierarchy for a CLI run.

    All repro CLIs log human-facing progress through stdlib ``logging`` to
    **stderr** (never stdout — published CSV or JSON piped to stdout must
    stay byte-clean).  Default level INFO; ``verbose`` selects DEBUG
    (chunk-level progress), ``quiet`` selects ERROR.  Idempotent: reuses the
    handler it installed on earlier calls.
    """
    import logging
    import sys

    logger = logging.getLogger("repro")
    handler = next(
        (h for h in logger.handlers if getattr(h, "_repro_cli", False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
        handler._repro_cli = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    else:
        # Re-bind to the *current* stderr: test harnesses (capsys) and
        # re-invocations may have replaced (and closed) the stream since the
        # first call — assign directly, setStream() would flush the old one.
        handler.stream = sys.stderr
    logger.propagate = False
    logger.setLevel(
        logging.ERROR if quiet else logging.DEBUG if verbose else logging.INFO
    )
