"""The ordered block writer: out-of-order completions, in-order flushes.

Parallel chunk execution finishes chunks in whatever order the machine
pleases; everything downstream (the CSV sink, the table assembler, the
record list) requires chunk order.  :class:`OrderedEmitter` is the small
buffer between the two: completions are pushed with their chunk index, and a
result is flushed to the consumer exactly when every earlier chunk has been
flushed before it.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, Generic, TypeVar

R = TypeVar("R")


class OrderedEmitter(Generic[R]):
    """Buffer out-of-order ``(index, result)`` completions; emit in index order.

    ``emit`` is called with each result exactly once, in strictly increasing
    index order starting at 0, however the pushes arrive.  Out-of-order
    results wait in an internal buffer; :attr:`buffered` exposes its size so
    schedulers can bound it via submission backpressure.

    Example:

    >>> flushed = []
    >>> emitter = OrderedEmitter(flushed.append)
    >>> emitter.push(2, "c")  # chunk 2 finished first: buffered, not flushed
    0
    >>> emitter.buffered
    1
    >>> emitter.push(0, "a")  # flushes chunk 0 only
    1
    >>> emitter.push(1, "b")  # flushes chunk 1 and the buffered chunk 2
    2
    >>> flushed
    ['a', 'b', 'c']
    >>> emitter.buffered, emitter.emitted
    (0, 3)
    """

    def __init__(self, emit: Callable[[R], Any]) -> None:
        self._emit = emit
        self._pending: dict[int, R] = {}
        self._next = 0

    @property
    def buffered(self) -> int:
        """Number of results waiting for an earlier chunk to complete."""
        return len(self._pending)

    @property
    def emitted(self) -> int:
        """Number of results flushed so far (== the next expected index)."""
        return self._next

    def push(self, index: int, result: R) -> int:
        """Accept the result of chunk ``index``; flush everything now in order.

        Returns the number of results flushed by this push (possibly 0).
        """
        if index < self._next or index in self._pending:
            raise ValueError(f"chunk {index} was already emitted or is already buffered")
        self._pending[index] = result
        flushed = 0
        while self._next in self._pending:
            self._emit(self._pending.pop(self._next))
            self._next += 1
            flushed += 1
        return flushed

    def close(self) -> None:
        """Assert the stream completed cleanly (nothing left buffered)."""
        if self._pending:
            raise ValueError(
                f"ordered emitter closed with {len(self._pending)} buffered "
                f"result(s); chunk {self._next} never arrived"
            )
