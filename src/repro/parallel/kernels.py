"""Picklable chunk kernels: the unit of work shipped to worker processes.

A closure built by :meth:`PublishStrategy.chunk_publisher` cannot cross a
process boundary, so the process backend ships *descriptions* instead: a
kernel object carrying the strategy instance, the (prepared) schema, the
privacy spec and the resolved parameters.  The worker rebuilds the closure
lazily on first call and caches it for the life of the process; the built
closure itself is excluded from pickling.

Construction of a chunk publisher draws no randomness, so rebuilding it in a
worker changes nothing about the published bytes — every draw still comes
from the per-chunk generator handed in with the payload.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.criterion import PrivacySpec
    from repro.dataset.schema import Schema
    from repro.pipeline.strategy import PublishStrategy


class MissingChunkPublisher(ValueError):
    """Raised by :meth:`StrategyKernel.build` when the strategy has no kernel.

    A distinct type so callers can tell "this strategy cannot publish in
    chunks" apart from a real :class:`ValueError` the strategy's own
    ``chunk_publisher`` builder raised (bad parameters etc.) — the latter
    must propagate unchanged.
    """


def remap_columns(block: np.ndarray, remaps: Sequence[np.ndarray]) -> np.ndarray:
    """Translate a codes block through per-column code tables (new array).

    The one provisional→final translation both
    :meth:`repro.stream.index.IncrementalGroupIndex.remap_block` and the
    parallel :class:`UniformRowKernel` use — kept single-sourced so the
    serial and worker paths cannot diverge byte-wise.
    """
    remapped = np.empty_like(block)
    for i, remap in enumerate(remaps):
        remapped[:, i] = remap[block[:, i]]
    return remapped


@dataclass(frozen=True)
class EncodedBlock:
    """A published block already rendered to CSV text by a worker.

    ``text`` is exactly what the parent's CSV sink would have written for the
    block (one ``\\r\\n``-terminated line per record, stdlib ``csv`` dialect),
    so the parent only concatenates in chunk order — the per-row decode loop,
    the hot path of a CSV publish, runs in the workers.
    """

    text: str
    n_rows: int


def encode_block_csv(schema: "Schema", block: np.ndarray) -> EncodedBlock:
    """Render a codes block to the exact CSV text ``_CsvSink`` would write."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    decode = schema.decode_record
    writer.writerows(decode(row) for row in block)
    return EncodedBlock(text=buffer.getvalue(), n_rows=int(block.shape[0]))


@dataclass
class StrategyKernel:
    """A picklable stand-in for ``strategy.chunk_publisher(schema, spec, resolved)``.

    Calling the kernel is byte-for-byte the same as calling the closure the
    strategy builds — the kernel *is* that closure, built lazily (and cached)
    in whichever process the call lands in.  Pickling drops the built
    closure; the strategy instance, schema, spec and resolved parameters ride
    along and rebuild it on the other side.

    Strategies whose class is importable (module level) pickle by reference,
    so custom strategies keep working across processes; locally-defined test
    strategies fail the scheduler's pickle probe and fall back to threads.
    """

    strategy: "PublishStrategy"
    schema: "Schema"
    spec: "PrivacySpec | None"
    resolved: dict[str, Any]
    _fn: Any = field(default=None, repr=False, compare=False)

    def build(self) -> Callable[[Sequence[Any], np.random.Generator], tuple[np.ndarray, Sequence[Any]]]:
        """The underlying chunk publisher, built once per process.

        Raises :class:`MissingChunkPublisher` when the strategy returns
        ``None``; any exception the strategy's builder itself raises
        propagates unchanged.
        """
        if self._fn is None:
            fn = self.strategy.chunk_publisher(self.schema, self.spec, self.resolved)
            if fn is None:
                raise MissingChunkPublisher(
                    f"strategy {self.strategy.name!r} returned no chunk publisher "
                    "for this configuration; it cannot publish in chunks"
                )
            self._fn = fn
        return self._fn

    def __call__(
        self, chunk: Sequence[Any], rng: np.random.Generator
    ) -> tuple[np.ndarray, Sequence[Any]]:
        return self.build()(chunk, rng)

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state["_fn"] = None  # closures don't pickle; rebuilt lazily on arrival
        return state


@dataclass
class CsvChunkKernel:
    """Wrap a chunk kernel so workers also render their block to CSV text.

    Returns ``(EncodedBlock, records)`` instead of ``(block, records)``; the
    parent writes the text straight to the sink in chunk order.  Used by the
    streaming engine when the sink is a CSV and ``workers > 1`` — it moves
    the per-row decode loop (the dominant serial cost of a CSV publish) into
    the workers without changing a single output byte.
    """

    kernel: StrategyKernel

    def __call__(
        self, chunk: Sequence[Any], rng: np.random.Generator
    ) -> tuple[EncodedBlock, Sequence[Any]]:
        block, records = self.kernel(chunk, rng)
        return encode_block_csv(self.kernel.schema, block), records


@dataclass
class UniformRowKernel:
    """Per-spool-block finishing of the uniform row-stream path.

    The phase-split draws (all retain draws, then all replacement draws)
    stay **sequential in the parent** — they are cheap vectorised generator
    calls whose order defines the byte contract — and workers get pure
    deterministic payloads: ``(provisional block, retain bits, replacement
    codes)``.  The kernel remaps the block onto the finalized schema codes,
    applies the perturbation, and (for CSV sinks) renders the rows — the
    actually expensive parts of the uniform path.

    ``remaps`` are the per-column provisional→final code tables the
    incremental index produced at finalize time.
    """

    remaps: tuple[np.ndarray, ...]
    schema: "Schema"
    encode: bool = False

    def __call__(
        self, payload: tuple[np.ndarray, np.ndarray, np.ndarray], rng: Any = None
    ) -> np.ndarray | EncodedBlock:
        block, retain, replacements = payload
        final = remap_columns(block, self.remaps)
        final[:, -1] = np.where(retain, final[:, -1], replacements)
        if self.encode:
            return encode_block_csv(self.schema, final)
        return final
