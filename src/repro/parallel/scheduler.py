"""The multi-worker chunk scheduler shared by the stream, pipeline and service engines.

Determinism is structural, not scheduled: chunks and their seeded generators
are fixed before any work starts, workers may finish in any order, and
results are re-sequenced into chunk order before the caller sees them
(buffered out-of-order completions, bounded by submission backpressure).
For a fixed seed the published table, the CSV bytes and the RNG stream
consumption are byte-identical at any ``workers`` count and on any backend.

The process backend ships the kernel object to each worker **once** (via the
pool initializer) and per-chunk payloads after that; kernels must therefore
be picklable — :mod:`repro.parallel.kernels` provides the standard ones.
``backend="auto"`` probes picklability and quietly falls back to threads for
kernels that cannot cross a process boundary (e.g. locally-defined test
strategies).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, TypeVar

import numpy as np

from repro.obs.metrics import CHUNK_SECONDS, CHUNKS_TOTAL
from repro.obs.trace import Tracer, current_tracer
from repro.parallel.ordered import OrderedEmitter
from repro.pipeline.execution import DEFAULT_CHUNK_SIZE, chunk_items, chunk_rngs

T = TypeVar("T")
R = TypeVar("R")

#: Every selectable execution backend.
PARALLEL_BACKENDS = ("auto", "serial", "thread", "process")

#: The default backend: process when the kernel pickles, thread otherwise.
DEFAULT_BACKEND = "auto"

#: Under ``auto``, jobs with fewer chunks than this stay on threads: a
#: process pool costs worker start-up (and, under forkserver, a re-import of
#: numpy per worker) that a few-chunk job can never amortise.  Explicit
#: ``backend="process"`` bypasses the floor.
AUTO_MIN_PROCESS_TASKS = 4

# The kernel shipped to this worker process by the pool initializer.
_WORKER_KERNEL: Any = None


def _init_worker(kernel_bytes: bytes) -> None:
    global _WORKER_KERNEL
    _WORKER_KERNEL = pickle.loads(kernel_bytes)


def _call_worker(args: tuple[Any, ...]) -> Any:
    return _WORKER_KERNEL(*args)


@dataclass
class _TimedResult:
    """A chunk result plus the span data its worker timed around it."""

    value: Any
    duration: float
    pid: int
    thread: str


class _TimedKernel:
    """Wrap a chunk kernel so the *worker* times each call and reports who ran it.

    Spans cannot cross a process boundary live, so the worker records its
    own wall-clock duration and identity; the parent merges the finished
    records into the active tracer **in chunk order** (the ordered emitter's
    order), keeping traces deterministic modulo the timing values.  Pickles
    iff the wrapped kernel pickles, so backend resolution is unchanged.
    """

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[..., Any]) -> None:
        self._fn = fn

    def __getstate__(self) -> Callable[..., Any]:
        return self._fn

    def __setstate__(self, fn: Callable[..., Any]) -> None:
        self._fn = fn

    def __call__(self, *args: Any) -> _TimedResult:
        start = time.perf_counter()
        value = self._fn(*args)
        return _TimedResult(
            value=value,
            duration=time.perf_counter() - start,
            pid=os.getpid(),
            thread=threading.current_thread().name,
        )


def _emit_chunk(
    tracer: Tracer | None, item: Any, index: int, backend: str, workers: int
) -> Any:
    """Unwrap one (possibly timed) chunk result; record its span and metrics."""
    CHUNKS_TOTAL.inc(backend=backend)
    if tracer is None:
        return item
    tracer.record(
        "chunk",
        item.duration,
        attributes={
            "kind": "chunk",
            "chunk_id": index,
            "backend": backend,
            "workers": workers,
            "worker_pid": item.pid,
            "worker_thread": item.thread,
        },
    )
    CHUNK_SECONDS.observe(item.duration, backend=backend)
    return item.value


def _mp_context() -> multiprocessing.context.BaseContext:
    """Pick the start method: ``fork`` when single-threaded, else ``forkserver``.

    Fork keeps worker start-up in the low milliseconds — no re-import of
    numpy per job — and makes strategies registered at runtime visible to
    workers even before pickling.  But forking a *multithreaded* process
    (e.g. a publish request handled inside the ``ThreadingHTTPServer``) can
    deadlock the child on a lock some other thread held at fork time, so
    with threads active we switch to ``forkserver`` (children fork from a
    clean single-threaded server process; slower first start, never
    lock-unsafe).  Platforms without fork fall back to the interpreter
    default; kernels are shipped by pickle either way, so the published
    bytes are identical on every method.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context()


def resolve_backend(
    backend: str,
    workers: int,
    n_tasks: int | None,
    fn: Callable[..., Any],
) -> tuple[str, bytes | None]:
    """Resolve a requested backend to a concrete one (plus the pickled kernel).

    ``serial`` whenever one worker (or at most one task) makes fan-out
    pointless; ``auto`` probes ``pickle.dumps(fn)`` and picks ``process``
    when it succeeds **and** the job is big enough to amortise pool start-up
    (at least :data:`AUTO_MIN_PROCESS_TASKS` chunks), ``thread`` otherwise.
    An explicit ``process`` with an unpicklable kernel is an error rather
    than a silent degradation.
    """
    if backend not in PARALLEL_BACKENDS:
        raise ValueError(
            f"unknown parallel backend {backend!r}; choose one of {PARALLEL_BACKENDS}"
        )
    if workers <= 1 or backend == "serial" or (n_tasks is not None and n_tasks <= 1):
        return "serial", None
    if backend == "thread":
        return "thread", None
    if backend == "auto" and n_tasks is not None and n_tasks < AUTO_MIN_PROCESS_TASKS:
        return "thread", None
    try:
        payload = pickle.dumps(fn)
    except Exception as exc:
        if backend == "process":
            raise ValueError(
                f"backend='process' requires a picklable kernel, but pickling "
                f"{fn!r} failed: {exc}; use backend='thread' or a module-level kernel"
            ) from exc
        return "thread", None
    return "process", payload


def iter_ordered_map(
    fn: Callable[..., R],
    payloads: Iterable[tuple[Any, ...]],
    *,
    workers: int = 1,
    backend: str = DEFAULT_BACKEND,
    n_tasks: int | None = None,
) -> Iterator[R]:
    """Apply ``fn(*payload)`` to every payload; yield results **in payload order**.

    The parallel primitive everything else builds on.  ``payloads`` may be a
    lazy iterator: at most ``~2 * workers`` tasks are in flight or buffered
    at once, so a bounded-memory producer (e.g. the streaming engine's row
    spool) stays bounded through the pool.  Worker exceptions propagate to
    the caller on the chunk that raised; the pool is shut down (pending work
    cancelled) on any failure or early consumer exit.
    """
    # With a tracer active, each chunk is timed inside its worker and the
    # finished span records are merged here in chunk order (deterministic
    # trace structure at any worker count — only the timing values move).
    tracer = current_tracer()
    exec_fn: Callable[..., Any] = _TimedKernel(fn) if tracer is not None else fn
    resolved, kernel_bytes = resolve_backend(backend, workers, n_tasks, exec_fn)
    if resolved == "serial":
        for index, payload in enumerate(payloads):
            yield _emit_chunk(tracer, exec_fn(*payload), index, "serial", workers)
        return

    executor: Executor
    if resolved == "process":
        executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
            initializer=_init_worker,
            initargs=(kernel_bytes,),
        )
        submit = lambda args: executor.submit(_call_worker, args)  # noqa: E731
    else:
        executor = ThreadPoolExecutor(max_workers=workers)
        submit = lambda args: executor.submit(exec_fn, *args)  # noqa: E731

    max_inflight = 2 * workers + 2
    iterator = iter(payloads)
    try:
        futures: dict[Any, int] = {}
        ready: deque[Any] = deque()
        emitter: OrderedEmitter[Any] = OrderedEmitter(ready.append)
        next_submit = 0
        emitted = 0
        exhausted = False
        while True:
            # Backpressure: in-flight plus buffered (out-of-order or not yet
            # yielded) never exceeds max_inflight, so lazy producers stay
            # bounded.
            while (
                not exhausted
                and len(futures) + emitter.buffered + len(ready) < max_inflight
            ):
                try:
                    payload = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                futures[submit(payload)] = next_submit
                next_submit += 1
            if not futures:
                break
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                emitter.push(futures.pop(future), future.result())
            while ready:
                yield _emit_chunk(tracer, ready.popleft(), emitted, resolved, workers)
                emitted += 1
        emitter.close()  # every submitted chunk was flushed, in order
    finally:
        executor.shutdown(wait=True, cancel_futures=True)


def iter_chunk_results(
    items: Sequence[T],
    chunk_fn: Callable[[Sequence[T], np.random.Generator], R],
    seed: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    workers: int = 1,
    backend: str = DEFAULT_BACKEND,
) -> Iterator[R]:
    """Yield ``chunk_fn(chunk, rng)`` for every seeded chunk, in chunk order.

    The chunking and per-chunk seeding are exactly
    :func:`repro.pipeline.execution.run_chunks_serial`'s — same chunks, same
    spawned generators — so for a fixed ``(seed, chunk_size)`` the results
    are byte-identical at any worker count.
    """
    chunks = chunk_items(items, chunk_size)
    rngs = chunk_rngs(seed, len(chunks))
    yield from iter_ordered_map(
        chunk_fn,
        zip(chunks, rngs, strict=True),
        workers=workers,
        backend=backend,
        n_tasks=len(chunks),
    )


def run_chunks(
    items: Sequence[T],
    chunk_fn: Callable[[Sequence[T], np.random.Generator], R],
    seed: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: int = 1,
    backend: str = DEFAULT_BACKEND,
) -> list[R]:
    """Like :func:`iter_chunk_results` but collected into a list.

    Matches the :data:`repro.pipeline.execution.ChunkRunner` signature (with
    the worker knobs bound), so it plugs straight into
    :class:`~repro.pipeline.pipeline.PublishPipeline`:

    >>> run_chunks([1, 2, 3], lambda chunk, rng: sum(chunk), seed=0, chunk_size=2)
    [3, 3]
    """
    return list(
        iter_chunk_results(
            items, chunk_fn, seed, chunk_size, workers=workers, backend=backend
        )
    )
