"""Shared deterministic multi-worker execution for the publishing engines.

This package is the one place chunked work is fanned out — the streaming
engine (:mod:`repro.stream`), the in-memory pipeline (:mod:`repro.pipeline`)
and the service (:mod:`repro.service`) all execute their per-chunk kernels
through the scheduler here, so they share a single determinism contract:

    *the published bytes depend only on the seed and the chunk size, never on
    the worker count, the execution backend or the completion order.*

That holds because the work is split and seeded **before** anything runs
(:func:`repro.pipeline.execution.chunk_items` /
:func:`~repro.pipeline.execution.chunk_rngs`) and because completions are
re-ordered back into chunk order by :class:`OrderedEmitter` before any
consumer sees them — an out-of-order worker finish is buffered, never
flushed early.

Three backends:

``serial``
    Inline execution in the caller's thread — the reference every other
    backend is tested against, and what ``workers <= 1`` resolves to.
``thread``
    A ``ThreadPoolExecutor`` — cheap to start, shares memory, but the GIL
    throttles the numpy-light per-group paths; kept for tiny jobs and for
    kernels that cannot be pickled.
``process``
    A ``ProcessPoolExecutor`` with picklable kernel objects
    (:class:`StrategyKernel` and friends) shipped to each worker once and
    per-chunk payloads carrying pre-seeded RNG states — true multi-core
    scaling for CPU-bound kernels.

``backend="auto"`` (the default everywhere) picks ``process`` when the
kernel proves picklable and the job is big enough to matter, falling back to
``thread`` otherwise.
"""

from repro.parallel.kernels import (
    CsvChunkKernel,
    EncodedBlock,
    MissingChunkPublisher,
    StrategyKernel,
    UniformRowKernel,
    remap_columns,
)
from repro.parallel.ordered import OrderedEmitter
from repro.parallel.scheduler import (
    DEFAULT_BACKEND,
    PARALLEL_BACKENDS,
    iter_chunk_results,
    iter_ordered_map,
    resolve_backend,
    run_chunks,
)

__all__ = [
    "CsvChunkKernel",
    "DEFAULT_BACKEND",
    "EncodedBlock",
    "MissingChunkPublisher",
    "OrderedEmitter",
    "PARALLEL_BACKENDS",
    "StrategyKernel",
    "UniformRowKernel",
    "iter_chunk_results",
    "iter_ordered_map",
    "remap_columns",
    "resolve_backend",
    "run_chunks",
]
