"""Statistical helpers shared by experiments and analysis modules."""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np


def mean_and_standard_error(values: Sequence[float]) -> tuple[float, float]:
    """Return ``(mean, standard error of the mean)`` of ``values``.

    The paper's Table 1 reports the mean and SE over 10 random trials; this is
    the same estimator (sample standard deviation with Bessel's correction,
    divided by ``sqrt(n)``).  For a single value the SE is 0.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("values must not be empty")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    se = float(arr.std(ddof=1) / math.sqrt(arr.size))
    return mean, se


def relative_error(estimate: float, truth: float) -> float:
    """Return ``|estimate - truth| / truth``.

    This is the utility metric of Section 6.1 of the paper.  ``truth`` must be
    non-zero; queries with a zero true answer are excluded from the paper's
    pool by the selectivity filter, and we enforce the same contract here.
    """
    if truth == 0:
        raise ValueError("relative error is undefined for a zero true answer")
    return abs(estimate - truth) / abs(truth)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty interval: [{low}, {high}]")
    return max(low, min(high, value))


def normalise_frequencies(counts: Sequence[float]) -> np.ndarray:
    """Convert non-negative counts to frequencies that sum to one.

    Raises ``ValueError`` if all counts are zero or any count is negative.
    """
    arr = np.asarray(list(counts), dtype=float)
    if (arr < 0).any():
        raise ValueError("counts must be non-negative")
    total = arr.sum()
    if total <= 0:
        raise ValueError("counts must not all be zero")
    return arr / total
