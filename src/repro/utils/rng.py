"""Random number generator helpers.

Every stochastic component of the library (perturbation, sampling, workload
generation, synthetic data generation, Laplace noise) accepts either an
integer seed, an existing :class:`numpy.random.Generator`, or ``None``.  This
module centralises that normalisation so experiments are reproducible by
passing a single seed at the top level.
"""

from __future__ import annotations

import numpy as np

#: Seed used by experiments when the caller does not provide one.
DEFAULT_SEED = 20150323  # EDBT 2015 started on March 23, 2015.


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an already constructed
        generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used by multi-trial experiments so that each trial gets its own stream
    while the whole experiment remains reproducible from a single seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    root = default_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
