"""Plain-text rendering of tables and series.

The original paper presents results as LaTeX tables and MATLAB figures.  This
reproduction runs in a terminal, so every experiment renders its output with
these helpers: a fixed-width table renderer and a "series" renderer that
prints the x/y pairs of a figure as aligned columns (one column per curve).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 6,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    header_cells = [str(h) for h in headers]
    body = [[_format_cell(cell, precision) for cell in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError("every row must have the same number of cells as the header")
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_cells))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)


def render_listing(
    items: Sequence[tuple[str, str]] | Mapping[str, str],
    title: str | None = None,
    headers: Sequence[str] = ("name", "description"),
) -> str:
    """Render a name → description listing as an aligned two-column table.

    The one shared formatter behind every CLI ``--list`` flag
    (``repro-bench --list``, ``repro-experiments --list``), so listings look
    the same everywhere instead of each command rolling its own printing.
    """
    rows = list(items.items()) if isinstance(items, Mapping) else [tuple(row) for row in items]
    return render_table(headers, rows, title=title)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a figure's data as one x column plus one column per curve.

    ``series`` maps curve names (e.g. ``"UP"``, ``"SPS"``) to y values aligned
    with ``x_values``.
    """
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length does not match x_values")
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(series[name][i] for name in series)])
    return render_table(headers, rows, title=title, precision=precision)
