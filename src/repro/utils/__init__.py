"""Small shared utilities: seeded RNG management, statistics helpers and
plain-text rendering of tables and series used by the experiment harness."""

from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.stats import mean_and_standard_error, relative_error
from repro.utils.textplot import render_listing, render_series, render_table

__all__ = [
    "default_rng",
    "spawn_rngs",
    "mean_and_standard_error",
    "relative_error",
    "render_listing",
    "render_series",
    "render_table",
]
