"""Output-perturbation mechanisms (Laplace and Gaussian).

The standard epsilon-differential-privacy mechanism adds zero-mean noise of a
fixed scale to query answers.  For the Laplace mechanism the scale is
``b = sensitivity / epsilon`` and the variance is ``2 b^2``; for the
(epsilon, delta) Gaussian mechanism the standard deviation is
``sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon``.  Both expose the
fixed variance the paper's Corollary 1 relies on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import default_rng


class LaplaceMechanism:
    """The Laplace mechanism ``Lap(b)`` with ``b = sensitivity / epsilon``."""

    def __init__(self, epsilon: float, sensitivity: float = 1.0) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        self._epsilon = float(epsilon)
        self._sensitivity = float(sensitivity)

    @classmethod
    def from_scale(cls, scale: float) -> "LaplaceMechanism":
        """Build a mechanism directly from the scale factor ``b`` (sensitivity 1)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return cls(epsilon=1.0 / scale, sensitivity=1.0)

    @property
    def epsilon(self) -> float:
        """The privacy parameter epsilon."""
        return self._epsilon

    @property
    def sensitivity(self) -> float:
        """The query sensitivity Delta."""
        return self._sensitivity

    @property
    def scale(self) -> float:
        """The Laplace scale factor ``b = sensitivity / epsilon``."""
        return self._sensitivity / self._epsilon

    @property
    def variance(self) -> float:
        """``Var[noise] = 2 b^2`` — fixed for a given query class (Section 2)."""
        return 2.0 * self.scale**2

    def add_noise(
        self, answers: float | np.ndarray, rng: int | np.random.Generator | None = None
    ) -> float | np.ndarray:
        """Return ``answers`` plus independent Laplace noise of scale ``b``."""
        rng = default_rng(rng)
        arr = np.asarray(answers, dtype=float)
        noisy = arr + rng.laplace(loc=0.0, scale=self.scale, size=arr.shape)
        if np.isscalar(answers) or arr.shape == ():
            return float(noisy)
        return noisy


class GaussianMechanism:
    """The analytic (epsilon, delta) Gaussian mechanism."""

    def __init__(self, epsilon: float, delta: float, sensitivity: float = 1.0) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must lie strictly between 0 and 1")
        if sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        self._epsilon = float(epsilon)
        self._delta = float(delta)
        self._sensitivity = float(sensitivity)

    @property
    def epsilon(self) -> float:
        """The privacy parameter epsilon."""
        return self._epsilon

    @property
    def delta(self) -> float:
        """The privacy parameter delta."""
        return self._delta

    @property
    def sigma(self) -> float:
        """Noise standard deviation ``Delta * sqrt(2 ln(1.25/delta)) / epsilon``."""
        return self._sensitivity * math.sqrt(2.0 * math.log(1.25 / self._delta)) / self._epsilon

    @property
    def variance(self) -> float:
        """``sigma^2`` — again fixed for a given query class."""
        return self.sigma**2

    def add_noise(
        self, answers: float | np.ndarray, rng: int | np.random.Generator | None = None
    ) -> float | np.ndarray:
        """Return ``answers`` plus independent Gaussian noise of deviation ``sigma``."""
        rng = default_rng(rng)
        arr = np.asarray(answers, dtype=float)
        noisy = arr + rng.normal(loc=0.0, scale=self.sigma, size=arr.shape)
        if np.isscalar(answers) or arr.shape == ():
            return float(noisy)
        return noisy
