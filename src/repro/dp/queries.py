"""Differentially private count queries over a raw table.

A thin interface combining a :class:`~repro.dataset.table.Table` with a noise
mechanism: each call answers a COUNT(*) query on the raw data and adds noise.
It also tracks the cumulative epsilon spent so experiments can reason about
the total privacy budget of a query sequence (the paper's Example 1 sets the
sensitivity to 2 to account for the two queries asked in a row).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.dataset.table import Table
from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.utils.rng import default_rng


class PrivateCountQuerier:
    """Answer count queries over ``table`` through a noise mechanism.

    Parameters
    ----------
    table:
        The raw data ``D``.
    mechanism:
        A :class:`LaplaceMechanism` or :class:`GaussianMechanism`.
    rng:
        Seed or generator for the noise draws.
    """

    def __init__(
        self,
        table: Table,
        mechanism: LaplaceMechanism | GaussianMechanism,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self._table = table
        self._mechanism = mechanism
        self._rng = default_rng(rng)
        self._queries_answered = 0

    @property
    def table(self) -> Table:
        """The underlying raw table."""
        return self._table

    @property
    def mechanism(self) -> LaplaceMechanism | GaussianMechanism:
        """The noise mechanism in use."""
        return self._mechanism

    @property
    def queries_answered(self) -> int:
        """How many noisy answers have been released so far."""
        return self._queries_answered

    @property
    def epsilon_spent(self) -> float:
        """Total epsilon consumed under sequential composition."""
        return self._queries_answered * self._mechanism.epsilon

    def true_count(self, conditions: Mapping[str, str], sensitive_value: str | None = None) -> int:
        """The exact count (used by experiments to measure disclosure, never published)."""
        return self._table.count(dict(conditions), sensitive_value)

    def noisy_count(
        self, conditions: Mapping[str, str], sensitive_value: str | None = None
    ) -> float:
        """A noisy COUNT(*) answer for the given NA conditions and optional SA value."""
        answer = self.true_count(conditions, sensitive_value)
        self._queries_answered += 1
        return float(self._mechanism.add_noise(answer, rng=self._rng))
