"""Differential-privacy substrate and the NIR ratio attack of Section 2.

The paper's Section 2 analyses when two differentially private count answers
disclose a sensitive rule through their ratio.  This package provides the
output-perturbation substrate needed for that analysis and for Table 1 and
Table 2 of the paper:

* :mod:`repro.dp.mechanisms` — the Laplace and Gaussian mechanisms;
* :mod:`repro.dp.queries` — count queries with an epsilon budget over a raw
  table;
* :mod:`repro.dp.attack` — the ratio attack (Lemma 1, Corollaries 1-2) and
  the confidence-disclosure experiment of Example 1.
"""

from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.dp.queries import PrivateCountQuerier
from repro.dp.attack import (
    RatioAttackResult,
    expected_ratio,
    ratio_error_indicator,
    ratio_variance,
    run_ratio_attack,
)
from repro.dp.bayes_attack import BayesAttackResult, DPNaiveBayesAttacker, run_bayes_attack

__all__ = [
    "LaplaceMechanism",
    "GaussianMechanism",
    "PrivateCountQuerier",
    "RatioAttackResult",
    "expected_ratio",
    "ratio_variance",
    "ratio_error_indicator",
    "run_ratio_attack",
    "BayesAttackResult",
    "DPNaiveBayesAttacker",
    "run_bayes_attack",
]
