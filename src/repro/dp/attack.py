"""The non-independent-reasoning ratio attack on DP answers (Section 2).

An adversary who knows a target's public values issues two noisy count
queries, ``Q1: NA = t.NA`` and ``Q2: NA = t.NA and SA = sa``, and gauges the
chance that ``t`` has the sensitive value by the ratio ``Y / X`` of the noisy
answers.  Lemma 1 (via a second-order Taylor expansion) gives

    E[Y/X]   ~  (y/x) (1 + V / x^2)
    Var[Y/X] ~  (V / x^2) (1 + y^2 / x^2)

for noises of zero mean and fixed variance ``V``, so the ratio concentrates on
the true confidence ``y/x`` once the true answer ``x`` is large relative to
the noise scale.  For the Laplace mechanism, Corollary 2 reduces this to the
indicator ``2 (b/x)^2`` tabulated in Table 2; ``b/x <= 1/20`` is the paper's
rule of thumb for when a disclosure occurs.  :func:`run_ratio_attack` runs the
empirical attack of Example 1 / Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

import numpy as np

from repro.dataset.table import Table
from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.stats import mean_and_standard_error


# --------------------------------------------------------------------------- #
# Analytical results (Lemma 1, Corollary 2)
# --------------------------------------------------------------------------- #
def expected_ratio(true_x: float, true_y: float, noise_variance: float) -> float:
    """Lemma 1: the approximate mean of ``Y/X``: ``(y/x)(1 + V/x^2)``."""
    _validate_xy(true_x, true_y)
    return (true_y / true_x) * (1.0 + noise_variance / true_x**2)


def ratio_variance(true_x: float, true_y: float, noise_variance: float) -> float:
    """Lemma 1: the approximate variance of ``Y/X``: ``(V/x^2)(1 + y^2/x^2)``."""
    _validate_xy(true_x, true_y)
    return (noise_variance / true_x**2) * (1.0 + true_y**2 / true_x**2)


def ratio_error_indicator(scale: float, true_x: float) -> float:
    """Corollary 2's disclosure indicator ``2 (b/x)^2`` for the Laplace mechanism.

    ``|E[Y/X] - y/x| <= 2 (b/x)^2`` and ``Var[Y/X] <= 4 (b/x)^2``; small values
    mean the noisy ratio is a good estimate of the true confidence.  This is
    exactly the quantity tabulated in the paper's Table 2.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if true_x <= 0:
        raise ValueError("the true answer x must be positive")
    return 2.0 * (scale / true_x) ** 2


def disclosure_occurs(scale: float, true_x: float, threshold: float = 1.0 / 20.0) -> bool:
    """The paper's rule of thumb: a disclosure occurs when ``b/x <= 1/20``."""
    if scale <= 0 or true_x <= 0:
        raise ValueError("scale and true answer must be positive")
    return scale / true_x <= threshold


def _validate_xy(true_x: float, true_y: float) -> None:
    if true_x <= 0:
        raise ValueError("the true answer x must be positive")
    if true_y < 0:
        raise ValueError("the true answer y must be non-negative")
    if true_y > true_x:
        raise ValueError("y cannot exceed x for the nested queries Q1 and Q2")


# --------------------------------------------------------------------------- #
# Empirical attack (Example 1 / Table 1)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RatioAttackResult:
    """Outcome of the empirical ratio attack over several noise trials.

    Attributes mirror the rows of Table 1: the mean and standard error of the
    estimated confidence ``Conf' = Y/X`` and of the two relative query errors.
    """

    true_confidence: float
    true_x: float
    true_y: float
    confidence_mean: float
    confidence_se: float
    error_q1_mean: float
    error_q1_se: float
    error_q2_mean: float
    error_q2_se: float
    trials: int

    @property
    def confidence_gap(self) -> float:
        """``|mean(Conf') - Conf|`` — how well the attack recovers the rule."""
        return abs(self.confidence_mean - self.true_confidence)


def run_ratio_attack(
    table: Table,
    conditions: Mapping[str, str],
    sensitive_value: str,
    mechanism: LaplaceMechanism | GaussianMechanism,
    trials: int = 10,
    rng: int | np.random.Generator | None = None,
) -> RatioAttackResult:
    """Run the two-query ratio attack of Example 1.

    Parameters
    ----------
    table:
        The raw table the DP mechanism protects.
    conditions:
        The target's public values ``t.NA`` (the WHERE clause of Q1).
    sensitive_value:
        The sensitive value ``sa`` whose likelihood the adversary gauges.
    mechanism:
        The noise mechanism answering the queries.
    trials:
        Number of independent noise draws (the paper uses 10).
    rng:
        Seed or generator.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    true_x = float(table.count(dict(conditions)))
    true_y = float(table.count(dict(conditions), sensitive_value))
    if true_x <= 0:
        raise ValueError("the target personal group is empty; the attack is undefined")
    true_confidence = true_y / true_x

    rngs = spawn_rngs(default_rng(rng), trials)
    confidences = []
    errors_q1 = []
    errors_q2 = []
    for trial_rng in rngs:
        noisy_x = float(mechanism.add_noise(true_x, rng=trial_rng))
        noisy_y = float(mechanism.add_noise(true_y, rng=trial_rng))
        confidences.append(noisy_y / noisy_x)
        errors_q1.append(abs(true_x - noisy_x) / true_x)
        errors_q2.append(abs(true_y - noisy_y) / true_y if true_y > 0 else float("nan"))

    confidence_mean, confidence_se = mean_and_standard_error(confidences)
    error_q1_mean, error_q1_se = mean_and_standard_error(errors_q1)
    error_q2_mean, error_q2_se = mean_and_standard_error(errors_q2)
    return RatioAttackResult(
        true_confidence=true_confidence,
        true_x=true_x,
        true_y=true_y,
        confidence_mean=confidence_mean,
        confidence_se=confidence_se,
        error_q1_mean=error_q1_mean,
        error_q1_se=error_q1_se,
        error_q2_mean=error_q2_mean,
        error_q2_se=error_q2_se,
        trials=trials,
    )
