"""Naive-Bayes attack built from differentially private marginal answers.

The introduction cites Cormode (KDD 2011): a Bayes classifier predicting the
sensitive attribute of individuals can be trained using *only* differentially
private query answers, so "population privacy" mechanisms do not prevent
inference about individuals.  This module implements that attack against the
:class:`~repro.dp.queries.PrivateCountQuerier` substrate: the attacker asks
for (a) the noisy SA marginal and (b) noisy joint counts of each
(public value, SA value) pair, normalises them into conditional probabilities,
and predicts each target's SA value from their public profile.

It complements the two-query ratio attack of Section 2: the ratio attack
targets one individual with two queries, the Bayes attack targets everyone at
once with a fixed query budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.dataset.table import Table
from repro.dp.queries import PrivateCountQuerier


@dataclass(frozen=True)
class BayesAttackResult:
    """Outcome of the DP naive-Bayes attack."""

    accuracy: float
    majority_baseline: float
    queries_used: int
    epsilon_spent: float

    @property
    def lift(self) -> float:
        """Accuracy gain over always predicting the majority SA value."""
        return self.accuracy - self.majority_baseline


class DPNaiveBayesAttacker:
    """Train a naive Bayes predictor of SA from noisy DP count answers."""

    def __init__(self, querier: PrivateCountQuerier) -> None:
        self._querier = querier
        self._prior: np.ndarray | None = None
        self._conditionals: list[np.ndarray] | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._prior is not None

    def fit(self) -> "DPNaiveBayesAttacker":
        """Issue the marginal and joint count queries and build the model."""
        table = self._querier.table
        schema = table.schema
        m = schema.sensitive_domain_size

        prior_counts = np.array(
            [
                max(0.5, self._querier.noisy_count({}, schema.sensitive.decode(code)))
                for code in range(m)
            ]
        )
        self._prior = prior_counts / prior_counts.sum()

        conditionals = []
        for attribute in schema.public:
            joint = np.empty((attribute.size, m))
            for value_code, value in enumerate(attribute.values):
                for sa_code in range(m):
                    answer = self._querier.noisy_count(
                        {attribute.name: value}, schema.sensitive.decode(sa_code)
                    )
                    joint[value_code, sa_code] = max(0.5, answer)
            # Normalise each SA column into P(attribute value | sa value).
            conditionals.append(joint / joint.sum(axis=0, keepdims=True))
        self._conditionals = conditionals
        return self

    def predict(self, public_records: Sequence[Sequence[str]]) -> list[str]:
        """Most likely SA value for each record of public values."""
        if not self.is_fitted:
            raise RuntimeError("fit() must be called before predict()")
        schema = self._querier.table.schema
        predictions = []
        for record in public_records:
            if len(record) != len(schema.public):
                raise ValueError("each record must supply a value for every public attribute")
            log_posterior = np.log(self._prior)
            for column, (attribute, value) in enumerate(zip(schema.public, record, strict=True)):
                code = attribute.encode(value)
                log_posterior = log_posterior + np.log(self._conditionals[column][code])
            predictions.append(schema.sensitive.decode(int(np.argmax(log_posterior))))
        return predictions


def run_bayes_attack(table: Table, querier: PrivateCountQuerier) -> BayesAttackResult:
    """Train the attacker from DP answers over ``table`` and score it on ``table``.

    The score is the fraction of records whose sensitive value the attacker
    predicts correctly from public attributes alone — the "personal privacy"
    exposure that remains even though every released answer was differentially
    private.
    """
    if len(table) == 0:
        raise ValueError("cannot attack an empty table")
    attacker = DPNaiveBayesAttacker(querier).fit()
    records = table.records()
    predictions = attacker.predict([record[:-1] for record in records])
    truths = [record[-1] for record in records]
    accuracy = sum(1 for p, t in zip(predictions, truths, strict=True) if p == t) / len(truths)
    majority = float(table.sensitive_frequencies().max())
    return BayesAttackResult(
        accuracy=accuracy,
        majority_baseline=majority,
        queries_used=querier.queries_answered,
        epsilon_spent=querier.epsilon_spent,
    )
