"""repro.serve — the high-concurrency serving front end.

Wraps the anonymization service's routing table
(:class:`~repro.serve.router.ServiceRouter`, shared with the stdlib
threading server) in an asyncio front end with three scale controls:

- :class:`~repro.serve.queue.BoundedDispatcher` — a fixed worker pool fed
  by a bounded queue; overload answers ``429`` + ``Retry-After`` instead
  of stacking threads.
- :class:`~repro.serve.cache.ResponseCache` — a request-level cache for
  audit and dataset reads, keyed on the dataset's store version and
  resolved parameters, invalidated on re-register and delta appends, and
  persisted through the service's storage connector.
- ``repro.obs`` instruments (``repro_serve_request_seconds``,
  ``repro_serve_queue_depth``, ``repro_serve_cache_hits_total``) exported
  by the ``/metrics`` endpoint it serves.

Run it with ``repro-serve`` or embed :class:`ServingFrontend` directly;
``repro-bench run --suite serve`` measures it under concurrent load.
"""

from repro.serve.cache import CachedResponse, ResponseCache
from repro.serve.frontend import ServingFrontend
from repro.serve.queue import BoundedDispatcher, QueueFullError
from repro.serve.router import RouteResult, ServiceRouter

__all__ = [
    "BoundedDispatcher",
    "CachedResponse",
    "QueueFullError",
    "ResponseCache",
    "RouteResult",
    "ServiceRouter",
    "ServingFrontend",
]
