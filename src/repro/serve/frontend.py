"""The asyncio serving front end: bounded concurrency over the service API.

:class:`ServingFrontend` serves the same routing table as the stdlib
threading front end (:mod:`repro.service.http_api`) — both delegate to
:class:`repro.serve.router.ServiceRouter` — but with the scale controls the
threading server lacks:

- **Connection handling is asyncio.**  One event loop owns every socket,
  so ten thousand idle keep-alive connections cost file descriptors, not
  threads.
- **Work is bounded.**  Requests dispatch to a fixed
  :class:`~repro.serve.queue.BoundedDispatcher` worker pool through a
  bounded queue; when the queue is full the request is answered ``429 Too
  Many Requests`` with a ``Retry-After`` header *immediately* — overload
  sheds at the door instead of stacking threads.
- **Reads are cached.**  A :class:`~repro.serve.cache.ResponseCache` is
  attached to the service (unless disabled); cache hits are answered on
  the event loop without ever touching the queue.
- **Everything is measured.**  ``repro_serve_request_seconds`` (per
  endpoint), ``repro_serve_queue_depth`` and the cache/rejection counters
  are exported by the ``/metrics`` endpoint it serves.

``/health``, ``/healthz`` and ``/metrics`` always bypass the queue: a
saturated service still answers probes and scrapes.
"""

from __future__ import annotations

import asyncio
import io
import json
import logging
import threading
import time
from urllib.parse import urlparse

from repro import __version__
from repro.obs.metrics import SERVE_REQUEST_SECONDS
from repro.serve.cache import ResponseCache
from repro.serve.queue import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_RETRY_AFTER,
    DEFAULT_WORKERS,
    BoundedDispatcher,
    QueueFullError,
)
from repro.serve.router import JSON_TYPE, RouteResult, ServiceRouter
from repro.service.engine import AnonymizationService

_log = logging.getLogger("repro.serve")

#: Endpoints answered on the event loop, never queued.
_BYPASS_PATHS = {"/health", "/healthz", "/metrics"}

#: Known first path segments, used as the request-latency histogram label
#: (anything else collapses to "other" so the label stays bounded).
_ENDPOINT_LABELS = {
    "health", "healthz", "metrics", "stats", "datasets", "jobs", "publish", "audit",
}


def _endpoint_label(target: str) -> str:
    parts = [part for part in urlparse(target).path.split("/") if part]
    if not parts:
        return "root"
    return parts[0] if parts[0] in _ENDPOINT_LABELS else "other"


class ServingFrontend:
    """Asyncio HTTP server with a bounded worker pool and response cache.

    Parameters
    ----------
    service:
        The :class:`AnonymizationService` to serve.
    host, port:
        Bind address; ``port=0`` binds an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    workers:
        Worker threads executing requests (the service engine is
        thread-safe; publish jobs fan out further via its process pool).
    queue_limit:
        Bound on *waiting* requests; the ``queue_limit + 1``-th concurrent
        request is rejected with 429.
    retry_after:
        The ``Retry-After`` hint (seconds) sent with 429 responses.
    cache:
        A pre-built :class:`ResponseCache` to attach, or ``None`` to build
        one (persisted through the service's store).
    enable_cache:
        ``False`` serves everything uncached (benchmark baseline mode).
    """

    def __init__(
        self,
        service: AnonymizationService,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        workers: int = DEFAULT_WORKERS,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        retry_after: int = DEFAULT_RETRY_AFTER,
        cache: ResponseCache | None = None,
        enable_cache: bool = True,
        read_timeout: float = 30.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.router = ServiceRouter(service)
        self.dispatcher = BoundedDispatcher(
            workers=workers, queue_limit=queue_limit, retry_after=retry_after
        )
        self._read_timeout = read_timeout
        if enable_cache:
            if cache is not None:
                cache.attach(service)
            elif service.response_cache is None:
                ResponseCache().attach(service)
        elif cache is not None:
            raise ValueError("cache= given but enable_cache is False")
        self._thread: threading.Thread | None = None
        self._thread_error: BaseException | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None

    @property
    def cache(self) -> ResponseCache | None:
        """The response cache attached to the service, if any."""
        return self.service.response_cache

    @property
    def base_url(self) -> str:
        """The server's root URL (valid once started)."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServingFrontend":
        """Run the server in a background thread; returns once it is bound."""
        if self._thread is not None:
            return self
        self._ready.clear()
        self._thread_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serving front end failed to start within 30s")
        if self._thread_error is not None:
            error = self._thread_error
            self._thread = None
            raise RuntimeError(f"serving front end failed to start: {error}")
        return self

    def stop(self) -> None:
        """Stop accepting connections and drain the worker pool (idempotent)."""
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            loop, stop_event = self._loop, self._stop_event
            if stop_event is not None:
                loop.call_soon_threadsafe(stop_event.set)
            self._thread.join(timeout=30)
        self._thread = None
        self._loop = None
        self.dispatcher.shutdown()

    def __enter__(self) -> "ServingFrontend":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        finally:
            self.dispatcher.shutdown()

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced to start()'s caller
            self._thread_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.dispatcher.start()
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._handle_client, self.host, self.port)
        try:
            sockets = server.sockets
            if sockets:
                self.port = int(sockets[0].getsockname()[1])
            _log.info("repro-serve listening on http://%s:%s", self.host, self.port)
            self._ready.set()
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), timeout=self._read_timeout
                    )
                except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                    break
                if request is None:
                    break
                method, target, version, headers, body = request
                if method in ("GET", "POST"):
                    result = await self._respond(method, target, body)
                else:
                    result = RouteResult(
                        status=405,
                        body=json.dumps(
                            {"error": f"method {method} not allowed"}
                        ).encode("utf-8"),
                        close=True,
                    )
                keep_alive = (
                    version != "HTTP/1.0"
                    and headers.get("connection", "").lower() != "close"
                    and not result.close
                )
                self._write_result(writer, result, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, str, dict[str, str], bytes] | None:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        request_line = await reader.readline()
        if not request_line:
            return None
        pieces = request_line.decode("latin-1").split()
        if len(pieces) != 3:
            raise asyncio.IncompleteReadError(request_line, None)
        method, target, version = pieces
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = await reader.readexactly(length) if length > 0 else b""
        return method, target, version, headers, body

    async def _respond(self, method: str, target: str, body: bytes) -> RouteResult:
        start = time.perf_counter()
        try:
            path = urlparse(target).path
            if path in _BYPASS_PATHS:
                # Probes and scrapes stay answerable under full overload.
                return self.router.handle(method, target, io.BytesIO(body), len(body))
            probe = self.router.probe(method, target, body)
            if probe is not None:
                return probe
            try:
                future = self.dispatcher.submit(
                    lambda: self.router.handle(
                        method, target, io.BytesIO(body), len(body), read_cache=False
                    )
                )
            except QueueFullError as exc:
                return self._rejection(exc)
            result = await asyncio.wrap_future(future)
            return result
        finally:
            SERVE_REQUEST_SECONDS.observe(
                time.perf_counter() - start, endpoint=_endpoint_label(target)
            )

    @staticmethod
    def _rejection(exc: QueueFullError) -> RouteResult:
        return RouteResult(
            status=429,
            body=json.dumps({"error": str(exc)}).encode("utf-8"),
            content_type=JSON_TYPE,
            headers=(
                ("Retry-After", str(exc.retry_after)),
                ("Connection", "close"),
            ),
            close=True,
        )

    @staticmethod
    def _write_result(
        writer: asyncio.StreamWriter, result: RouteResult, keep_alive: bool
    ) -> None:
        reason = {200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 429: "Too Many Requests"}.get(
            result.status, "Response"
        )
        lines = [
            f"HTTP/1.1 {result.status} {reason}",
            f"Server: repro-serve/{__version__}",
            f"Content-Type: {result.content_type}",
            f"Content-Length: {result.content_length}",
        ]
        names = {name.lower() for name, _ in result.headers}
        lines.extend(f"{name}: {value}" for name, value in result.headers)
        if not keep_alive and "connection" not in names:
            lines.append("Connection: close")
        head = "\r\n".join(lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + result.body)
