"""``repro-serve``: run the asyncio serving front end from the shell.

The scale-out counterpart of ``repro-service serve``: the same API and
state files, plus the bounded job queue, worker pool and persisted
response cache of :class:`~repro.serve.frontend.ServingFrontend`::

    repro-serve --store state.db --port 8080 --workers 8 --queue-limit 128

Human-facing output (the listen banner, errors) goes to stderr through
stdlib logging; ``--verbose``/``--quiet`` set the level.
"""

from __future__ import annotations

import argparse
import logging
import sys
from collections.abc import Sequence

from repro import __version__
from repro.obs import configure_cli_logging
from repro.serve.frontend import ServingFrontend
from repro.serve.queue import DEFAULT_QUEUE_LIMIT, DEFAULT_RETRY_AFTER, DEFAULT_WORKERS
from repro.service.engine import AnonymizationService
from repro.service.registry import ServiceError

_log = logging.getLogger("repro.serve")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "High-concurrency serving front end for the anonymization service: "
            "asyncio connections, a bounded worker queue (429 + Retry-After on "
            "overload) and a persisted response cache."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    volume = parser.add_mutually_exclusive_group()
    volume.add_argument(
        "--verbose", action="store_true", help="debug-level logging on stderr"
    )
    volume.add_argument(
        "--quiet", action="store_true", help="errors only on stderr"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=(
            "state file: SQLite store (durable default) or legacy *.json "
            "snapshot; datasets, jobs and cached responses persist write-through"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        help=f"request worker threads (default {DEFAULT_WORKERS})",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=DEFAULT_QUEUE_LIMIT,
        help=(
            "max requests waiting for a worker before new ones get 429 "
            f"(default {DEFAULT_QUEUE_LIMIT})"
        ),
    )
    parser.add_argument(
        "--retry-after",
        type=int,
        default=DEFAULT_RETRY_AFTER,
        help=f"Retry-After seconds on 429 responses (default {DEFAULT_RETRY_AFTER})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the response cache (every read recomputes)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_cli_logging(verbose=args.verbose, quiet=args.quiet)
    try:
        service = AnonymizationService(snapshot_path=args.store)
    except ServiceError as exc:
        _log.error("error: %s", exc)
        return 2
    frontend = ServingFrontend(
        service,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        retry_after=args.retry_after,
        enable_cache=not args.no_cache,
    )
    try:
        frontend.serve_forever()
    except ServiceError as exc:
        _log.error("error: %s", exc)
        return 2
    finally:
        if service.snapshot_path is not None:
            # Every mutation was persisted write-through as it happened; this
            # is a final checkpoint (a flush for the JSON backend, a no-op
            # for SQLite) before the store closes.
            path = service.save()
            _log.info("state saved to %s", path)
        service.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
