"""The bounded worker-pool dispatcher behind the serving front end.

A :class:`BoundedDispatcher` runs request handlers on a fixed pool of
worker threads fed by a bounded :class:`queue.Queue`.  When the queue is
full, :meth:`submit` raises :class:`QueueFullError` *immediately* instead
of blocking — the front end turns that into ``429 Too Many Requests`` with
a ``Retry-After`` header, so overload sheds load at the door rather than
piling up threads (the failure mode of the unbounded
``ThreadingHTTPServer`` front end).

Two gauges/counters feed the ``/metrics`` endpoint:
``repro_serve_queue_depth`` tracks requests waiting for a worker and
``repro_serve_queue_rejections_total`` counts requests turned away.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Any, Callable

from repro.obs.metrics import SERVE_QUEUE_DEPTH, SERVE_QUEUE_REJECTIONS

#: Default number of worker threads.
DEFAULT_WORKERS = 4
#: Default bound on queued (not yet running) requests.
DEFAULT_QUEUE_LIMIT = 64
#: Default ``Retry-After`` hint (seconds) sent with 429 responses.
DEFAULT_RETRY_AFTER = 1


class QueueFullError(RuntimeError):
    """The bounded job queue is full; the caller should shed the request."""

    def __init__(self, limit: int, retry_after: int) -> None:
        self.limit = limit
        self.retry_after = retry_after
        super().__init__(
            f"job queue is full ({limit} requests waiting); retry in {retry_after}s"
        )


class BoundedDispatcher:
    """A fixed worker pool with a bounded queue and fail-fast admission."""

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        retry_after: int = DEFAULT_RETRY_AFTER,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        self.workers = workers
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        self._queue: queue.Queue[tuple[Callable[[], Any], Future[Any]] | None] = (
            queue.Queue(maxsize=queue_limit)
        )
        self._threads: list[threading.Thread] = []
        self._started = False
        self._closed = False
        self.rejections = 0
        self.dispatched = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "BoundedDispatcher":
        """Spin up the worker threads (idempotent)."""
        if self._started:
            return self
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self) -> None:
        """Stop accepting work and join the workers (idempotent).

        Already-queued requests are drained and answered before the workers
        exit — shedding happens at admission, never after acceptance.
        """
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
        self._threads.clear()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, fn: Callable[[], Any]) -> Future[Any]:
        """Queue ``fn`` for a worker; the Future resolves with its outcome.

        Raises :class:`QueueFullError` without blocking when the queue is at
        its bound (or the dispatcher is shut down).
        """
        future: Future[Any] = Future()
        if self._closed:
            raise QueueFullError(self.queue_limit, self.retry_after)
        try:
            self._queue.put_nowait((fn, future))
        except queue.Full:
            self.rejections += 1
            SERVE_QUEUE_REJECTIONS.inc()
            raise QueueFullError(self.queue_limit, self.retry_after) from None
        SERVE_QUEUE_DEPTH.set(self._queue.qsize())
        return future

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            SERVE_QUEUE_DEPTH.set(self._queue.qsize())
            if item is None:
                return
            fn, future = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                result = fn()
            except BaseException as exc:
                future.set_exception(exc)
            else:
                self.dispatched += 1
                future.set_result(result)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Requests currently waiting for a worker."""
        return self._queue.qsize()

    def stats_payload(self) -> dict[str, Any]:
        """Counters for ``/stats`` and the bench suite."""
        return {
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "depth": self.depth,
            "dispatched": self.dispatched,
            "rejections": self.rejections,
        }
