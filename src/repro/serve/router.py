"""Transport-agnostic routing for the anonymization service's HTTP API.

:class:`ServiceRouter` is the single routing table behind *both* front ends:
the stdlib ``ThreadingHTTPServer`` handler
(:mod:`repro.service.http_api`) and the asyncio serving front end
(:mod:`repro.serve.frontend`).  A request comes in as
``(method, target, body)`` and goes out as a :class:`RouteResult` — status,
rendered body bytes, content type, extra headers and a connection-close
flag — so the transports only move bytes.

The router is also where the serving layer's
:class:`~repro.serve.cache.ResponseCache` plugs in.  Two read endpoints are
cacheable:

``GET/POST /audit``
    Cached under ``("audit", dataset, resolved spec params)`` — but only
    once the dataset's group index is warm (``group_index_cached`` true in
    the payload).  A warm audit is a pure function of the registered table
    and the resolved parameters (the index-lookup time is exactly ``0.0``),
    so the cached bytes are identical to any fresh warm response.  The
    cold first audit, whose payload carries the real index build time, is
    served but never stored.

``GET /datasets/<name>``
    Cached under ``("dataset", name, {})``.  The entry's group-index
    hit/miss counters are frozen at fill time; the live counters are always
    available uncached via ``/stats``.

Cacheable responses carry an ``X-Cache: hit|miss`` header.  Mutations
invalidate through the service engine (see
``AnonymizationService.attach_response_cache``), and the version-stamped
keys make stale entries unreachable even without the active invalidation.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.obs.environment import record_build_info
from repro.obs.export import render_prometheus
from repro.service.engine import AnonymizationService
from repro.service.parallel import DEFAULT_CHUNK_SIZE
from repro.service.registry import NotFoundError, ServiceError
from repro.serve.cache import CachedResponse, ResponseCache

JSON_TYPE = "application/json"
CSV_TYPE = "text/csv"
METRICS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _as_int(value: Any, name: str) -> int:
    """Coerce a JSON field to int, mapping bad types to a client error."""
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ServiceError(f"{name!r} must be an integer, got {value!r}") from None


def _as_float(value: Any, name: str) -> float:
    """Coerce a JSON field to float, mapping bad types to a client error."""
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ServiceError(f"{name!r} must be a number, got {value!r}") from None


def _workers_field(body: dict[str, Any]) -> Any:
    """The request's worker count: ``workers``, or legacy ``max_workers``."""
    if "workers" in body:
        return body["workers"]
    return body.get("max_workers", 1)


class _LimitedReader(io.RawIOBase):
    """Raw stream exposing at most ``limit`` bytes of an underlying file."""

    def __init__(self, raw: Any, limit: int) -> None:
        self._raw = raw
        self._remaining = max(0, int(limit))

    def readable(self) -> bool:
        return True

    def readinto(self, buffer: Any) -> int:  # type: ignore[override]
        if self._remaining <= 0:
            return 0
        view = memoryview(buffer)[: self._remaining]
        chunk = self._raw.read(len(view))
        if not chunk:
            self._remaining = 0
            return 0
        view[: len(chunk)] = chunk
        self._remaining -= len(chunk)
        return len(chunk)


@dataclass(frozen=True)
class RouteResult:
    """One fully-rendered response, ready for any transport to write out."""

    status: int
    body: bytes
    content_type: str = JSON_TYPE
    headers: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    close: bool = False

    @property
    def content_length(self) -> int:
        return len(self.body)


def _json_result(
    payload: Any,
    status: int = 200,
    headers: tuple[tuple[str, str], ...] = (),
) -> RouteResult:
    return RouteResult(
        status=status,
        body=json.dumps(payload).encode("utf-8"),
        content_type=JSON_TYPE,
        headers=headers,
    )


def _error_result(message: str, status: int) -> RouteResult:
    # An error can fire before the request body was consumed (e.g. a CSV
    # upload rejected on its query parameters); a reused keep-alive
    # connection would then parse the leftover body as the next request
    # line.  Closing the connection keeps the protocol state clean.
    return RouteResult(
        status=status,
        body=json.dumps({"error": message}).encode("utf-8"),
        content_type=JSON_TYPE,
        headers=(("Connection", "close"),),
        close=True,
    )


class ServiceRouter:
    """Routes parsed HTTP requests to an :class:`AnonymizationService`."""

    def __init__(self, service: AnonymizationService) -> None:
        self.service = service

    @property
    def cache(self) -> ResponseCache | None:
        """The response cache attached to the service, if any."""
        return self.service.response_cache

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def handle(
        self,
        method: str,
        target: str,
        body: IO[bytes] | None = None,
        content_length: int = 0,
        read_cache: bool = True,
    ) -> RouteResult:
        """Route one request; every outcome (including errors) is a result.

        ``body`` is a binary stream holding the request body;
        ``content_length`` bounds how much of it belongs to this request
        (the threading front end hands the socket file straight in, so CSV
        uploads stream instead of buffering).  A front end that already ran
        :meth:`probe` passes ``read_cache=False`` so the miss it counted is
        not counted twice; cache *fills* still happen.
        """
        url = urlparse(target)
        parts = [part for part in url.path.split("/") if part]
        query = {key: values[-1] for key, values in parse_qs(url.query).items()}
        try:
            result = self._route(method, parts, query, body, content_length, read_cache)
        except NotFoundError as exc:
            return _error_result(str(exc), 404)
        except ServiceError as exc:
            return _error_result(str(exc), 400)
        except ValueError as exc:
            return _error_result(str(exc), 400)
        if result is None:
            return _error_result(f"no route for {method} {url.path}", 404)
        return result

    def probe(self, method: str, target: str, body: bytes = b"") -> RouteResult | None:
        """A cached response for this request, or ``None``.

        Front ends call this before queueing: a hit is served straight from
        memory without consuming a worker slot.  Any request that is not
        cacheable — or whose parameters fail to resolve — returns ``None``
        and takes the full :meth:`handle` path (where the same bad input
        produces its proper error response).
        """
        cache = self.cache
        if cache is None or not cache.enabled:
            return None
        url = urlparse(target)
        parts = [part for part in url.path.split("/") if part]
        try:
            if method == "GET" and parts == ["audit"]:
                query = {k: v[-1] for k, v in parse_qs(url.query).items()}
                dataset, params = _audit_params(query)
            elif method == "POST" and parts == ["audit"]:
                dataset, params = _audit_params(_parse_json_bytes(body))
            elif method == "GET" and len(parts) == 2 and parts[0] == "datasets":
                dataset, params = parts[1], {}
            else:
                return None
        except ServiceError:
            return None
        kind = "audit" if parts == ["audit"] else "dataset"
        entry = cache.get(cache.key(kind, dataset, params))
        if entry is None:
            return None
        return RouteResult(
            status=entry.status,
            body=entry.body,
            content_type=entry.content_type,
            headers=(("X-Cache", "hit"),),
        )

    # ------------------------------------------------------------------ #
    # Routing table
    # ------------------------------------------------------------------ #
    def _route(
        self,
        method: str,
        parts: list[str],
        query: dict[str, str],
        body: IO[bytes] | None,
        content_length: int,
        read_cache: bool,
    ) -> RouteResult | None:
        if method == "GET":
            if not parts:
                return _json_result(self.service.describe())
            if parts in (["health"], ["healthz"]):
                return _json_result({"status": "ok", "version": __version__})
            if parts == ["stats"]:
                return _json_result(self.service.stats())
            if parts == ["metrics"]:
                return self._metrics()
            if parts == ["datasets"]:
                return _json_result(
                    [entry.to_json() for entry in self.service.datasets.entries()]
                )
            if len(parts) == 2 and parts[0] == "datasets":
                return self._dataset_detail(parts[1], read_cache)
            if parts == ["jobs"]:
                return _json_result(
                    [record.to_json() for record in self.service.jobs.records()]
                )
            if len(parts) == 2 and parts[0] == "jobs":
                return _json_result(self.service.job(parts[1]).to_json())
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "table.csv":
                return self._published_csv(parts[1])
            if parts == ["audit"]:
                return self._audit(query, read_cache)
            return None
        if method == "POST":
            if parts == ["datasets"]:
                return self._register(query, body, content_length)
            if len(parts) == 3 and parts[0] == "datasets" and parts[2] == "rows":
                return self._append_rows(
                    parts[1], _read_json_body(body, content_length)
                )
            if parts == ["publish"]:
                return self._publish(_read_json_body(body, content_length))
            if parts == ["audit"]:
                return self._audit(_read_json_body(body, content_length), read_cache)
            return None
        return None

    # ------------------------------------------------------------------ #
    # Endpoint bodies
    # ------------------------------------------------------------------ #
    def _register(
        self, query: dict[str, str], body: IO[bytes] | None, content_length: int
    ) -> RouteResult:
        name = query.get("name")
        sensitive = query.get("sensitive")
        if not name or not sensitive:
            raise ServiceError(
                "POST /datasets requires ?name= and ?sensitive= query parameters "
                "and a CSV request body"
            )
        replace = query.get("replace", "").lower() in {"1", "true", "yes"}
        if body is None or content_length <= 0:
            raise ServiceError("POST /datasets requires a non-empty CSV body")
        stream = io.TextIOWrapper(
            io.BufferedReader(_LimitedReader(body, content_length)),
            encoding="utf-8",
            newline="",
        )
        entry = self.service.register_csv(name, stream, sensitive, replace=replace)
        return _json_result(entry.to_json(), status=201)

    def _append_rows(self, name: str, body: dict[str, Any]) -> RouteResult:
        rows = body.get("rows")
        source = body.get("source")
        if rows is not None:
            if not isinstance(rows, list) or not all(
                isinstance(row, list) and all(isinstance(v, str) for v in row)
                for row in rows
            ):
                raise ServiceError(
                    "'rows' must be a list of rows (lists of strings) in the "
                    "dataset's header column order"
                )
        record = self.service.append_rows(
            name,
            rows=rows,
            source=str(source) if source is not None else None,
            workers=_as_int(_workers_field(body), "workers"),
        )
        return _json_result(record.to_json(), status=201)

    def _publish(self, body: dict[str, Any]) -> RouteResult:
        backend = body.get("backend")
        params = body.get("params") or {}
        if not isinstance(params, dict):
            raise ServiceError("'params' must be a JSON object")
        if body.get("delta"):
            # Delta base publish: like a stream job, but the service keeps
            # the resulting DeltaState so POST /datasets/<name>/rows can
            # splice appends into the published CSV incrementally.
            name = body.get("name")
            source = body.get("source")
            sensitive = body.get("sensitive")
            output = body.get("output")
            if not name or not source or not sensitive or not backend or not output:
                raise ServiceError(
                    "delta publish requires 'name', 'source', 'sensitive', "
                    "'backend' and 'output' fields"
                )
            chunk_rows = body.get("chunk_rows")
            record = self.service.publish_delta_base(
                name=str(name),
                source=str(source),
                sensitive=str(sensitive),
                backend=str(backend),
                output=str(output),
                params=params,
                seed=_as_int(body.get("seed", 0), "seed"),
                chunk_size=_as_int(body.get("chunk_size", DEFAULT_CHUNK_SIZE), "chunk_size"),
                chunk_rows=_as_int(chunk_rows, "chunk_rows") if chunk_rows is not None else None,
                workers=_as_int(_workers_field(body), "workers"),
                replace=bool(body.get("replace", False)),
            )
            return _json_result(record.to_json(), status=201)
        if body.get("stream"):
            # Out-of-core job mode: publish straight from a server-side CSV
            # path in bounded-memory chunks; GET /jobs/<id> shows progress
            # while the job runs.  Paths resolve on the server with the
            # service's privileges (same trust level as the CLI); at least
            # refuse to clobber existing files so a client cannot truncate
            # an arbitrary path by naming it as 'output'.
            source = body.get("source")
            sensitive = body.get("sensitive")
            if not source or not sensitive or not backend:
                raise ServiceError(
                    "stream publish requires 'source', 'sensitive' and 'backend' fields"
                )
            output = body.get("output")
            if output and Path(output).exists():
                raise ServiceError(
                    f"output path {str(output)!r} already exists on the server; "
                    "stream jobs only write new files"
                )
            chunk_rows = body.get("chunk_rows")
            record = self.service.publish_stream(
                source=str(source),
                sensitive=str(sensitive),
                backend=str(backend),
                params=params,
                seed=_as_int(body.get("seed", 0), "seed"),
                chunk_size=_as_int(body.get("chunk_size", DEFAULT_CHUNK_SIZE), "chunk_size"),
                chunk_rows=_as_int(chunk_rows, "chunk_rows") if chunk_rows is not None else None,
                workers=_as_int(_workers_field(body), "workers"),
                output=output,
            )
            return _json_result(record.to_json(), status=201)
        dataset = body.get("dataset")
        if not dataset or not backend:
            raise ServiceError("POST /publish requires 'dataset' and 'backend' fields")
        record = self.service.publish(
            dataset=str(dataset),
            backend=str(backend),
            params=params,
            seed=_as_int(body.get("seed", 0), "seed"),
            chunk_size=_as_int(body.get("chunk_size", DEFAULT_CHUNK_SIZE), "chunk_size"),
            max_workers=_as_int(_workers_field(body), "workers"),
        )
        return _json_result(record.to_json(), status=201)

    def _audit(self, args: dict[str, Any], read_cache: bool = True) -> RouteResult:
        dataset, params = _audit_params(args)
        cache = self.cache
        key = cache.key("audit", dataset, params) if cache is not None else None
        if cache is not None and key is not None and read_cache:
            hit = cache.get(key)
            if hit is not None:
                return RouteResult(
                    status=hit.status,
                    body=hit.body,
                    content_type=hit.content_type,
                    headers=(("X-Cache", "hit"),),
                )
        payload = self.service.audit(dataset=dataset, **params)
        result = _json_result(payload)
        if cache is None or key is None:
            return result
        if payload.get("group_index_cached"):
            # A warm audit is deterministic (index lookup time is exactly
            # 0.0), so the stored bytes equal any fresh warm response.  The
            # cold first audit carries the real build time and is never
            # stored — a later hit could not reproduce it byte-for-byte.
            cache.put(
                key,
                CachedResponse(
                    dataset=dataset,
                    status=result.status,
                    content_type=result.content_type,
                    body=result.body,
                ),
            )
        return RouteResult(
            status=result.status,
            body=result.body,
            content_type=result.content_type,
            headers=(("X-Cache", "miss"),),
        )

    def _dataset_detail(self, name: str, read_cache: bool = True) -> RouteResult:
        cache = self.cache
        key = cache.key("dataset", name, {}) if cache is not None else None
        if cache is not None and key is not None and read_cache:
            hit = cache.get(key)
            if hit is not None:
                return RouteResult(
                    status=hit.status,
                    body=hit.body,
                    content_type=hit.content_type,
                    headers=(("X-Cache", "hit"),),
                )
        payload = self.service.datasets.get(name).to_json()
        result = _json_result(payload)
        if cache is None or key is None:
            return result
        cache.put(
            key,
            CachedResponse(
                dataset=name,
                status=result.status,
                content_type=result.content_type,
                body=result.body,
            ),
        )
        return RouteResult(
            status=result.status,
            body=result.body,
            content_type=result.content_type,
            headers=(("X-Cache", "miss"),),
        )

    def _metrics(self) -> RouteResult:
        """Render the process metrics registry as Prometheus text exposition."""
        # Refresh the info gauge on every scrape: cheap, and it guarantees
        # the environment labels are present even on a cold process.
        record_build_info()
        return RouteResult(
            status=200,
            body=render_prometheus().encode("utf-8"),
            content_type=METRICS_TYPE,
        )

    def _published_csv(self, job_id: str) -> RouteResult:
        table = self.service.published_table(job_id)
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(list(table.schema.public_names) + [table.schema.sensitive_name])
        writer.writerows(table.records())
        return RouteResult(
            status=200,
            body=buffer.getvalue().encode("utf-8"),
            content_type=CSV_TYPE,
        )


# ---------------------------------------------------------------------- #
# Shared request parsing
# ---------------------------------------------------------------------- #
def _audit_params(args: dict[str, Any]) -> tuple[str, dict[str, float]]:
    """Resolve an audit request's arguments to ``(dataset, spec params)``.

    The resolved params are the cache key's parameter slot: defaults applied,
    the legacy ``p`` alias folded in, every value coerced to float — so
    ``?lam=0.3`` and an omitted ``lam`` key the same response.
    """
    dataset = args.get("dataset")
    if not dataset:
        raise ServiceError("audit requires a 'dataset' argument")
    return str(dataset), {
        "lam": _as_float(args.get("lam", 0.3), "lam"),
        "delta": _as_float(args.get("delta", 0.3), "delta"),
        "retention_probability": _as_float(
            args.get("retention_probability", args.get("p", 0.5)),
            "retention_probability",
        ),
    }


def _parse_json_bytes(raw: bytes) -> dict[str, Any]:
    """Decode a JSON object body, mapping bad input to a client error."""
    if not raw:
        return {}
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ServiceError("request body must be a JSON object")
    return data


def _read_json_body(body: IO[bytes] | None, content_length: int) -> dict[str, Any]:
    """Read and decode a JSON object body from a bounded stream."""
    if body is None or content_length <= 0:
        return {}
    return _parse_json_bytes(body.read(content_length))
