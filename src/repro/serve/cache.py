"""The request-level response cache behind the serving front end.

A :class:`ResponseCache` stores fully-rendered HTTP response bodies for the
read endpoints whose output is a pure function of *what is registered* —
audits and dataset reads — keyed on::

    (kind, dataset, resolved params, dataset version)

``kind`` plays the strategy slot of the key: it names which read produced
the response (``audit`` or ``dataset``).  The **dataset version** is the
storage connector's own optimistic document version for the dataset — the
version of its ``datasets`` document paired with the version of its
``deltas`` document — so a re-register (which bumps the ``datasets``
version) or a delta append (which bumps the ``deltas`` version) makes every
old key unreachable by construction.  On top of that versioned keying,
:meth:`invalidate` actively drops the affected entries the moment the
service mutates a dataset, so the cache never holds more than one version
of any response.

Entries persist write-through into the owning service's
:class:`~repro.store.base.StorageConnector` under the
:data:`~repro.store.base.NS_RESPONSE_CACHE` namespace: a restarted service
resumes with its hot responses intact.  At load time every persisted entry
is **revalidated** against the dataset versions currently in the store —
an entry cached before a re-register that happened while the service was
down is dropped, never served.

The cache is attached to a service with :meth:`attach` (or implicitly by
:class:`repro.serve.frontend.ServingFrontend`); attaching registers the
invalidation hook and folds the hit/miss/invalidation counters into
``AnonymizationService.stats()`` under the ``response_cache`` key.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import SERVE_CACHE_HITS, SERVE_CACHE_INVALIDATIONS
from repro.store.base import (
    NS_DATASETS,
    NS_DELTAS,
    NS_RESPONSE_CACHE,
    StorageConnector,
    StoreError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.engine import AnonymizationService

#: Default cap on resident (and persisted) entries; oldest-first eviction.
DEFAULT_MAX_ENTRIES = 256


@dataclass(frozen=True)
class CachedResponse:
    """One fully-rendered cacheable response."""

    dataset: str
    status: int
    content_type: str
    body: bytes

    def to_json(self) -> dict[str, Any]:
        """Store-persistable form (bodies are UTF-8 JSON text)."""
        return {
            "dataset": self.dataset,
            "status": self.status,
            "content_type": self.content_type,
            "body": self.body.decode("utf-8"),
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "CachedResponse":
        return cls(
            dataset=str(payload["dataset"]),
            status=int(payload["status"]),
            content_type=str(payload["content_type"]),
            body=str(payload["body"]).encode("utf-8"),
        )


class ResponseCache:
    """Versioned, persisted response cache for the serving front end."""

    def __init__(
        self,
        store: StorageConnector | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        persist: bool = True,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._lock = threading.Lock()
        self._store = store
        self._persist = persist
        self._max_entries = max_entries
        self._entries: OrderedDict[str, CachedResponse] = OrderedDict()
        self._versions: dict[str, tuple[int, int]] = {}
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # Attachment and version tracking
    # ------------------------------------------------------------------ #
    def attach(self, service: "AnonymizationService") -> "ResponseCache":
        """Bind the cache to ``service``: share its store, load persisted
        entries (revalidated against current dataset versions), and register
        the invalidation hook for re-registers and delta appends."""
        if self._store is None:
            self._store = service.store
        self._load_versions()
        self._load_persisted()
        service.attach_response_cache(self)
        return self

    def _version_of(self, name: str) -> tuple[int, int]:
        """Read ``name``'s (datasets, deltas) document versions from the store."""
        assert self._store is not None
        dataset = self._store.get(NS_DATASETS, name)
        delta = self._store.get(NS_DELTAS, name)
        return (
            dataset.version if dataset is not None else 0,
            delta.version if delta is not None else 0,
        )

    def _load_versions(self) -> None:
        assert self._store is not None
        names = set(self._store.keys(NS_DATASETS)) | set(self._store.keys(NS_DELTAS))
        with self._lock:
            self._versions = {name: self._version_of(name) for name in names}

    def _load_persisted(self) -> None:
        """Adopt persisted entries whose dataset version is still current."""
        assert self._store is not None
        if not self._persist:
            return
        stale: list[str] = []
        with self._lock:
            for key, stored in self._store.items(NS_RESPONSE_CACHE):
                try:
                    entry = CachedResponse.from_json(stored.value)
                except (KeyError, TypeError, ValueError):
                    stale.append(key)
                    continue
                current = self._versions.get(entry.dataset, (0, 0))
                if self._key_versions(key) != current:
                    stale.append(key)
                    continue
                self._entries[key] = entry
        for key in stale:
            self._delete_persisted(key)

    @staticmethod
    def _key_versions(key: str) -> tuple[int, int]:
        """The ``(datasets, deltas)`` version pair baked into a cache key."""
        try:
            _, _, version, _ = key.split("|", 3)
            ds, _, delta = version.partition(".")
            return (int(ds.lstrip("v")), int(delta))
        except ValueError:
            return (-1, -1)

    # ------------------------------------------------------------------ #
    # Keying
    # ------------------------------------------------------------------ #
    def key(self, kind: str, dataset: str, params: dict[str, Any]) -> str:
        """The canonical key of one cacheable response.

        ``v<datasets>.<deltas>`` is the dataset-version pair at key time, so
        keys built after a mutation can never collide with entries cached
        before it.
        """
        with self._lock:
            ds_version, delta_version = self._versions.get(dataset, (0, 0))
        resolved = json.dumps(params, sort_keys=True, separators=(",", ":"))
        return f"{kind}|{dataset}|v{ds_version}.{delta_version}|{resolved}"

    # ------------------------------------------------------------------ #
    # Lookup / fill / invalidation
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> CachedResponse | None:
        """The cached response under ``key``, counting the hit or miss."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
        SERVE_CACHE_HITS.inc(result="hit" if entry is not None else "miss")
        return entry

    def put(self, key: str, entry: CachedResponse) -> None:
        """Cache ``entry`` under ``key``; evicts oldest-first past the cap."""
        if not self.enabled:
            return
        evicted: list[str] = []
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                old_key, _ = self._entries.popitem(last=False)
                evicted.append(old_key)
                self.evictions += 1
        self._persist_entry(key, entry)
        for old_key in evicted:
            self._delete_persisted(old_key)

    def invalidate(self, dataset: str) -> int:
        """Drop every entry of ``dataset`` and refresh its version.

        Called by the service whenever a dataset is (re-)registered, created
        as a delta base, or receives appended rows.  Only keys of that
        dataset are touched — entries for other datasets survive untouched.
        Returns the number of entries dropped.
        """
        dropped: list[str] = []
        with self._lock:
            if self._store is not None:
                self._versions[dataset] = self._version_of(dataset)
            else:
                ds, delta = self._versions.get(dataset, (0, 0))
                self._versions[dataset] = (ds + 1, delta)
            dropped = [
                key for key, entry in self._entries.items() if entry.dataset == dataset
            ]
            for key in dropped:
                del self._entries[key]
            self.invalidations += len(dropped)
        for key in dropped:
            self._delete_persisted(key)
        SERVE_CACHE_INVALIDATIONS.inc(len(dropped))
        return len(dropped)

    def clear(self) -> None:
        """Drop every entry (persisted ones included); counters survive."""
        with self._lock:
            keys = list(self._entries)
            self._entries.clear()
        for key in keys:
            self._delete_persisted(key)

    # ------------------------------------------------------------------ #
    # Persistence plumbing
    # ------------------------------------------------------------------ #
    def _persist_entry(self, key: str, entry: CachedResponse) -> None:
        if not self._persist or self._store is None:
            return
        try:
            self._store.put(NS_RESPONSE_CACHE, key, entry.to_json())
        except StoreError:
            # Cache persistence is an optimisation; a store hiccup must
            # never fail the request that produced the response.
            pass

    def _delete_persisted(self, key: str) -> None:
        if not self._persist or self._store is None:
            return
        try:
            self._store.delete(NS_RESPONSE_CACHE, key)
        except StoreError:
            pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_payload(self) -> dict[str, Any]:
        """The counter block ``AnonymizationService.stats()`` folds in."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "persisted": self._persist and self._store is not None,
            }
