"""Graph-based merging of public-attribute values with the same SA impact.

For one public attribute ``A_i``: build a graph whose vertices are the domain
values of ``A_i`` and connect two values whenever the chi-square test of
Equation (4) fails to show that their conditional SA distributions differ.
Every connected component is merged into one generalised value (Section 3.4).
Values that never occur in the data carry no evidence and are merged into a
single "unobserved" component.

:func:`generalize_table` applies the procedure to every public attribute and
re-encodes the table over the generalised domains; the result also carries the
value mapping so queries phrased over original values can be translated
(Section 6.1 evaluates queries on aggregated values this way).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.generalization.chi_square import DEFAULT_SIGNIFICANCE, same_distribution


@dataclass(frozen=True)
class AttributeMerge:
    """The merge outcome for one public attribute.

    Attributes
    ----------
    original:
        The attribute before merging.
    generalized:
        The attribute after merging (its values are the generalised labels).
    value_map:
        Maps each original value to its generalised value.
    components:
        The groups of original values that were merged together, in the order
        of the generalised attribute's domain.
    """

    original: Attribute
    generalized: Attribute
    value_map: dict[str, str]
    components: tuple[tuple[str, ...], ...]

    @property
    def original_domain_size(self) -> int:
        """Domain size before merging."""
        return self.original.size

    @property
    def generalized_domain_size(self) -> int:
        """Domain size after merging."""
        return self.generalized.size

    def code_map(self) -> np.ndarray:
        """Array mapping original value codes to generalised value codes."""
        return np.array(
            [self.generalized.encode(self.value_map[value]) for value in self.original.values],
            dtype=np.int64,
        )


@dataclass(frozen=True)
class GeneralizationResult:
    """A generalised table plus the per-attribute merge decisions."""

    table: Table
    merges: tuple[AttributeMerge, ...]

    def merge_for(self, attribute_name: str) -> AttributeMerge:
        """Return the merge record for the named public attribute."""
        for merge in self.merges:
            if merge.original.name == attribute_name:
                return merge
        raise KeyError(f"no merge recorded for attribute {attribute_name!r}")

    def translate_conditions(self, conditions: dict[str, str]) -> dict[str, str]:
        """Translate original NA values in query conditions to generalised values."""
        translated = {}
        for name, value in conditions.items():
            merge = self.merge_for(name)
            translated[name] = merge.value_map[str(value)]
        return translated


def _conditional_counts(table: Table, column: int) -> dict[int, np.ndarray]:
    """SA count vectors conditioned on each observed value of public column ``column``."""
    m = table.schema.sensitive_domain_size
    values = table.public_codes[:, column]
    sensitive = table.sensitive_codes
    counts: dict[int, np.ndarray] = {}
    for value in np.unique(values):
        mask = values == value
        counts[int(value)] = np.bincount(sensitive[mask], minlength=m).astype(np.int64)
    return counts


def _component_label(component_values: tuple[str, ...]) -> str:
    """Human-readable label for a merged component."""
    if len(component_values) == 1:
        return component_values[0]
    return "|".join(component_values)


def merge_attribute_from_counts(
    attribute: Attribute,
    conditional: dict[int, np.ndarray],
    sensitive_domain_size: int,
    significance: float = DEFAULT_SIGNIFICANCE,
) -> AttributeMerge:
    """Decide the value merging for one public attribute from its SA counts.

    ``conditional`` maps each *observed* value code of ``attribute`` to its SA
    count vector (length ``sensitive_domain_size``) — exactly what
    :func:`merge_attribute_values` derives from a materialised table.  The
    out-of-core streaming engine calls this directly with counts accumulated
    chunk by chunk, so the merge decisions (and therefore the generalised
    schema) are byte-identical to the in-memory path without ever holding the
    full table.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(attribute.size))
    observed = sorted(conditional)
    unobserved = [code for code in range(attribute.size) if code not in conditional]
    # Values that never occur cannot be distinguished by the data: merge them
    # together (and, if everything is unobserved, they form one component).
    for first, second in zip(unobserved, unobserved[1:], strict=False):
        graph.add_edge(first, second)
    for i, code_a in enumerate(observed):
        for code_b in observed[i + 1 :]:
            if same_distribution(
                conditional[code_a],
                conditional[code_b],
                significance=significance,
                degrees_of_freedom=sensitive_domain_size,
            ):
                graph.add_edge(code_a, code_b)

    components = []
    for component in nx.connected_components(graph):
        values = tuple(attribute.values[code] for code in sorted(component))
        components.append((min(component), values))
    components.sort(key=lambda item: item[0])
    component_values = tuple(values for _, values in components)

    labels = tuple(_component_label(values) for values in component_values)
    generalized = Attribute(attribute.name, labels)
    value_map: dict[str, str] = {}
    for label, values in zip(labels, component_values, strict=True):
        for value in values:
            value_map[value] = label
    return AttributeMerge(
        original=attribute,
        generalized=generalized,
        value_map=value_map,
        components=component_values,
    )


def merge_attribute_values(
    table: Table,
    attribute_name: str,
    significance: float = DEFAULT_SIGNIFICANCE,
) -> AttributeMerge:
    """Decide the value merging for one public attribute of ``table``."""
    schema = table.schema
    column = schema.public_index(attribute_name)
    return merge_attribute_from_counts(
        schema.public_attribute(attribute_name),
        _conditional_counts(table, column),
        schema.sensitive_domain_size,
        significance=significance,
    )


def generalize_table(
    table: Table,
    significance: float = DEFAULT_SIGNIFICANCE,
) -> GeneralizationResult:
    """Generalise every public attribute of ``table`` and re-encode it.

    The sensitive attribute is never modified.  Returns the re-encoded table
    together with the merge decisions, so the caller can translate queries and
    report the domain-size impact (Tables 4 and 5).
    """
    merges = tuple(
        merge_attribute_values(table, name, significance=significance)
        for name in table.schema.public_names
    )
    new_schema = Schema(
        public=tuple(merge.generalized for merge in merges),
        sensitive=table.schema.sensitive,
    )
    codes = table.codes.copy()
    for column, merge in enumerate(merges):
        codes[:, column] = merge.code_map()[codes[:, column]]
    new_table = Table(new_schema, codes)
    return GeneralizationResult(table=new_table, merges=merges)
