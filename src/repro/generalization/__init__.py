"""Chi-square based generalisation of public-attribute values (Section 3.4).

Before personal groups are formed, each public attribute's values that have
the *same impact* on the sensitive attribute are merged into a single
generalised value.  Two values are considered indistinguishable when the
chi-square test for two binned distributions with unequal sample sizes
(Equation 4) cannot reject, at 5 % significance, the hypothesis that their SA
distributions come from the same population.  Indistinguishable values are
connected in a graph and every connected component becomes one generalised
value.
"""

from repro.generalization.chi_square import chi_square_statistic, chi_square_threshold, same_distribution
from repro.generalization.merging import (
    AttributeMerge,
    GeneralizationResult,
    generalize_table,
    merge_attribute_values,
)

__all__ = [
    "chi_square_statistic",
    "chi_square_threshold",
    "same_distribution",
    "AttributeMerge",
    "GeneralizationResult",
    "generalize_table",
    "merge_attribute_values",
]
