"""Chi-square test for two binned distributions with unequal counts.

Equation (4) of the paper (following Numerical Recipes, section "Are Two
Distributions Different?"):

    chi2 = sum_j ( sqrt(|O'|/|O|) o_j - sqrt(|O|/|O'|) o'_j )^2 / (o_j + o'_j)

with the degrees of freedom equal to the number of SA values ``m`` and the
conventional 5 % significance level.  Bins where both counts are zero carry no
information and are skipped (they would otherwise be 0/0).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

#: The significance level used throughout the paper.
DEFAULT_SIGNIFICANCE = 0.05


def chi_square_statistic(counts_a: np.ndarray, counts_b: np.ndarray) -> float:
    """The unequal-size two-sample chi-square statistic of Equation (4)."""
    a = np.asarray(counts_a, dtype=float)
    b = np.asarray(counts_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("both count vectors must be one-dimensional and of equal length")
    if (a < 0).any() or (b < 0).any():
        raise ValueError("counts must be non-negative")
    total_a = a.sum()
    total_b = b.sum()
    if total_a == 0 or total_b == 0:
        raise ValueError("both samples must contain at least one record")
    ratio_ab = math.sqrt(total_b / total_a)
    ratio_ba = math.sqrt(total_a / total_b)
    numerator = (ratio_ab * a - ratio_ba * b) ** 2
    denominator = a + b
    mask = denominator > 0
    return float((numerator[mask] / denominator[mask]).sum())


def chi_square_threshold(degrees_of_freedom: int, significance: float = DEFAULT_SIGNIFICANCE) -> float:
    """The critical chi-square value at ``significance`` for ``degrees_of_freedom``.

    The paper sets the degrees of freedom to ``m`` (the SA domain size), the
    convention for two binned data sets whose totals are not constrained to be
    equal.
    """
    if degrees_of_freedom <= 0:
        raise ValueError("degrees_of_freedom must be positive")
    if not 0.0 < significance < 1.0:
        raise ValueError("significance must lie strictly between 0 and 1")
    return float(stats.chi2.ppf(1.0 - significance, df=degrees_of_freedom))


def same_distribution(
    counts_a: np.ndarray,
    counts_b: np.ndarray,
    significance: float = DEFAULT_SIGNIFICANCE,
    degrees_of_freedom: int | None = None,
) -> bool:
    """Whether the test *fails to reject* that the two samples share a distribution.

    Returns ``True`` when the computed statistic does not exceed the critical
    value, i.e. the two attribute values are considered to have the same
    impact on SA and should be merged.
    """
    a = np.asarray(counts_a, dtype=float)
    dof = degrees_of_freedom if degrees_of_freedom is not None else a.shape[0]
    statistic = chi_square_statistic(counts_a, counts_b)
    return statistic <= chi_square_threshold(dof, significance)
