"""Command-line runner for the whole experiment suite.

Usage (installed console script)::

    repro-experiments --all
    repro-experiments table1 table2 figure1
    repro-experiments --scale quick figures2-3
    repro-experiments --scale paper --all     # full paper-size runs (slow)

Each experiment prints a plain-text table or series shaped like the paper's
corresponding table or figure.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro import __version__
from repro.experiments.aggregation import run_aggregation_impact
from repro.experiments.config import ExperimentConfig
from repro.experiments.error_sweep import run_error_sweep
from repro.experiments.figure1 import run_figure1
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.violation_sweep import run_violation_sweep
from repro.utils.textplot import render_listing

#: Experiment name → one-line description (also the ``--list`` output).
EXPERIMENT_DESCRIPTIONS = {
    "table1": "disclosure of the ADULT rule through two Laplace-noisy counts",
    "table2": "the 2 (b/x)^2 disclosure-indicator grid",
    "tables4-5": "impact of chi-square NA aggregation on ADULT and CENSUS",
    "figure1": "the maximum group size s_g versus the maximum frequency f",
    "figures2-4": "violation rates under plain UP on ADULT and CENSUS",
    "figures3-5": "relative-error cost of SPS versus plain UP on ADULT and CENSUS",
}

#: Experiment names accepted on the command line.
EXPERIMENTS = tuple(EXPERIMENT_DESCRIPTIONS)


def _config_for(scale: str) -> ExperimentConfig:
    if scale == "paper":
        return ExperimentConfig.paper_scale()
    if scale == "quick":
        return ExperimentConfig.quick()
    if scale == "default":
        return ExperimentConfig()
    raise ValueError(f"unknown scale {scale!r}")


def run_experiment(name: str, config: ExperimentConfig) -> str:
    """Run one named experiment and return its plain-text report."""
    if name == "table1":
        return run_table1(config).render()
    if name == "table2":
        return run_table2().render()
    if name == "tables4-5":
        impacts = run_aggregation_impact(config)
        return "\n\n".join(impact.render() for impact in impacts.values())
    if name == "figure1":
        panels = run_figure1()
        return "\n\n".join(panel.render() for panel in panels.values())
    if name == "figures2-4":
        sweeps = run_violation_sweep(config)
        blocks = []
        for dataset in sweeps.values():
            blocks.extend(sweep.render() for sweep in dataset.values())
        return "\n\n".join(blocks)
    if name == "figures3-5":
        sweeps = run_error_sweep(config)
        blocks = []
        for dataset in sweeps.values():
            blocks.extend(sweep.render() for sweep in dataset.values())
        return "\n\n".join(blocks)
    raise ValueError(f"unknown experiment {name!r}; choose from {EXPERIMENTS}")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-experiments`` console script."""
    parser = argparse.ArgumentParser(prog="repro-experiments", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument("experiments", nargs="*", choices=[*EXPERIMENTS, []], help="experiments to run")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list the available experiments and exit",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "default", "paper"),
        default="default",
        help="data-size / run-count preset (paper = full sizes from the paper, slow)",
    )
    args = parser.parse_args(argv)

    if args.list_experiments:
        sys.stdout.write(
            render_listing(
                EXPERIMENT_DESCRIPTIONS, title="experiments (repro-experiments NAME ...)"
            )
            + "\n"
        )
        return 0

    names = list(EXPERIMENTS) if args.all or not args.experiments else list(args.experiments)
    config = _config_for(args.scale)
    for name in names:
        sys.stdout.write(run_experiment(name, config) + "\n\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
