"""Shared experiment configuration (the paper's Table 6 parameter settings)."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default retention probability (boldface in Table 6).
DEFAULT_RETENTION = 0.5
#: Default lambda (boldface in Table 6).
DEFAULT_LAMBDA = 0.3
#: Default delta (boldface in Table 6).
DEFAULT_DELTA = 0.3

#: The parameter sweeps of Table 6.
PARAMETER_SWEEP = {
    "p": (0.1, 0.3, 0.5, 0.7, 0.9),
    "lambda": (0.1, 0.2, 0.3, 0.4, 0.5),
    "delta": (0.1, 0.2, 0.3, 0.4, 0.5),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the data-driven experiments.

    The defaults reproduce the paper's settings scaled down where noted so
    that the whole suite runs in minutes on a laptop; pass ``paper_scale=True``
    factories (see :meth:`paper_scale`) to use the full sizes.
    """

    adult_size: int = 45_222
    census_size: int = 100_000
    census_sweep_sizes: tuple[int, ...] = (50_000, 100_000, 150_000, 200_000, 250_000)
    workload_queries: int = 600
    runs: int = 3
    attack_trials: int = 10
    seed: int = 20150323
    retention: float = DEFAULT_RETENTION
    lam: float = DEFAULT_LAMBDA
    delta: float = DEFAULT_DELTA
    sweep: dict = field(default_factory=lambda: dict(PARAMETER_SWEEP))

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The full-size configuration matching the paper's evaluation."""
        return cls(
            adult_size=45_222,
            census_size=300_000,
            census_sweep_sizes=(100_000, 200_000, 300_000, 400_000, 500_000),
            workload_queries=5_000,
            runs=10,
        )

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A small configuration for smoke tests and CI."""
        return cls(
            adult_size=8_000,
            census_size=20_000,
            census_sweep_sizes=(10_000, 20_000, 30_000),
            workload_queries=150,
            runs=2,
        )
