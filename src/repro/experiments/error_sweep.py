"""Figures 3 and 5: the relative-error cost of SPS compared to plain UP.

For each parameter setting the experiment publishes the generalised table with
both UP and SPS, answers the same random query workload on both, and reports
the average relative error of each (Figure 3 for ADULT, Figure 5 for CENSUS,
including the data-size sweep of Figure 5(d)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.utility import UtilityComparison, compare_up_and_sps
from repro.core.criterion import PrivacySpec
from repro.dataset.adult import generate_adult
from repro.dataset.census import generate_census
from repro.dataset.groups import personal_groups
from repro.dataset.table import Table
from repro.experiments.config import ExperimentConfig
from repro.generalization.merging import GeneralizationResult, generalize_table
from repro.queries.count_query import CountQuery
from repro.queries.workload import WorkloadConfig, generate_workload
from repro.utils.textplot import render_series


@dataclass(frozen=True)
class ErrorSweep:
    """UP and SPS average relative errors along one swept parameter."""

    dataset_name: str
    parameter: str
    values: tuple[float, ...]
    comparisons: tuple[UtilityComparison, ...]

    @property
    def up_errors(self) -> tuple[float, ...]:
        """Average relative error of plain uniform perturbation per swept value."""
        return tuple(c.up_error for c in self.comparisons)

    @property
    def sps_errors(self) -> tuple[float, ...]:
        """Average relative error of SPS per swept value."""
        return tuple(c.sps_error for c in self.comparisons)

    def render(self) -> str:
        """Plain-text rendering of one panel of Figure 3 / Figure 5."""
        return render_series(
            self.parameter,
            list(self.values),
            {"SPS": self.sps_errors, "UP": self.up_errors},
            title=f"Average relative error on {self.dataset_name} vs {self.parameter}",
        )


def _prepare(raw: Table) -> tuple[Table, GeneralizationResult]:
    result = generalize_table(raw)
    return result.table, result


def _workload(
    raw: Table,
    prepared: Table,
    generalization: GeneralizationResult,
    config: ExperimentConfig,
) -> list[CountQuery]:
    return generate_workload(
        source_table=raw,
        target_table=prepared,
        config=WorkloadConfig(n_queries=config.workload_queries),
        generalization=generalization,
        rng=config.seed,
    )


def sweep_parameter(
    prepared: Table,
    queries: list[CountQuery],
    dataset_name: str,
    parameter: str,
    values: tuple[float, ...],
    config: ExperimentConfig,
) -> ErrorSweep:
    """Sweep one of ``p``, ``lambda`` or ``delta`` and compare UP against SPS."""
    if parameter not in {"p", "lambda", "delta"}:
        raise ValueError("parameter must be one of 'p', 'lambda', 'delta'")
    groups = personal_groups(prepared)
    comparisons = []
    for i, value in enumerate(values):
        p = value if parameter == "p" else config.retention
        lam = value if parameter == "lambda" else config.lam
        delta = value if parameter == "delta" else config.delta
        spec = PrivacySpec(
            lam=lam,
            delta=delta,
            retention_probability=p,
            domain_size=prepared.schema.sensitive_domain_size,
        )
        comparisons.append(
            compare_up_and_sps(
                prepared,
                spec,
                queries,
                runs=config.runs,
                rng=config.seed + 1000 * i,
                groups=groups,
            )
        )
    return ErrorSweep(
        dataset_name=dataset_name,
        parameter=parameter,
        values=values,
        comparisons=tuple(comparisons),
    )


def sweep_data_size(sizes: tuple[int, ...], config: ExperimentConfig) -> ErrorSweep:
    """Figure 5(d): UP vs SPS error on CENSUS samples of increasing size."""
    comparisons = []
    for i, size in enumerate(sizes):
        raw = generate_census(size, seed=config.seed)
        prepared, generalization = _prepare(raw)
        queries = _workload(raw, prepared, generalization, config)
        spec = PrivacySpec(
            lam=config.lam,
            delta=config.delta,
            retention_probability=config.retention,
            domain_size=prepared.schema.sensitive_domain_size,
        )
        comparisons.append(
            compare_up_and_sps(
                prepared, spec, queries, runs=config.runs, rng=config.seed + 7000 * i
            )
        )
    return ErrorSweep(
        dataset_name="CENSUS",
        parameter="|D|",
        values=tuple(float(s) for s in sizes),
        comparisons=tuple(comparisons),
    )


def run_error_sweep(
    config: ExperimentConfig = ExperimentConfig(),
    datasets: tuple[str, ...] = ("ADULT", "CENSUS"),
    include_size_sweep: bool = True,
) -> dict[str, dict[str, ErrorSweep]]:
    """Run the error sweeps of Figure 3 (ADULT) and Figure 5 (CENSUS)."""
    results: dict[str, dict[str, ErrorSweep]] = {}
    for name in datasets:
        if name == "ADULT":
            raw = generate_adult(config.adult_size, seed=config.seed)
        elif name == "CENSUS":
            raw = generate_census(config.census_size, seed=config.seed)
        else:
            raise ValueError(f"unknown dataset {name!r}")
        prepared, generalization = _prepare(raw)
        queries = _workload(raw, prepared, generalization, config)
        sweeps = {
            "p": sweep_parameter(prepared, queries, name, "p", config.sweep["p"], config),
            "lambda": sweep_parameter(prepared, queries, name, "lambda", config.sweep["lambda"], config),
            "delta": sweep_parameter(prepared, queries, name, "delta", config.sweep["delta"], config),
        }
        if name == "CENSUS" and include_size_sweep:
            sweeps["|D|"] = sweep_data_size(config.census_sweep_sizes, config)
        results[name] = sweeps
    return results
