"""Figure 1: the maximum group size ``s_g`` versus the maximum frequency ``f``.

The paper plots ``s_g`` (Equation 10) against ``f`` for retention
probabilities p = 0.3, 0.5, 0.7, once with the ADULT domain size (m = 2,
f >= 0.5) and once with the CENSUS domain size (m = 50, f from 0.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.criterion import PrivacySpec, max_group_size
from repro.experiments.config import DEFAULT_DELTA, DEFAULT_LAMBDA
from repro.utils.textplot import render_series

#: Retention probabilities of the three curves in each panel.
FIGURE1_RETENTIONS = (0.3, 0.5, 0.7)


@dataclass(frozen=True)
class Figure1Panel:
    """One panel of Figure 1: s_g as a function of f for several p."""

    dataset_name: str
    domain_size: int
    frequencies: tuple[float, ...]
    curves: dict[float, tuple[float, ...]]

    def render(self) -> str:
        """Plain-text rendering of the panel (one column per retention probability)."""
        series = {f"p={p:g}": self.curves[p] for p in sorted(self.curves)}
        return render_series(
            "f",
            [round(f, 3) for f in self.frequencies],
            series,
            title=f"Figure 1 ({self.dataset_name}, m={self.domain_size}): s_g vs f",
        )


def figure1_panel(
    dataset_name: str,
    domain_size: int,
    frequencies: tuple[float, ...],
    lam: float = DEFAULT_LAMBDA,
    delta: float = DEFAULT_DELTA,
    retentions: tuple[float, ...] = FIGURE1_RETENTIONS,
) -> Figure1Panel:
    """Compute one panel of Figure 1."""
    curves = {}
    for p in retentions:
        spec = PrivacySpec(lam=lam, delta=delta, retention_probability=p, domain_size=domain_size)
        curves[p] = tuple(max_group_size(spec, f) for f in frequencies)
    return Figure1Panel(
        dataset_name=dataset_name,
        domain_size=domain_size,
        frequencies=frequencies,
        curves=curves,
    )


def run_figure1(
    lam: float = DEFAULT_LAMBDA, delta: float = DEFAULT_DELTA
) -> dict[str, Figure1Panel]:
    """Compute both panels of Figure 1 (ADULT-like m=2 and CENSUS-like m=50)."""
    adult_frequencies = tuple(np.round(np.arange(0.5, 0.91, 0.05), 3))
    census_frequencies = tuple(np.round(np.arange(0.1, 0.91, 0.1), 3))
    return {
        "ADULT": figure1_panel("ADULT", 2, adult_frequencies, lam=lam, delta=delta),
        "CENSUS": figure1_panel("CENSUS", 50, census_frequencies, lam=lam, delta=delta),
    }
