"""Figures 2 and 4: how often reconstruction privacy is violated by plain UP.

For each parameter setting (sweeping p, lambda, delta, and for CENSUS the data
size |D|) the experiment audits the generalised table and reports the group
violation rate ``v_g`` and the record violation rate ``v_r``.  The audit is a
property of the raw data and the perturbation parameters, so no actual
perturbation is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.violation import ViolationReport, violation_report
from repro.core.criterion import PrivacySpec
from repro.dataset.adult import generate_adult
from repro.dataset.census import generate_census
from repro.dataset.groups import personal_groups
from repro.dataset.table import Table
from repro.experiments.config import ExperimentConfig
from repro.generalization.merging import generalize_table
from repro.utils.textplot import render_series


@dataclass(frozen=True)
class ViolationSweep:
    """Violation rates along one swept parameter."""

    dataset_name: str
    parameter: str
    values: tuple[float, ...]
    reports: tuple[ViolationReport, ...]

    @property
    def group_rates(self) -> tuple[float, ...]:
        """``v_g`` for each swept value."""
        return tuple(report.group_rate for report in self.reports)

    @property
    def record_rates(self) -> tuple[float, ...]:
        """``v_r`` for each swept value."""
        return tuple(report.record_rate for report in self.reports)

    def render(self) -> str:
        """Plain-text rendering of one panel of Figure 2 / Figure 4."""
        return render_series(
            self.parameter,
            list(self.values),
            {"v_r": self.record_rates, "v_g": self.group_rates},
            title=f"Violation rates on {self.dataset_name} vs {self.parameter}",
        )


def _spec(table: Table, p: float, lam: float, delta: float) -> PrivacySpec:
    return PrivacySpec(
        lam=lam,
        delta=delta,
        retention_probability=p,
        domain_size=table.schema.sensitive_domain_size,
    )


def sweep_parameter(
    table: Table,
    dataset_name: str,
    parameter: str,
    values: tuple[float, ...],
    config: ExperimentConfig,
) -> ViolationSweep:
    """Sweep one of ``p``, ``lambda`` or ``delta`` on an already generalised table."""
    if parameter not in {"p", "lambda", "delta"}:
        raise ValueError("parameter must be one of 'p', 'lambda', 'delta'")
    groups = personal_groups(table)
    reports = []
    for value in values:
        p = value if parameter == "p" else config.retention
        lam = value if parameter == "lambda" else config.lam
        delta = value if parameter == "delta" else config.delta
        reports.append(violation_report(table, _spec(table, p, lam, delta), groups=groups))
    return ViolationSweep(
        dataset_name=dataset_name,
        parameter=parameter,
        values=values,
        reports=tuple(reports),
    )


def sweep_data_size(
    sizes: tuple[int, ...],
    config: ExperimentConfig,
) -> ViolationSweep:
    """Figure 4(d): violation rates of CENSUS samples of increasing size."""
    reports = []
    for size in sizes:
        census = generalize_table(generate_census(size, seed=config.seed)).table
        reports.append(
            violation_report(
                census, _spec(census, config.retention, config.lam, config.delta)
            )
        )
    return ViolationSweep(
        dataset_name="CENSUS",
        parameter="|D|",
        values=tuple(float(s) for s in sizes),
        reports=tuple(reports),
    )


def run_violation_sweep(
    config: ExperimentConfig = ExperimentConfig(),
    datasets: tuple[str, ...] = ("ADULT", "CENSUS"),
    include_size_sweep: bool = True,
) -> dict[str, dict[str, ViolationSweep]]:
    """Run the violation sweeps of Figure 2 (ADULT) and Figure 4 (CENSUS)."""
    results: dict[str, dict[str, ViolationSweep]] = {}
    for name in datasets:
        if name == "ADULT":
            raw = generate_adult(config.adult_size, seed=config.seed)
        elif name == "CENSUS":
            raw = generate_census(config.census_size, seed=config.seed)
        else:
            raise ValueError(f"unknown dataset {name!r}")
        table = generalize_table(raw).table
        sweeps = {
            "p": sweep_parameter(table, name, "p", config.sweep["p"], config),
            "lambda": sweep_parameter(table, name, "lambda", config.sweep["lambda"], config),
            "delta": sweep_parameter(table, name, "delta", config.sweep["delta"], config),
        }
        if name == "CENSUS" and include_size_sweep:
            sweeps["|D|"] = sweep_data_size(config.census_sweep_sizes, config)
        results[name] = sweeps
    return results
