"""Tables 4 and 5: impact of chi-square NA aggregation on the data sets.

For each data set the experiment reports, before and after generalisation, the
domain size of every public attribute, the number of personal groups ``|G|``
and the average group size ``|D| / |G|``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.adult import generate_adult
from repro.dataset.census import generate_census
from repro.dataset.groups import personal_groups
from repro.dataset.table import Table
from repro.experiments.config import ExperimentConfig
from repro.generalization.merging import GeneralizationResult, generalize_table
from repro.utils.textplot import render_table


@dataclass(frozen=True)
class AggregationImpact:
    """Before/after statistics for one data set (one of Tables 4 / 5)."""

    dataset_name: str
    n_records: int
    domain_sizes_before: dict[str, int]
    domain_sizes_after: dict[str, int]
    n_groups_before: int
    n_groups_after: int
    generalization: GeneralizationResult

    @property
    def average_group_size_before(self) -> float:
        """``|D| / |G|`` before aggregation."""
        return self.n_records / self.n_groups_before if self.n_groups_before else 0.0

    @property
    def average_group_size_after(self) -> float:
        """``|D| / |G|`` after aggregation."""
        return self.n_records / self.n_groups_after if self.n_groups_after else 0.0

    def render(self) -> str:
        """Plain-text rendering shaped like the paper's Tables 4 / 5."""
        attributes = list(self.domain_sizes_before)
        headers = ["", *attributes, "|G|", "|D|/|G|"]
        rows = [
            ["Before aggregation"]
            + [self.domain_sizes_before[a] for a in attributes]
            + [self.n_groups_before, round(self.average_group_size_before)],
            ["After aggregation"]
            + [self.domain_sizes_after[a] for a in attributes]
            + [self.n_groups_after, round(self.average_group_size_after)],
        ]
        title = f"NA aggregation impact on {self.dataset_name} (|D| = {self.n_records})"
        return render_table(headers, rows, title=title)


def aggregation_impact(table: Table, dataset_name: str) -> AggregationImpact:
    """Measure the aggregation impact on an arbitrary table."""
    before_groups = personal_groups(table)
    result = generalize_table(table)
    after_groups = personal_groups(result.table)
    return AggregationImpact(
        dataset_name=dataset_name,
        n_records=len(table),
        domain_sizes_before={a.name: a.size for a in table.schema.public},
        domain_sizes_after={a.name: a.size for a in result.table.schema.public},
        n_groups_before=len(before_groups),
        n_groups_after=len(after_groups),
        generalization=result,
    )


def run_aggregation_impact(
    config: ExperimentConfig = ExperimentConfig(),
) -> dict[str, AggregationImpact]:
    """Run the aggregation-impact measurement on ADULT (Table 4) and CENSUS (Table 5)."""
    adult = generate_adult(config.adult_size, seed=config.seed)
    census = generate_census(config.census_size, seed=config.seed)
    return {
        "ADULT": aggregation_impact(adult, "ADULT"),
        "CENSUS": aggregation_impact(census, f"CENSUS {config.census_size // 1000}K"),
    }
