"""Table 2: the disclosure indicator ``2 (b/x)^2`` for a grid of b and x."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dp.attack import ratio_error_indicator
from repro.utils.textplot import render_table

#: The Laplace scales of Table 2 and their epsilon equivalents for Delta = 2.
TABLE2_SCALES = (10.0, 20.0, 40.0, 200.0)
TABLE2_EPSILONS = (0.2, 0.1, 0.05, 0.01)
#: The true-answer columns of Table 2.
TABLE2_ANSWERS = (5000, 1000, 500, 200, 100)


@dataclass(frozen=True)
class Table2Result:
    """The full grid, indexed ``grid[scale][answer] = 2 (b/x)^2``."""

    grid: dict[float, dict[int, float]]

    def render(self) -> str:
        """Plain-text rendering shaped like the paper's Table 2."""
        headers = ["b (epsilon)"] + [f"x={x}" for x in TABLE2_ANSWERS]
        rows = []
        for scale, epsilon in zip(TABLE2_SCALES, TABLE2_EPSILONS, strict=True):
            rows.append(
                [f"b={scale:g} (eps={epsilon:g})"] + [self.grid[scale][x] for x in TABLE2_ANSWERS]
            )
        return render_table(headers, rows, title="Table 2: 2*(b/x)^2 disclosure indicator")


def run_table2() -> Table2Result:
    """Compute the Table 2 grid (a pure closed-form computation)."""
    grid = {
        scale: {answer: ratio_error_indicator(scale, answer) for answer in TABLE2_ANSWERS}
        for scale in TABLE2_SCALES
    }
    return Table2Result(grid=grid)
