"""Experiment harness.

Each module regenerates one table or figure of the paper and returns both the
structured result and a plain-text rendering.  ``python -m
repro.experiments.runner`` (or the ``repro-experiments`` console script) runs
any subset from the command line.
"""

from repro.experiments.config import (
    DEFAULT_DELTA,
    DEFAULT_LAMBDA,
    DEFAULT_RETENTION,
    PARAMETER_SWEEP,
    ExperimentConfig,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.aggregation import run_aggregation_impact
from repro.experiments.figure1 import run_figure1
from repro.experiments.violation_sweep import run_violation_sweep
from repro.experiments.error_sweep import run_error_sweep

__all__ = [
    "DEFAULT_DELTA",
    "DEFAULT_LAMBDA",
    "DEFAULT_RETENTION",
    "PARAMETER_SWEEP",
    "ExperimentConfig",
    "run_table1",
    "run_table2",
    "run_aggregation_impact",
    "run_figure1",
    "run_violation_sweep",
    "run_error_sweep",
]
