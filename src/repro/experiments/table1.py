"""Table 1: disclosure of the ADULT rule through two noisy Laplace counts.

The experiment issues the two queries of Example 1 on the (synthetic) ADULT
data, adds Laplace noise with scale ``b = Delta / epsilon`` (Delta = 2 for the
two queries), and reports the mean and standard error over 10 trials of the
estimated confidence ``Conf' = Y/X`` and of the two relative query errors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.adult import EXAMPLE_GROUP, generate_adult
from repro.dataset.table import Table
from repro.dp.attack import RatioAttackResult, run_ratio_attack
from repro.dp.mechanisms import LaplaceMechanism
from repro.experiments.config import ExperimentConfig
from repro.utils.textplot import render_table

#: The epsilon settings of Table 1 and the corresponding Laplace scales (Delta = 2).
TABLE1_EPSILONS = (0.01, 0.1, 0.5)
SENSITIVITY = 2.0


@dataclass(frozen=True)
class Table1Result:
    """Results of the ratio attack for each epsilon setting."""

    true_confidence: float
    per_epsilon: dict[float, RatioAttackResult]

    def render(self) -> str:
        """Plain-text rendering shaped like the paper's Table 1."""
        headers = ["epsilon", "b", "Conf' mean", "Conf' SE", "err(Q1) mean", "err(Q1) SE", "err(Q2) mean", "err(Q2) SE"]
        rows = []
        for epsilon, result in sorted(self.per_epsilon.items()):
            rows.append(
                [
                    epsilon,
                    SENSITIVITY / epsilon,
                    result.confidence_mean,
                    result.confidence_se,
                    result.error_q1_mean,
                    result.error_q1_se,
                    result.error_q2_mean,
                    result.error_q2_se,
                ]
            )
        title = (
            "Table 1: {Prof-school, Prof-specialty, White, Male} -> >50K "
            f"(true Conf = {self.true_confidence:.4f})"
        )
        return render_table(headers, rows, title=title)


def run_table1(
    config: ExperimentConfig = ExperimentConfig(),
    table: Table | None = None,
) -> Table1Result:
    """Run the Table 1 experiment.

    Parameters
    ----------
    config:
        Experiment configuration (trial count, seed, ADULT size).
    table:
        Optionally reuse an already generated ADULT table.
    """
    data = table if table is not None else generate_adult(config.adult_size, seed=config.seed)
    results: dict[float, RatioAttackResult] = {}
    true_confidence = None
    for i, epsilon in enumerate(TABLE1_EPSILONS):
        mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=SENSITIVITY)
        result = run_ratio_attack(
            data,
            conditions=EXAMPLE_GROUP,
            sensitive_value=">50K",
            mechanism=mechanism,
            trials=config.attack_trials,
            rng=config.seed + i,
        )
        results[epsilon] = result
        true_confidence = result.true_confidence
    return Table1Result(true_confidence=float(true_confidence), per_epsilon=results)
