"""Relative-error evaluation of a query workload on perturbed data."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.dataset.table import Table
from repro.queries.count_query import CountQuery, answer_on_perturbed, answer_on_raw
from repro.utils.stats import relative_error


@dataclass(frozen=True)
class WorkloadEvaluation:
    """Per-query and aggregate relative errors of one published table."""

    errors: tuple[float, ...]
    true_answers: tuple[float, ...]
    estimates: tuple[float, ...]

    @property
    def average_error(self) -> float:
        """The mean relative error over the workload (the paper's utility metric)."""
        if not self.errors:
            return 0.0
        return float(np.mean(self.errors))

    @property
    def median_error(self) -> float:
        """The median relative error (robust companion to the mean)."""
        if not self.errors:
            return 0.0
        return float(np.median(self.errors))


def evaluate_workload(
    queries: Sequence[CountQuery],
    raw_table: Table,
    published_table: Table,
    retention_probability: float,
) -> WorkloadEvaluation:
    """Answer every query on the published table and compare with the raw answers.

    Queries whose true answer on ``raw_table`` is zero are skipped (relative
    error is undefined for them; the workload generator's selectivity filter
    normally prevents this, but the guard keeps the function total).
    """
    errors = []
    true_answers = []
    estimates = []
    for query in queries:
        truth = answer_on_raw(query, raw_table)
        if truth == 0:
            continue
        estimate = answer_on_perturbed(query, published_table, retention_probability)
        errors.append(relative_error(estimate, truth))
        true_answers.append(float(truth))
        estimates.append(float(estimate))
    return WorkloadEvaluation(
        errors=tuple(errors),
        true_answers=tuple(true_answers),
        estimates=tuple(estimates),
    )


def average_relative_error(
    queries: Sequence[CountQuery],
    raw_table: Table,
    published_table: Table,
    retention_probability: float,
) -> float:
    """Shorthand for ``evaluate_workload(...).average_error``."""
    return evaluate_workload(queries, raw_table, published_table, retention_probability).average_error
