"""Count queries over public attributes plus one sensitive value.

A :class:`CountQuery` is the WHERE clause of Equation (11): equality
conditions on ``d`` public attributes and one sensitive value.  It can be
answered exactly on the raw table or estimated on a perturbed table through
the MLE reconstruction of the matching aggregate group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.table import Table
from repro.reconstruction.mle import mle_frequency


@dataclass(frozen=True)
class CountQuery:
    """A conjunctive count query ``A1 = a1 AND ... AND Ad = ad AND SA = sa``.

    Attributes
    ----------
    conditions:
        Mapping from public attribute names to required values.  May be empty
        (a query on the SA marginal alone).
    sensitive_value:
        The required SA value.
    """

    conditions: tuple[tuple[str, str], ...]
    sensitive_value: str

    @classmethod
    def build(cls, conditions: dict[str, str], sensitive_value: str) -> "CountQuery":
        """Construct a query from a plain dict of conditions."""
        return cls(
            conditions=tuple(sorted((str(k), str(v)) for k, v in conditions.items())),
            sensitive_value=str(sensitive_value),
        )

    @property
    def dimensionality(self) -> int:
        """``d``: the number of public attributes constrained by the query."""
        return len(self.conditions)

    def conditions_dict(self) -> dict[str, str]:
        """The NA conditions as a dict."""
        return dict(self.conditions)


def answer_on_raw(query: CountQuery, table: Table) -> int:
    """The exact answer ``ans`` of the query on the raw table ``D``."""
    return table.count(query.conditions_dict(), query.sensitive_value)


def answer_on_perturbed(query: CountQuery, perturbed: Table, retention_probability: float) -> float:
    """The estimate ``est = |S*| * F'`` of the query on a perturbed table.

    ``S*`` is the set of perturbed records matching the NA conditions and
    ``F'`` is the closed-form MLE (Lemma 2(ii)) of the frequency of the
    query's sensitive value inside ``S*``.  Returns 0.0 when ``S*`` is empty.
    """
    mask = perturbed.match_public(query.conditions_dict())
    subset_size = int(mask.sum())
    if subset_size == 0:
        return 0.0
    observed = perturbed.count(query.conditions_dict(), query.sensitive_value)
    frequency = mle_frequency(
        observed_count=observed,
        subset_size=subset_size,
        retention_probability=retention_probability,
        domain_size=perturbed.schema.sensitive_domain_size,
    )
    return subset_size * frequency
