"""Random count-query workload generator (Section 6.1).

The paper evaluates utility on a pool of 5,000 random count queries with
dimensionality ``d`` drawn from {1, 2, 3} and selectivity (true answer divided
by |D|) at least 0.1 %.  Queries are phrased over the *original* public values
and then translated to the generalised values the published data uses; this
module supports both by accepting an optional
:class:`~repro.generalization.merging.GeneralizationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.table import Table
from repro.generalization.merging import GeneralizationResult
from repro.queries.count_query import CountQuery, answer_on_raw
from repro.utils.rng import default_rng


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the random workload of Section 6.1."""

    n_queries: int = 5000
    dimensionalities: tuple[int, ...] = (1, 2, 3)
    min_selectivity: float = 0.001
    max_attempts_factor: int = 200

    def __post_init__(self) -> None:
        if self.n_queries <= 0:
            raise ValueError("n_queries must be positive")
        if not self.dimensionalities or any(d <= 0 for d in self.dimensionalities):
            raise ValueError("dimensionalities must be positive integers")
        if not 0.0 <= self.min_selectivity < 1.0:
            raise ValueError("min_selectivity must lie in [0, 1)")
        if self.max_attempts_factor <= 0:
            raise ValueError("max_attempts_factor must be positive")


def generate_workload(
    source_table: Table,
    target_table: Table,
    config: WorkloadConfig = WorkloadConfig(),
    generalization: GeneralizationResult | None = None,
    rng: int | np.random.Generator | None = None,
) -> list[CountQuery]:
    """Generate a pool of count queries with the paper's selectivity filter.

    Parameters
    ----------
    source_table:
        The table whose *original* domains are used to draw attribute values
        (the paper samples query values from the pre-aggregation domains).
    target_table:
        The (possibly generalised) table on which selectivity is checked and
        on which the queries will eventually be answered.
    config:
        Pool size, dimensionalities, selectivity threshold.
    generalization:
        When provided, NA values drawn from the original domains are mapped to
        their generalised values before the query is materialised.
    rng:
        Seed or generator.

    Returns fewer than ``config.n_queries`` queries only if the attempt budget
    (``n_queries * max_attempts_factor`` draws) is exhausted, which indicates
    the selectivity threshold is too high for the data.
    """
    rng = default_rng(rng)
    schema = source_table.schema
    max_dim = min(len(schema.public), max(config.dimensionalities))
    dims = tuple(d for d in config.dimensionalities if d <= max_dim)
    if not dims:
        raise ValueError("no feasible query dimensionality for this schema")

    min_count = config.min_selectivity * len(target_table)
    queries: list[CountQuery] = []
    seen: set[tuple[tuple[tuple[str, str], ...], str]] = set()
    attempts = 0
    max_attempts = config.n_queries * config.max_attempts_factor
    while len(queries) < config.n_queries and attempts < max_attempts:
        attempts += 1
        d = int(rng.choice(dims))
        chosen = rng.choice(len(schema.public), size=d, replace=False)
        conditions = {}
        for index in chosen:
            attribute = schema.public[int(index)]
            value = attribute.values[int(rng.integers(0, attribute.size))]
            conditions[attribute.name] = value
        sensitive_value = schema.sensitive.values[int(rng.integers(0, schema.sensitive.size))]

        if generalization is not None:
            conditions = generalization.translate_conditions(conditions)
        query = CountQuery.build(conditions, sensitive_value)
        key = (query.conditions, query.sensitive_value)
        if key in seen:
            continue
        answer = answer_on_raw(query, target_table)
        if answer >= min_count and answer > 0:
            seen.add(key)
            queries.append(query)
    return queries
