"""Count-query workloads and utility evaluation (Section 6.1).

Utility of the published data is measured by the relative error of count
queries of the form

    SELECT COUNT(*) FROM D WHERE A1 = a1 AND ... AND Ad = ad AND SA = sa

answered on the perturbed data by ``est = |S*| * F'`` where ``S*`` is the set
of perturbed records matching the NA conditions and ``F'`` is the MLE of the
``sa`` frequency inside ``S*``.
"""

from repro.queries.count_query import CountQuery, answer_on_perturbed, answer_on_raw
from repro.queries.workload import WorkloadConfig, generate_workload
from repro.queries.error import average_relative_error, evaluate_workload

__all__ = [
    "CountQuery",
    "answer_on_raw",
    "answer_on_perturbed",
    "WorkloadConfig",
    "generate_workload",
    "average_relative_error",
    "evaluate_workload",
]
