"""Posterior/prior privacy criteria: l-diversity, t-closeness, beta-likeness,
small-count privacy.

These are the criteria the paper cites as "considering NIR a violation"
(Section 1.1).  Each checker audits every personal group (the natural analogue
of a QI-group for our schema) of a table and reports the failing groups, so
they can be compared head-to-head with the reconstruction-privacy audit.

Definitions implemented:

* **distinct l-diversity** — every group contains at least ``l`` distinct SA
  values (Machanavajjhala et al., ICDE 2006).
* **entropy l-diversity** — the entropy of the group's SA distribution is at
  least ``log(l)``.
* **t-closeness** — the distance between the group's SA distribution and the
  global SA distribution is at most ``t`` (Li et al., ICDE 2007); for
  categorical SA the Earth Mover's Distance reduces to total variation
  distance, which is what we use.
* **beta-likeness** — for every SA value, the relative increase of its
  in-group frequency over its global frequency is at most ``beta``
  (Cao & Karras, VLDB 2012; we implement the basic beta-likeness condition).
* **small-count privacy** — every (group, SA value) count is either zero or at
  least ``k`` (the "small sum/count" intuition of Fu et al. 2014): tiny
  non-zero counts pinpoint individuals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dataset.groups import GroupIndex, PersonalGroup, personal_groups
from repro.dataset.table import Table


@dataclass(frozen=True)
class CriterionReport:
    """Audit outcome of one classical criterion over a table's personal groups."""

    criterion: str
    parameters: dict[str, float]
    total_groups: int
    failing_groups: tuple[tuple[int, ...], ...]
    total_records: int
    failing_records: int

    @property
    def group_failure_rate(self) -> float:
        """Fraction of personal groups failing the criterion."""
        if self.total_groups == 0:
            return 0.0
        return len(self.failing_groups) / self.total_groups

    @property
    def record_failure_rate(self) -> float:
        """Fraction of records contained in a failing group."""
        if self.total_records == 0:
            return 0.0
        return self.failing_records / self.total_records

    @property
    def is_satisfied(self) -> bool:
        """Whether every personal group satisfies the criterion."""
        return not self.failing_groups


def _report(
    criterion: str,
    parameters: dict[str, float],
    table: Table,
    index: GroupIndex,
    failing: list[PersonalGroup],
) -> CriterionReport:
    return CriterionReport(
        criterion=criterion,
        parameters=parameters,
        total_groups=len(index),
        failing_groups=tuple(group.key for group in failing),
        total_records=len(table),
        failing_records=sum(group.size for group in failing),
    )


# --------------------------------------------------------------------------- #
# l-diversity
# --------------------------------------------------------------------------- #
def _entropy(frequencies: np.ndarray) -> float:
    positive = frequencies[frequencies > 0]
    return float(-(positive * np.log(positive)).sum())


def l_diversity_report(
    table: Table,
    l: int,
    variant: str = "distinct",
    groups: GroupIndex | None = None,
) -> CriterionReport:
    """Audit distinct or entropy l-diversity over the table's personal groups.

    Parameters
    ----------
    table:
        The table to audit.
    l:
        The diversity parameter, at least 1.
    variant:
        ``"distinct"`` (default) or ``"entropy"``.
    groups:
        Optional pre-built group index.
    """
    if l < 1:
        raise ValueError("l must be at least 1")
    if variant not in {"distinct", "entropy"}:
        raise ValueError("variant must be 'distinct' or 'entropy'")
    index = groups if groups is not None else personal_groups(table)
    failing = []
    for group in index:
        if variant == "distinct":
            diverse = int((group.sensitive_counts > 0).sum()) >= l
        else:
            diverse = _entropy(group.frequencies) >= math.log(l)
        if not diverse:
            failing.append(group)
    return _report(f"{variant}-l-diversity", {"l": float(l)}, table, index, failing)


# --------------------------------------------------------------------------- #
# t-closeness
# --------------------------------------------------------------------------- #
def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance between two categorical distributions.

    For categorical (unordered) SA values the Earth Mover's Distance with the
    uniform ground metric equals the total variation distance, so this is the
    distance used by categorical t-closeness.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same length")
    return 0.5 * float(np.abs(p - q).sum())


def t_closeness_report(
    table: Table,
    t: float,
    groups: GroupIndex | None = None,
) -> CriterionReport:
    """Audit t-closeness (total-variation flavour) over the personal groups."""
    if not 0.0 <= t <= 1.0:
        raise ValueError("t must lie in [0, 1]")
    index = groups if groups is not None else personal_groups(table)
    global_distribution = table.sensitive_frequencies()
    failing = [
        group
        for group in index
        if total_variation_distance(group.frequencies, global_distribution) > t
    ]
    return _report("t-closeness", {"t": t}, table, index, failing)


# --------------------------------------------------------------------------- #
# beta-likeness
# --------------------------------------------------------------------------- #
def beta_likeness_report(
    table: Table,
    beta: float,
    groups: GroupIndex | None = None,
) -> CriterionReport:
    """Audit basic beta-likeness: max relative gain of any SA value is at most beta.

    A group fails if some SA value with global frequency ``q > 0`` has
    in-group frequency ``f`` with ``(f - q) / q > beta``.  Values absent from
    the whole table are ignored (no prior to amplify).
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    index = groups if groups is not None else personal_groups(table)
    global_distribution = table.sensitive_frequencies()
    failing = []
    for group in index:
        frequencies = group.frequencies
        gains = np.zeros_like(frequencies)
        positive = global_distribution > 0
        gains[positive] = (frequencies[positive] - global_distribution[positive]) / global_distribution[positive]
        if gains.max(initial=0.0) > beta:
            failing.append(group)
    return _report("beta-likeness", {"beta": beta}, table, index, failing)


# --------------------------------------------------------------------------- #
# small-count privacy
# --------------------------------------------------------------------------- #
def small_count_report(
    table: Table,
    k: int,
    groups: GroupIndex | None = None,
) -> CriterionReport:
    """Audit small-count privacy: every non-zero (group, SA value) count is >= k.

    The "small count / small sum" view holds that a published count of, say, 1
    or 2 for a (public profile, disease) pair identifies individuals, whereas
    large counts are population statistics.  The paper argues size thresholds
    alone cannot separate personal from aggregate reconstruction (Section 1.2);
    this checker makes that comparison possible.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    index = groups if groups is not None else personal_groups(table)
    failing = []
    for group in index:
        counts = group.sensitive_counts
        nonzero = counts[counts > 0]
        if nonzero.size and nonzero.min() < k:
            failing.append(group)
    return _report("small-count", {"k": float(k)}, table, index, failing)
