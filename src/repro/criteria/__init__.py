"""Classical posterior/prior privacy criteria used as comparison points.

Section 1 of the paper contrasts reconstruction privacy with the
posterior/prior family — l-diversity, t-closeness, beta-likeness, small-count
style criteria — which treat *any* non-independent reasoning as a violation
and therefore require the per-group SA distribution to stay close to a prior
or to be sufficiently spread out.  Implementing them makes the comparison
concrete: the same tables can be audited under every criterion, and the
utility experiments show why "smoothing" criteria block statistical learning
that reconstruction privacy deliberately allows.

All checkers share the same shape: they take a table (raw data; these criteria
are properties of the published micro-data distribution, which uniform
perturbation leaves reconstructible in aggregate) and report which personal
groups fail.
"""

from repro.criteria.classic import (
    CriterionReport,
    beta_likeness_report,
    l_diversity_report,
    small_count_report,
    t_closeness_report,
)
from repro.criteria.comparison import compare_criteria

__all__ = [
    "CriterionReport",
    "l_diversity_report",
    "t_closeness_report",
    "beta_likeness_report",
    "small_count_report",
    "compare_criteria",
]
