"""Side-by-side comparison of privacy criteria on one table.

Runs the classical posterior/prior criteria and the paper's reconstruction-
privacy audit over the same personal groups, so the difference in what they
flag — and therefore in how much "smoothing" each would demand — is visible in
one report.  Used by the ablation benchmark and available to library users who
want to position reconstruction privacy against the criteria they already use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.criterion import PrivacySpec
from repro.core.testing import audit_table
from repro.criteria.classic import (
    CriterionReport,
    beta_likeness_report,
    l_diversity_report,
    small_count_report,
    t_closeness_report,
)
from repro.dataset.groups import personal_groups
from repro.dataset.table import Table
from repro.utils.textplot import render_table


@dataclass(frozen=True)
class CriteriaComparison:
    """Failure rates of several criteria over the same table."""

    reports: tuple[CriterionReport, ...]
    reconstruction_group_rate: float
    reconstruction_record_rate: float

    def render(self) -> str:
        """Plain-text table with one row per criterion."""
        rows = [
            [
                report.criterion,
                ", ".join(f"{k}={v:g}" for k, v in report.parameters.items()),
                f"{report.group_failure_rate:.1%}",
                f"{report.record_failure_rate:.1%}",
            ]
            for report in self.reports
        ]
        rows.append(
            [
                "reconstruction-privacy",
                "lambda/delta of the spec",
                f"{self.reconstruction_group_rate:.1%}",
                f"{self.reconstruction_record_rate:.1%}",
            ]
        )
        return render_table(
            ["criterion", "parameters", "failing groups", "failing records"],
            rows,
            title="Privacy criteria compared on the same personal groups",
        )


def compare_criteria(
    table: Table,
    spec: PrivacySpec,
    l: int = 2,
    t: float = 0.2,
    beta: float = 1.0,
    k: int = 3,
) -> CriteriaComparison:
    """Audit ``table`` under every implemented criterion.

    Parameters
    ----------
    table:
        The (generalised) raw table.
    spec:
        The reconstruction-privacy specification to audit alongside.
    l, t, beta, k:
        Parameters of the classical criteria (sensible defaults for a
        demonstration; tune to your policy).
    """
    groups = personal_groups(table)
    reports = (
        l_diversity_report(table, l=l, groups=groups),
        l_diversity_report(table, l=l, variant="entropy", groups=groups),
        t_closeness_report(table, t=t, groups=groups),
        beta_likeness_report(table, beta=beta, groups=groups),
        small_count_report(table, k=k, groups=groups),
    )
    audit = audit_table(table, spec, groups=groups)
    return CriteriaComparison(
        reports=reports,
        reconstruction_group_rate=audit.group_violation_rate,
        reconstruction_record_rate=audit.record_violation_rate,
    )
