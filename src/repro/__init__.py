"""repro — a reproduction of "Reconstruction Privacy: Enabling Statistical
Learning" (Wang, Han, Fu, Wong, Yu; EDBT 2015).

The package implements the paper's privacy criterion and enforcement
algorithm, together with every substrate the evaluation depends on:

* uniform perturbation of a sensitive attribute and MLE reconstruction;
* the (lambda, delta)-reconstruction-privacy criterion, its Chernoff-bound
  test, and the Sampling-Perturbing-Scaling (SPS) enforcement algorithm;
* chi-square generalisation of public attribute values;
* a differential-privacy baseline (Laplace/Gaussian count queries) and the
  ratio attack showing how noisy counts leak rules through non-independent
  reasoning;
* synthetic ADULT/CENSUS generators, count-query workloads, violation-rate
  and utility analyses, and an experiment harness regenerating every table
  and figure of the paper;
* one strategy-first publishing pipeline (:mod:`repro.pipeline`) shared by
  the library, the anonymization service (:mod:`repro.service`) and the
  experiment harness — every registered strategy is reachable from all of
  them by name;
* a benchmark & profiling subsystem (:mod:`repro.bench`, the ``repro-bench``
  CLI) that times those same entry points over a deterministic scenario
  matrix and emits schema-versioned ``BENCH_*.json`` perf reports;
* an out-of-core streaming engine (:mod:`repro.stream`, the ``repro-stream``
  CLI) that publishes CSV sources larger than memory in bounded chunks,
  byte-identical to the in-memory path for the same seed and chunk size;
* a shared multi-worker scheduler (:mod:`repro.parallel`) behind every
  ``workers=`` knob — process-pool chunk execution with an ordered block
  writer, byte-identical output at any worker count;
* an incremental re-publish engine (:mod:`repro.delta`, the ``repro-delta``
  CLI) for living datasets: appended rows re-run only the kernel chunks
  whose personal groups changed, spliced atomically into the published CSV,
  byte-identical to a full re-publish of the combined data;
* durable pluggable storage (:mod:`repro.store`) behind the service and
  delta layers: a transactional, optimistically-versioned connector
  contract with SQLite (durable default), in-memory and legacy
  JSON-snapshot backends — every mutation commits write-through, so
  ``kill -9`` loses nothing and a restart resumes where the process died.

Quickstart::

    import repro

    table = repro.generate_adult(10_000, seed=0)
    report = repro.publish(table, strategy="sps", lam=0.3, delta=0.3, rng=0)
    print(report.audit.group_violation_rate, len(report.published))
"""

from repro.core.criterion import PrivacySpec, max_group_size, value_is_private, group_is_private
from repro.core.publisher import PublishResult, ReconstructionPrivacyPublisher
from repro.core.sps import SPSResult, sps_publish
from repro.core.testing import PrivacyAudit, audit_table
from repro.dataset.adult import generate_adult
from repro.dataset.census import generate_census
from repro.dataset.loaders import read_csv, write_csv
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.dataset.groups import personal_groups
from repro.generalization.merging import generalize_table
from repro.perturbation.uniform import UniformPerturbation, perturb_table
from repro.pipeline import (
    ParamError,
    ParamSpec,
    PublishPipeline,
    PublishReport,
    PublishStrategy,
    available_strategies,
    get_strategy,
    publish,
    register_strategy,
)
from repro.reconstruction.mle import mle_frequencies, mle_frequencies_clipped, reconstruct_counts
from repro.stream import ChunkedReader, StreamReport, stream_publish
from repro.delta import (
    DeltaReport,
    DeltaState,
    DeltaUnsupportedError,
    delta_publish,
    publish_base,
)
from repro.queries.workload import WorkloadConfig, generate_workload
from repro.queries.count_query import CountQuery, answer_on_perturbed, answer_on_raw

__version__ = "1.9.0"

__all__ = [
    "PrivacySpec",
    "max_group_size",
    "value_is_private",
    "group_is_private",
    "PublishResult",
    "ReconstructionPrivacyPublisher",
    "SPSResult",
    "sps_publish",
    "PrivacyAudit",
    "audit_table",
    "generate_adult",
    "generate_census",
    "read_csv",
    "write_csv",
    "Attribute",
    "Schema",
    "Table",
    "personal_groups",
    "generalize_table",
    "UniformPerturbation",
    "perturb_table",
    "ParamError",
    "ParamSpec",
    "PublishPipeline",
    "PublishReport",
    "PublishStrategy",
    "available_strategies",
    "get_strategy",
    "publish",
    "register_strategy",
    "mle_frequencies",
    "mle_frequencies_clipped",
    "reconstruct_counts",
    "ChunkedReader",
    "StreamReport",
    "stream_publish",
    "DeltaReport",
    "DeltaState",
    "DeltaUnsupportedError",
    "delta_publish",
    "publish_base",
    "WorkloadConfig",
    "generate_workload",
    "CountQuery",
    "answer_on_raw",
    "answer_on_perturbed",
    "__version__",
]
