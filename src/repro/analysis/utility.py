"""UP-versus-SPS utility comparison (the machinery behind Figures 3 and 5).

For one parameter setting, the comparison publishes the prepared table twice —
once with plain uniform perturbation (UP) and once with the SPS algorithm —
answers the same query workload on both, and reports the average relative
errors and their ratio (the cost of enforcing reconstruction privacy).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.criterion import PrivacySpec
from repro.dataset.groups import GroupIndex, personal_groups
from repro.dataset.table import Table
from repro.pipeline import publish
from repro.queries.count_query import CountQuery
from repro.queries.error import evaluate_workload
from repro.utils.rng import default_rng, spawn_rngs


@dataclass(frozen=True)
class UtilityComparison:
    """Average relative errors of UP and SPS for one parameter setting."""

    spec: PrivacySpec
    up_error: float
    sps_error: float
    runs: int

    @property
    def error_increase(self) -> float:
        """Absolute increase in average relative error caused by SPS sampling."""
        return self.sps_error - self.up_error

    @property
    def relative_increase(self) -> float:
        """``(sps - up) / up`` — the headline cost number of Section 6."""
        if self.up_error == 0:
            return 0.0
        return (self.sps_error - self.up_error) / self.up_error


def compare_up_and_sps(
    table: Table,
    spec: PrivacySpec,
    queries: Sequence[CountQuery],
    runs: int = 10,
    rng: int | np.random.Generator | None = None,
    groups: GroupIndex | None = None,
) -> UtilityComparison:
    """Average relative error of UP and SPS over ``runs`` random publications.

    Parameters
    ----------
    table:
        The prepared (generalised) raw table.
    spec:
        The privacy specification; its ``p`` is used for both UP and SPS.
    queries:
        The evaluation workload (true answers are taken on ``table``).
    runs:
        Number of independent publications to average over (the paper uses 10).
    rng:
        Seed or generator.
    groups:
        Optional pre-built personal-group index (reused across runs).
    """
    if runs <= 0:
        raise ValueError("runs must be positive")
    index = groups if groups is not None else personal_groups(table)
    rngs = spawn_rngs(default_rng(rng), 2 * runs)
    params = {
        "lam": spec.lam,
        "delta": spec.delta,
        "retention_probability": spec.retention_probability,
    }
    up_errors = []
    sps_errors = []
    for run in range(runs):
        # Both arms drive the shared strategy registry; the audit stage is
        # skipped because only the published tables matter here.
        up_table = publish(
            table, strategy="uniform", rng=rngs[2 * run], groups=index, audit=False, **params
        ).published
        sps_table = publish(
            table, strategy="sps", rng=rngs[2 * run + 1], groups=index, audit=False, **params
        ).published
        up_errors.append(
            evaluate_workload(queries, table, up_table, spec.retention_probability).average_error
        )
        sps_errors.append(
            evaluate_workload(
                queries, table, sps_table, spec.retention_probability
            ).average_error
        )
    return UtilityComparison(
        spec=spec,
        up_error=float(np.mean(up_errors)),
        sps_error=float(np.mean(sps_errors)),
        runs=runs,
    )
