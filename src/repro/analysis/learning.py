"""Statistical learning on perturbed data.

The whole point of reconstruction privacy is that *aggregate* reconstruction
remains useful for learning statistical relationships ("smokers tend to have
lung cancer") while *personal* reconstruction is blunted.  This module
demonstrates that utility with two consumers that only ever touch aggregate
groups of the published data:

* :func:`mine_rules_from_perturbed` mines association rules
  ``NA-condition -> SA value`` whose confidence is estimated through the MLE
  reconstruction of the matching aggregate group;
* :class:`NaiveBayesOnReconstruction` trains a naive Bayes classifier for the
  sensitive attribute using reconstructed per-attribute conditional marginals,
  i.e. exactly the 1-D statistics the paper says data analysis focuses on.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.dataset.table import Table
from repro.reconstruction.mle import mle_frequencies_clipped


@dataclass(frozen=True)
class AssociationRule:
    """A rule ``conditions -> sensitive_value`` with reconstructed statistics."""

    conditions: tuple[tuple[str, str], ...]
    sensitive_value: str
    support: float
    confidence: float

    def conditions_dict(self) -> dict[str, str]:
        """The rule's antecedent as a dict."""
        return dict(self.conditions)


def _reconstructed_group_frequencies(
    perturbed: Table, mask: np.ndarray, retention_probability: float
) -> np.ndarray | None:
    """Clipped MLE frequencies of the SA values inside a masked aggregate group."""
    if not mask.any():
        return None
    counts = perturbed.sensitive_counts(mask)
    return mle_frequencies_clipped(
        counts, retention_probability, perturbed.schema.sensitive_domain_size
    )


def mine_rules_from_perturbed(
    perturbed: Table,
    retention_probability: float,
    min_support: float = 0.01,
    min_confidence: float = 0.5,
    max_dimensionality: int = 1,
) -> list[AssociationRule]:
    """Mine single- (or low-) dimensional rules ``A = a -> SA = sa`` from ``D*``.

    Support is the fraction of published records matching the antecedent;
    confidence is the reconstructed frequency of the consequent SA value
    inside that aggregate group.  Only antecedents over at most
    ``max_dimensionality`` public attributes are enumerated (the paper's data
    analysis focuses on 1-D / 2-D statistics).
    """
    if not 0.0 <= min_support <= 1.0 or not 0.0 <= min_confidence <= 1.0:
        raise ValueError("min_support and min_confidence must lie in [0, 1]")
    if max_dimensionality < 1:
        raise ValueError("max_dimensionality must be at least 1")

    schema = perturbed.schema
    total = len(perturbed)
    if total == 0:
        return []

    rules: list[AssociationRule] = []
    # Enumerate 1-D antecedents always; 2-D only if requested (kept small on purpose).
    antecedents: list[dict[str, str]] = []
    for attribute in schema.public:
        for value in attribute.values:
            antecedents.append({attribute.name: value})
    if max_dimensionality >= 2:
        for i, first in enumerate(schema.public):
            for second in schema.public[i + 1 :]:
                for value_a in first.values:
                    for value_b in second.values:
                        antecedents.append({first.name: value_a, second.name: value_b})

    for conditions in antecedents:
        mask = perturbed.match_public(conditions)
        support = float(mask.sum()) / total
        if support < min_support:
            continue
        frequencies = _reconstructed_group_frequencies(perturbed, mask, retention_probability)
        if frequencies is None:
            continue
        for code, confidence in enumerate(frequencies):
            if confidence >= min_confidence:
                rules.append(
                    AssociationRule(
                        conditions=tuple(sorted(conditions.items())),
                        sensitive_value=schema.sensitive.decode(code),
                        support=support,
                        confidence=float(confidence),
                    )
                )
    rules.sort(key=lambda rule: rule.confidence, reverse=True)
    return rules


class NaiveBayesOnReconstruction:
    """Naive Bayes classifier for SA trained on reconstructed 1-D marginals.

    Training never looks at an individual published record's SA value in
    isolation: it only uses (a) the reconstructed global SA distribution and
    (b) for each public attribute value, the reconstructed SA distribution of
    that aggregate group.  Laplace smoothing keeps zero-frequency values from
    collapsing the posterior.
    """

    def __init__(self, retention_probability: float, smoothing: float = 1.0) -> None:
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self._p = retention_probability
        self._smoothing = smoothing
        self._prior: np.ndarray | None = None
        self._conditionals: list[np.ndarray] | None = None
        self._schema = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._prior is not None

    def fit(self, perturbed: Table) -> "NaiveBayesOnReconstruction":
        """Estimate the prior and per-attribute likelihoods from ``D*``."""
        schema = perturbed.schema
        m = schema.sensitive_domain_size
        total_counts = perturbed.sensitive_counts()
        prior = mle_frequencies_clipped(total_counts, self._p, m)
        prior = (prior * len(perturbed) + self._smoothing) / (
            len(perturbed) + self._smoothing * m
        )

        conditionals: list[np.ndarray] = []
        sensitive = perturbed.sensitive_codes
        for column, attribute in enumerate(schema.public):
            # table[attribute value, sa value] = P(attribute value | sa value)
            # One bincount over (attribute value, sa value) pairs gives every
            # aggregate group's SA histogram at once; the batched clipped MLE
            # then reconstructs all rows in a single vectorised call.
            codes = perturbed.public_codes[:, column]
            counts = np.bincount(
                codes * m + sensitive, minlength=attribute.size * m
            ).reshape(attribute.size, m)
            group_sizes = counts.sum(axis=1)
            likelihood = np.zeros((attribute.size, m))
            nonempty = group_sizes > 0
            if nonempty.any():
                frequencies = mle_frequencies_clipped(counts[nonempty], self._p, m)
                # Reconstructed joint count of (attribute value, sa value).
                likelihood[nonempty] = frequencies * group_sizes[nonempty, None]
            # Normalise each SA column into P(attribute value | sa) with smoothing.
            column_totals = likelihood.sum(axis=0, keepdims=True)
            likelihood = (likelihood + self._smoothing) / (
                column_totals + self._smoothing * attribute.size
            )
            conditionals.append(likelihood)

        self._prior = prior
        self._conditionals = conditionals
        self._schema = schema
        return self

    def predict_proba(self, public_records: Sequence[Sequence[str]]) -> np.ndarray:
        """Posterior SA distributions for records given by their public values."""
        if not self.is_fitted:
            raise RuntimeError("fit() must be called before predict_proba()")
        schema = self._schema
        results = []
        for record in public_records:
            if len(record) != len(schema.public):
                raise ValueError("each record must supply a value for every public attribute")
            log_posterior = np.log(self._prior)
            for column, (attribute, value) in enumerate(zip(schema.public, record, strict=True)):
                code = attribute.encode(value)
                log_posterior = log_posterior + np.log(self._conditionals[column][code])
            posterior = np.exp(log_posterior - log_posterior.max())
            results.append(posterior / posterior.sum())
        return np.asarray(results)

    def predict(self, public_records: Sequence[Sequence[str]]) -> list[str]:
        """Most likely SA value for each record of public values."""
        probabilities = self.predict_proba(public_records)
        codes = probabilities.argmax(axis=1)
        return [self._schema.sensitive.decode(int(code)) for code in codes]

    def accuracy(self, table: Table) -> float:
        """Accuracy against a table that carries true SA values (for evaluation only)."""
        if len(table) == 0:
            raise ValueError("cannot score an empty table")
        records = [record[:-1] for record in table.records()]
        truths = [record[-1] for record in table.records()]
        predictions = self.predict(records)
        correct = sum(1 for p, t in zip(predictions, truths, strict=True) if p == t)
        return correct / len(truths)
