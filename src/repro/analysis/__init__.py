"""Analysis layer: violation rates, UP-vs-SPS utility comparison, and the
statistical-learning demonstrations that motivate the paper (rule mining and a
naive Bayes learner built purely from reconstructed marginals)."""

from repro.analysis.violation import ViolationReport, violation_report
from repro.analysis.utility import UtilityComparison, compare_up_and_sps
from repro.analysis.learning import (
    AssociationRule,
    NaiveBayesOnReconstruction,
    mine_rules_from_perturbed,
)

__all__ = [
    "ViolationReport",
    "violation_report",
    "UtilityComparison",
    "compare_up_and_sps",
    "AssociationRule",
    "NaiveBayesOnReconstruction",
    "mine_rules_from_perturbed",
]
