"""Violation-rate analysis (the v_g / v_r measurements of Figures 2 and 4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.criterion import PrivacySpec
from repro.core.testing import PrivacyAudit, audit_table
from repro.dataset.groups import GroupIndex
from repro.dataset.table import Table


@dataclass(frozen=True)
class ViolationReport:
    """Violation rates of one table under one privacy specification.

    ``group_rate`` is ``v_g`` (fraction of personal groups violating) and
    ``record_rate`` is ``v_r`` (fraction of records covered by a violating
    group).  ``violating_groups`` / ``total_groups`` give the raw counts.
    """

    spec: PrivacySpec
    total_groups: int
    violating_groups: int
    total_records: int
    violating_records: int

    @property
    def group_rate(self) -> float:
        """``v_g``."""
        if self.total_groups == 0:
            return 0.0
        return self.violating_groups / self.total_groups

    @property
    def record_rate(self) -> float:
        """``v_r``."""
        if self.total_records == 0:
            return 0.0
        return self.violating_records / self.total_records


def violation_report(
    table: Table,
    spec: PrivacySpec,
    groups: GroupIndex | None = None,
    audit: PrivacyAudit | None = None,
) -> ViolationReport:
    """Compute v_g and v_r for ``table`` under ``spec``.

    An existing :class:`PrivacyAudit` can be passed to avoid re-auditing.
    """
    if audit is None:
        audit = audit_table(table, spec, groups=groups)
    violating = audit.violating_groups
    return ViolationReport(
        spec=spec,
        total_groups=audit.n_groups,
        violating_groups=len(violating),
        total_records=audit.total_records,
        violating_records=sum(v.size for v in violating),
    )
