"""The result bundle of one out-of-core streaming publish."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.criterion import PrivacySpec
from repro.core.sps import GroupPublication
from repro.core.testing import PrivacyAudit
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.generalization.merging import AttributeMerge


@dataclass(frozen=True)
class StreamReport:
    """Everything one :func:`repro.stream.stream_publish` run produced.

    The streaming sibling of :class:`repro.pipeline.report.PublishReport`:
    same strategy/params/seed/audit/records fields, but instead of holding
    the prepared table it records the streaming shape of the run — rows and
    chunks read, groups indexed, where the published rows went.  When an
    ``output`` sink was given, ``published`` is ``None`` (the rows went to
    the sink without ever being resident); without a sink the published
    :class:`~repro.dataset.table.Table` is materialised here, byte-identical
    to the in-memory pipeline's output for the same seed and chunk size.

    Example (illustrative field access)::

        report = stream_publish("big.csv", sensitive="Income", output="out.csv")
        report.n_rows, report.n_groups, report.published_records
    """

    strategy: str
    params: dict[str, Any]
    seed: int
    chunk_rows: int
    chunk_size: int
    n_rows: int
    n_chunks: int
    n_groups: int
    published_records: int
    schema: Schema
    #: Worker count the enforce stage ran with (never affects the bytes).
    workers: int = 1
    spec: PrivacySpec | None = None
    audit: PrivacyAudit | None = None
    groups: tuple[GroupPublication, ...] = ()
    merges: tuple[AttributeMerge, ...] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    output: str | None = None
    published: Table | None = None
    peak_tracked_bytes: int | None = None

    @property
    def n_sampled_groups(self) -> int:
        """How many groups SPS actually sampled (``|g| > s_g``)."""
        return sum(1 for g in self.groups if g.sampled)

    @property
    def sampled_fraction(self) -> float:
        """Fraction of groups that needed sampling."""
        if not self.groups:
            return 0.0
        return self.n_sampled_groups / len(self.groups)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across all recorded stages."""
        return float(sum(self.timings.values()))

    def summary(self) -> dict[str, Any]:
        """A compact JSON-compatible digest (for logs, CLI and job records)."""
        data: dict[str, Any] = {
            "strategy": self.strategy,
            "params": dict(self.params),
            "seed": self.seed,
            "chunk_rows": self.chunk_rows,
            "chunk_size": self.chunk_size,
            "workers": self.workers,
            "rows_read": self.n_rows,
            "chunks_read": self.n_chunks,
            "n_groups": self.n_groups,
            "published_records": self.published_records,
            "output": self.output,
            "timings": dict(self.timings),
            "metadata": dict(self.metadata),
        }
        if self.audit is not None:
            data["audit"] = {
                "n_groups": self.audit.n_groups,
                "n_violating_groups": len(self.audit.violating_groups),
                "group_violation_rate": float(self.audit.group_violation_rate),
                "record_violation_rate": float(self.audit.record_violation_rate),
                "is_private": self.audit.is_private,
            }
        if self.groups:
            data["n_sampled_groups"] = self.n_sampled_groups
            data["sampled_fraction"] = self.sampled_fraction
        if self.peak_tracked_bytes is not None:
            data["peak_tracked_bytes"] = int(self.peak_tracked_bytes)
        return data
