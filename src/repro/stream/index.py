"""Incremental personal-group indexing over row chunks.

The paper's group-wise publishing model makes the full table unnecessary for
every group-based strategy: the published bytes are a pure function of the
ordered list of personal groups — their NA keys and SA count vectors — plus
the seed and chunk size.  :class:`IncrementalGroupIndex` accumulates exactly
that from bounded row chunks: each chunk updates per-column value
dictionaries and per-group SA counters, and :meth:`finalize` emits the same
schema :func:`repro.dataset.loaders.infer_schema` would infer and the same
group order :class:`repro.dataset.groups.GroupIndex` would iterate
(lexicographic in the NA key codes), so downstream enforcement is
byte-identical to the in-memory path.

Memory is ``O(chunk_rows + G * m + total domain size)`` where ``G`` is the
number of distinct personal groups and ``m`` the SA domain size — never
``O(n)`` in the number of records.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.dataset.schema import Attribute, Schema


@dataclass(frozen=True)
class StreamGroup:
    """One personal group reconstructed from streamed counts.

    Duck-compatible with :class:`repro.dataset.groups.PersonalGroup` for
    everything the publishing strategies and the audit read (``key``,
    ``size``, ``sensitive_counts``, ``max_frequency``); it only lacks the
    row ``indices``, which no enforcement path consumes.

    Example:

    >>> import numpy as np
    >>> g = StreamGroup(key=(0, 2), sensitive_counts=np.array([3, 1]))
    >>> g.size, g.max_frequency
    (4, 0.75)
    """

    key: tuple[int, ...]
    sensitive_counts: np.ndarray

    @property
    def size(self) -> int:
        """``|g|``, the number of records in the group."""
        return int(self.sensitive_counts.sum())

    @property
    def frequencies(self) -> np.ndarray:
        """Fractional SA frequencies inside the group."""
        total = self.sensitive_counts.sum()
        if total == 0:
            return np.zeros_like(self.sensitive_counts, dtype=float)
        return self.sensitive_counts / total

    @property
    def max_frequency(self) -> float:
        """``f`` in Equation (10): the largest SA frequency in the group."""
        if self.size == 0:
            return 0.0
        return float(self.sensitive_counts.max() / self.sensitive_counts.sum())


class IncrementalGroupIndex:
    """Merge per-chunk ``(NA key, SA value)`` counts into one group index.

    Values are assigned provisional integer codes in first-seen order while
    chunks stream past; :meth:`finalize` re-maps them onto the sorted domains
    of the inferred schema, so the result does not depend on chunking at all
    — only on the set of rows.

    Example:

    >>> index = IncrementalGroupIndex(public_names=["City"], sensitive="Disease")
    >>> index.update([["Oslo", "Flu"], ["Bergen", "Flu"]])
    >>> index.update([["Oslo", "Cold"]])
    >>> schema, groups = index.finalize()
    >>> [(g.key, g.sensitive_counts.tolist()) for g in groups]
    [((0,), [0, 1]), ((1,), [1, 1])]
    >>> schema.public[0].values, index.n_rows
    (('Bergen', 'Oslo'), 3)
    """

    def __init__(self, public_names: Sequence[str], sensitive: str) -> None:
        self._public_names = [str(name) for name in public_names]
        self._sensitive = str(sensitive)
        # value -> provisional code, one dict per public column + one for SA.
        self._codebooks: list[dict[str, int]] = [
            {} for _ in range(len(self._public_names) + 1)
        ]
        # provisional NA key -> {provisional SA code: count}
        self._counts: dict[tuple[int, ...], dict[int, int]] = {}
        self._remaps: list[np.ndarray] | None = None
        self.n_rows = 0

    @property
    def n_groups(self) -> int:
        """Number of distinct personal groups seen so far."""
        return len(self._counts)

    def update(self, rows: Sequence[Sequence[str]]) -> None:
        """Fold one chunk of records (NA values then SA value) into the index."""
        self.update_encoded(rows)

    def update_encoded(self, rows: Sequence[Sequence[str]]) -> np.ndarray:
        """Like :meth:`update`, also returning the chunk as provisional codes.

        The returned ``(len(rows), n_public + 1)`` int64 block uses the
        index's *provisional* (first-seen order) codes; once every chunk has
        streamed past, :meth:`remap_block` translates such blocks onto the
        finalized sorted-domain codes.  Row-order-preserving strategies spool
        these blocks so the source never needs a second read.
        """
        codebooks = self._codebooks
        counts = self._counts
        n_public = len(self._public_names)
        block = np.empty((len(rows), n_public + 1), dtype=np.int64)
        for r, row in enumerate(rows):
            if len(row) != n_public + 1:
                raise ValueError(
                    f"record has {len(row)} fields, expected {n_public + 1}"
                )
            for i in range(n_public + 1):
                block[r, i] = codebooks[i].setdefault(row[i], len(codebooks[i]))
            key = tuple(int(c) for c in block[r, :n_public])
            sa = int(block[r, n_public])
            group = counts.get(key)
            if group is None:
                counts[key] = {sa: 1}
            else:
                group[sa] = group.get(sa, 0) + 1
        self.n_rows += len(rows)
        return block

    @property
    def remaps(self) -> tuple[np.ndarray, ...]:
        """Per-column provisional→final code tables (requires :meth:`finalize`).

        Exposed so the parallel row kernel can remap spooled blocks inside
        worker processes without shipping the whole index.
        """
        if self._remaps is None:
            raise ValueError("remaps requires finalize() to have run")
        return tuple(self._remaps)

    def remap_block(self, block: np.ndarray) -> np.ndarray:
        """Translate a provisional-coded block onto the finalized schema codes."""
        if self._remaps is None:
            raise ValueError("remap_block requires finalize() to have run")
        from repro.parallel.kernels import remap_columns

        return remap_columns(block, self._remaps)

    def finalize(self) -> tuple[Schema, list[StreamGroup]]:
        """Build the inferred schema and the lexicographically ordered groups.

        The schema is exactly what :func:`repro.dataset.loaders.infer_schema`
        infers from the same rows (sorted domains, sensitive column last);
        the group list iterates in the same order as
        :class:`repro.dataset.groups.GroupIndex` over the materialised table.
        """
        if self.n_rows == 0:
            raise ValueError("cannot finalize an index that saw no rows")
        # Provisional -> final code permutation per column (sorted domains).
        remaps: list[np.ndarray] = []
        attributes: list[Attribute] = []
        for name, book in zip(self._public_names + [self._sensitive], self._codebooks, strict=True):
            values = sorted(book)
            final = {value: code for code, value in enumerate(values)}
            remap = np.empty(len(book), dtype=np.int64)
            for value, provisional in book.items():
                remap[provisional] = final[value]
            remaps.append(remap)
            attributes.append(Attribute(name, tuple(values)))
        self._remaps = remaps
        schema = Schema(public=tuple(attributes[:-1]), sensitive=attributes[-1])

        m = schema.sensitive_domain_size
        sa_remap = remaps[-1]
        groups: list[StreamGroup] = []
        for key, sa_counts in self._counts.items():
            final_key = tuple(int(remaps[i][code]) for i, code in enumerate(key))
            vector = np.zeros(m, dtype=np.int64)
            for sa, count in sa_counts.items():
                vector[sa_remap[sa]] = count
            groups.append(StreamGroup(key=final_key, sensitive_counts=vector))
        groups.sort(key=lambda g: g.key)
        return schema, groups


def conditional_sa_counts(
    groups: Sequence[StreamGroup], column: int, m: int
) -> dict[int, np.ndarray]:
    """SA count vectors conditioned on each observed value of public ``column``.

    This is the streaming equivalent of the per-attribute contingency scan
    the chi-square generalisation performs on a materialised table: because a
    personal group fixes every public attribute, summing group count vectors
    by ``key[column]`` reproduces it exactly.

    >>> import numpy as np
    >>> groups = [StreamGroup((0, 0), np.array([2, 0])), StreamGroup((0, 1), np.array([0, 1]))]
    >>> {k: v.tolist() for k, v in conditional_sa_counts(groups, 0, 2).items()}
    {0: [2, 1]}
    """
    counts: dict[int, np.ndarray] = {}
    for group in groups:
        value = int(group.key[column])
        if value not in counts:
            counts[value] = np.zeros(m, dtype=np.int64)
        counts[value] += group.sensitive_counts
    return counts


def apply_code_maps(
    groups: Sequence[StreamGroup], code_maps: Sequence[np.ndarray]
) -> list[StreamGroup]:
    """Re-key groups through per-column generalisation code maps and re-merge.

    Groups whose keys collide after mapping are aggregated (their SA counts
    added) and the result is re-sorted lexicographically — the same group
    list :class:`repro.dataset.groups.GroupIndex` builds over the re-encoded
    (generalised) table.

    >>> import numpy as np
    >>> groups = [StreamGroup((0,), np.array([1, 0])), StreamGroup((1,), np.array([0, 2]))]
    >>> merged = apply_code_maps(groups, [np.array([0, 0])])
    >>> [(g.key, g.sensitive_counts.tolist()) for g in merged]
    [((0,), [1, 2])]
    """
    merged: dict[tuple[int, ...], np.ndarray] = {}
    for group in groups:
        key = tuple(int(code_maps[i][c]) for i, c in enumerate(group.key))
        vector = merged.get(key)
        if vector is None:
            merged[key] = group.sensitive_counts.copy()
        else:
            vector += group.sensitive_counts
    return [
        StreamGroup(key=key, sensitive_counts=merged[key]) for key in sorted(merged)
    ]
