"""repro.stream — out-of-core streaming publishing with bounded memory.

The group-wise publishing model of the paper is naturally streamable: every
group-based strategy's output is a pure function of the ordered personal
groups, not of the materialised table.  This package exploits that:

* :class:`~repro.stream.reader.ChunkedReader` walks a CSV source in
  bounded-size row chunks;
* :class:`~repro.stream.index.IncrementalGroupIndex` merges per-chunk
  ``(NA key, SA value)`` counts into the exact schema and group order the
  in-memory :class:`~repro.dataset.groups.GroupIndex` would produce;
* :func:`~repro.stream.engine.stream_publish` drives the strategies' own
  chunk kernels over the finalized groups and streams the published rows to
  a CSV sink, so a dataset larger than RAM publishes with peak memory
  proportional to ``chunk_rows``, not ``n``.

For a fixed seed and ``chunk_size`` the streamed output is byte-identical to
``repro.publish`` on the fully loaded table — the determinism contract
``tests/test_stream.py`` pins for every registered strategy.  The
``repro-stream`` console script (:mod:`repro.stream.cli`) is the command-line
front end; ``repro.publish(source=..., streaming=True)`` and the service's
``stream=true`` job mode reach the same engine.
"""

from repro.pipeline.execution import DEFAULT_CHUNK_ROWS
from repro.stream.engine import ProgressCallback, stream_publish
from repro.stream.index import (
    IncrementalGroupIndex,
    StreamGroup,
    apply_code_maps,
    conditional_sa_counts,
)
from repro.stream.reader import ChunkedReader
from repro.stream.report import StreamReport

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "ChunkedReader",
    "IncrementalGroupIndex",
    "ProgressCallback",
    "StreamGroup",
    "StreamReport",
    "apply_code_maps",
    "conditional_sa_counts",
    "stream_publish",
]
