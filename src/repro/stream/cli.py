"""The ``repro-stream`` command line: out-of-core publishing from the shell.

Usage (installed console script, or ``python -m repro.stream``)::

    repro-stream data.csv --sensitive Income --output published.csv
    repro-stream data.csv --sensitive Income --strategy generalize+sps \\
        --seed 7 --chunk-rows 50000 --lam 0.25
    repro-stream data.csv --sensitive Income --output out.csv --progress \\
        --trace trace.jsonl

Prints the run's JSON summary (rows read, groups, audit rates, per-stage
seconds) to stdout; everything human-facing — progress, errors — goes to
stderr through stdlib logging (``--verbose`` for chunk-level detail plus live
logfmt span lines, ``--quiet`` for errors only).  ``--trace PATH`` records
the run's span tree and writes it as a schema-validated JSONL trace.  For a
fixed ``--seed`` and ``--chunk-size`` the output CSV is byte-identical to
loading the table and publishing in memory — with or without tracing.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import sys
from collections.abc import Sequence

from repro import __version__
from repro.dataset.schema import SchemaError
from repro.obs import Tracer, configure_cli_logging, export
from repro.pipeline.execution import DEFAULT_CHUNK_ROWS, DEFAULT_CHUNK_SIZE
from repro.pipeline.params import ParamError
from repro.pipeline.strategy import UnknownStrategyError, available_strategies
from repro.stream.engine import stream_publish

_log = logging.getLogger("repro.stream")

#: CLI flag -> strategy parameter name (only flags the user passed are sent).
_PARAM_FLAGS = {
    "lam": "lam",
    "delta": "delta",
    "retention": "retention_probability",
    "epsilon": "epsilon",
    "dp_delta": "dp_delta",
    "sensitivity": "sensitivity",
    "significance": "significance",
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-stream`` argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-stream",
        description="Publish a CSV dataset out-of-core with bounded memory.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument("source", help="CSV file to publish")
    parser.add_argument("--sensitive", required=True, help="sensitive column name")
    parser.add_argument(
        "--strategy", default="sps",
        help=f"publishing strategy (default sps; one of {', '.join(available_strategies())})",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    parser.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
        help="personal groups per work chunk (affects the published bytes)",
    )
    parser.add_argument(
        "--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS,
        help="CSV records per ingestion chunk (the memory knob; "
        "does not affect the published bytes)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="fan the enforce stage out over this many worker processes "
        "(never affects the published bytes)",
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="write published rows to this CSV (omitted: rows are counted "
        "but discarded, keeping memory bounded, and only stats are reported)",
    )
    parser.add_argument("--delimiter", default=",", help="source field delimiter")
    parser.add_argument("--no-audit", action="store_true", help="skip the audit stage")
    parser.add_argument(
        "--progress", action="store_true", help="log chunk progress to stderr"
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="record the run's spans and write them as a JSONL trace "
        "(never changes the published bytes)",
    )
    volume = parser.add_mutually_exclusive_group()
    volume.add_argument(
        "--verbose", action="store_true",
        help="debug-level logging plus live logfmt span lines on stderr",
    )
    volume.add_argument(
        "--quiet", action="store_true", help="errors only on stderr"
    )
    parser.add_argument("--lam", type=float)
    parser.add_argument("--delta", type=float)
    parser.add_argument("--retention", type=float, help="retention probability p")
    parser.add_argument("--epsilon", type=float)
    parser.add_argument("--dp-delta", type=float, dest="dp_delta")
    parser.add_argument("--sensitivity", type=float)
    parser.add_argument("--significance", type=float)
    return parser


def _collect_params(args: argparse.Namespace) -> dict[str, float]:
    params: dict[str, float] = {}
    for flag, name in _PARAM_FLAGS.items():
        value = getattr(args, flag, None)
        if value is not None:
            params[name] = value
    return params


def _progress_logger(event: dict) -> None:
    phase = event.get("phase")
    if phase == "read":
        _log.info(
            "read: %s rows (%s chunks)", event["rows_read"], event["chunks_read"]
        )
    elif phase == "enforce":
        done = event.get("groups_done", event.get("rows_done", 0))
        total = event.get("n_groups", event.get("n_rows", 0))
        _log.info(
            "enforce: %s/%s (%s records published)",
            done, total, event["published_records"],
        )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-stream`` console script.

    Example (non-zero exits: 2 for bad input, schema or parameter errors)::

        repro-stream data.csv --sensitive Income --output published.csv
    """
    args = build_parser().parse_args(argv)
    configure_cli_logging(verbose=args.verbose, quiet=args.quiet)
    # --verbose additionally tails every finished span as a logfmt line.
    tracer = Tracer(live=sys.stderr if args.verbose else None) if (
        args.trace or args.verbose
    ) else None
    try:
        with tracer if tracer is not None else contextlib.nullcontext():
            report = stream_publish(
                args.source,
                sensitive=args.sensitive,
                strategy=args.strategy,
                rng=args.seed,
                chunk_size=args.chunk_size,
                chunk_rows=args.chunk_rows,
                workers=args.workers,
                audit=not args.no_audit,
                output=args.output,
                materialize=False,  # CLI never reads the table back; stay bounded
                delimiter=args.delimiter,
                progress=_progress_logger if (args.progress or args.verbose) else None,
                **_collect_params(args),
            )
    except (SchemaError, ParamError, UnknownStrategyError, ValueError, OSError) as exc:
        _log.error("error: %s", exc)
        return 2
    if args.trace and tracer is not None:
        export.write_trace(tracer, args.trace)
        _log.info("trace written to %s (%d spans)", args.trace, len(tracer.spans))
    json.dump(report.summary(), sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
