"""The ``repro-stream`` command line: out-of-core publishing from the shell.

Usage (installed console script, or ``python -m repro.stream``)::

    repro-stream data.csv --sensitive Income --output published.csv
    repro-stream data.csv --sensitive Income --strategy generalize+sps \\
        --seed 7 --chunk-rows 50000 --lam 0.25
    repro-stream data.csv --sensitive Income --output out.csv --progress

Prints the run's JSON summary (rows read, groups, audit rates, per-stage
seconds) to stdout; ``--progress`` additionally logs chunk-level progress to
stderr while the job runs.  For a fixed ``--seed`` and ``--chunk-size`` the
output CSV is byte-identical to loading the table and publishing in memory.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro import __version__
from repro.dataset.schema import SchemaError
from repro.pipeline.execution import DEFAULT_CHUNK_ROWS, DEFAULT_CHUNK_SIZE
from repro.pipeline.params import ParamError
from repro.pipeline.strategy import UnknownStrategyError, available_strategies
from repro.stream.engine import stream_publish

#: CLI flag -> strategy parameter name (only flags the user passed are sent).
_PARAM_FLAGS = {
    "lam": "lam",
    "delta": "delta",
    "retention": "retention_probability",
    "epsilon": "epsilon",
    "dp_delta": "dp_delta",
    "sensitivity": "sensitivity",
    "significance": "significance",
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-stream`` argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-stream",
        description="Publish a CSV dataset out-of-core with bounded memory.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument("source", help="CSV file to publish")
    parser.add_argument("--sensitive", required=True, help="sensitive column name")
    parser.add_argument(
        "--strategy", default="sps",
        help=f"publishing strategy (default sps; one of {', '.join(available_strategies())})",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    parser.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
        help="personal groups per work chunk (affects the published bytes)",
    )
    parser.add_argument(
        "--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS,
        help="CSV records per ingestion chunk (the memory knob; "
        "does not affect the published bytes)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="fan the enforce stage out over this many worker processes "
        "(never affects the published bytes)",
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="write published rows to this CSV (omitted: rows are counted "
        "but discarded, keeping memory bounded, and only stats are reported)",
    )
    parser.add_argument("--delimiter", default=",", help="source field delimiter")
    parser.add_argument("--no-audit", action="store_true", help="skip the audit stage")
    parser.add_argument(
        "--progress", action="store_true", help="log chunk progress to stderr"
    )
    parser.add_argument("--lam", type=float)
    parser.add_argument("--delta", type=float)
    parser.add_argument("--retention", type=float, help="retention probability p")
    parser.add_argument("--epsilon", type=float)
    parser.add_argument("--dp-delta", type=float, dest="dp_delta")
    parser.add_argument("--sensitivity", type=float)
    parser.add_argument("--significance", type=float)
    return parser


def _collect_params(args: argparse.Namespace) -> dict[str, float]:
    params: dict[str, float] = {}
    for flag, name in _PARAM_FLAGS.items():
        value = getattr(args, flag, None)
        if value is not None:
            params[name] = value
    return params


def _progress_logger(event: dict) -> None:
    phase = event.get("phase")
    if phase == "read":
        print(
            f"read: {event['rows_read']} rows ({event['chunks_read']} chunks)",
            file=sys.stderr,
        )
    elif phase == "enforce":
        done = event.get("groups_done", event.get("rows_done", 0))
        total = event.get("n_groups", event.get("n_rows", 0))
        print(
            f"enforce: {done}/{total} ({event['published_records']} records published)",
            file=sys.stderr,
        )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-stream`` console script.

    Example (non-zero exits: 2 for bad input, schema or parameter errors)::

        repro-stream data.csv --sensitive Income --output published.csv
    """
    args = build_parser().parse_args(argv)
    try:
        report = stream_publish(
            args.source,
            sensitive=args.sensitive,
            strategy=args.strategy,
            rng=args.seed,
            chunk_size=args.chunk_size,
            chunk_rows=args.chunk_rows,
            workers=args.workers,
            audit=not args.no_audit,
            output=args.output,
            materialize=False,  # CLI never reads the table back; stay bounded
            delimiter=args.delimiter,
            progress=_progress_logger if args.progress else None,
            **_collect_params(args),
        )
    except (SchemaError, ParamError, UnknownStrategyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    json.dump(report.summary(), sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
