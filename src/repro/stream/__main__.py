"""``python -m repro.stream`` — alias for the ``repro-stream`` console script."""

from repro.stream.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
