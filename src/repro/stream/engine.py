"""The out-of-core streaming publishing engine.

:func:`stream_publish` publishes a CSV source without ever materialising it:
one bounded-memory pass builds the incremental group index (and, for
row-order-preserving strategies, a disk spool of encoded rows), then the
strategy's group-batch kernel — the same kernel the in-memory pipeline runs —
is driven over deterministic seeded chunks and its output blocks are written
straight to the sink.  Peak memory is proportional to ``chunk_rows`` plus the
group index, never to the number of records.

Determinism contract (pinned by ``tests/test_stream.py``): for a fixed seed
and ``chunk_size``, the streamed output is **byte-identical** to
``repro.publish`` on the fully loaded table — including the RNG stream
consumption — for every registered strategy.  This holds because

1. the incremental index finalizes to the exact schema and group order the
   in-memory :class:`~repro.dataset.groups.GroupIndex` produces;
2. group chunks and their spawned generators are the same
   (:func:`~repro.pipeline.execution.chunk_items` /
   :func:`~repro.pipeline.execution.chunk_rngs`);
3. row-stream strategies draw their whole-table vectorised draws chunk by
   chunk, and numpy generators fill chunked array draws from the same stream
   positions as one whole-array draw.
"""

from __future__ import annotations

import csv
import tempfile
import tracemalloc
from collections.abc import Callable, Iterator
from pathlib import Path
from typing import IO, Any

import numpy as np

from repro.core.criterion import PrivacySpec
from repro.core.sps import GroupPublication
from repro.core.testing import PrivacyAudit, audit_group
from repro.dataset.loaders import source_label
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.generalization.chi_square import DEFAULT_SIGNIFICANCE
from repro.generalization.merging import AttributeMerge, merge_attribute_from_counts
from repro.obs.metrics import (
    PUBLISH_RUNS,
    RNG_DRAWS,
    ROWS_PUBLISHED,
    STREAM_ROWS_PER_SECOND,
    TRACEMALLOC_PEAK,
)
from repro.obs.trace import span
from repro.parallel.kernels import (
    CsvChunkKernel,
    EncodedBlock,
    MissingChunkPublisher,
    StrategyKernel,
    UniformRowKernel,
)
from repro.parallel.scheduler import (
    DEFAULT_BACKEND,
    iter_chunk_results,
    iter_ordered_map,
)
from repro.pipeline.execution import (
    DEFAULT_CHUNK_ROWS,
    DEFAULT_CHUNK_SIZE,
    coerce_seed,
    seeded_rng,
)
from repro.pipeline.strategy import PublishStrategy, get_strategy
from repro.stream.index import (
    IncrementalGroupIndex,
    StreamGroup,
    apply_code_maps,
    conditional_sa_counts,
)
from repro.stream.reader import ChunkedReader
from repro.stream.report import StreamReport

#: Signature of the optional progress callback: called with small JSON-ready
#: dicts carrying a ``phase`` key as the run advances.
ProgressCallback = Callable[[dict[str, Any]], None]


class _SchemaHolder:
    """Minimal table stand-in for ``strategy.spec_for`` (schema access only)."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema


class _TableSink:
    """Collect published blocks into an in-memory table (no ``output`` given)."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._blocks: list[np.ndarray] = []
        self.records_written = 0

    def write_block(self, block: np.ndarray) -> None:
        if block.size:
            self._blocks.append(block)
            self.records_written += block.shape[0]

    def close(self) -> Table:
        n_cols = len(self._schema.public) + 1
        if self._blocks:
            codes = np.vstack(self._blocks)
        else:
            codes = np.empty((0, n_cols), dtype=np.int64)
        return Table(self._schema, codes)

    def abort(self) -> None:
        self._blocks.clear()


class _NullSink:
    """Count published records, keep nothing (``materialize=False``, no output).

    Lets a stats-only run (e.g. ``repro-stream`` without ``--output``) stay
    bounded-memory on inputs the table-materialising sink could not hold.
    """

    def __init__(self) -> None:
        self.records_written = 0

    def write_block(self, block: np.ndarray) -> None:
        self.records_written += block.shape[0]

    def close(self) -> None:
        return None

    def abort(self) -> None:
        return None


class _CsvSink:
    """Stream published blocks to a CSV destination, decoding as they arrive.

    Produces exactly the bytes :func:`repro.dataset.loaders.write_csv` writes
    for the equivalent in-memory table (header, then one decoded row per
    published record, in publish order).
    """

    def __init__(
        self, destination: str | Path | IO[str], schema: Schema, overwrite: bool = True
    ) -> None:
        self._schema = schema
        if hasattr(destination, "write"):
            self._handle: IO[str] = destination  # type: ignore[assignment]
            self._owned = False
            self.path = None
        else:
            path = Path(destination)
            # "x" makes no-overwrite atomic (two concurrent jobs naming the
            # same output: one wins, the other fails cleanly); UTF-8 mirrors
            # read_csv's decoding so round-trips work on any locale.
            self._handle = path.open("w" if overwrite else "x", newline="", encoding="utf-8")
            self._owned = True
            self.path = path
        self._writer = csv.writer(self._handle)
        self._writer.writerow(list(schema.public_names) + [schema.sensitive_name])
        self.records_written = 0

    def write_block(self, block: np.ndarray) -> None:
        decode = self._schema.decode_record
        self._writer.writerows(decode(row) for row in block)
        self.records_written += block.shape[0]

    def write_encoded(self, encoded: EncodedBlock) -> None:
        """Append CSV text a worker already rendered (same bytes as write_block).

        The handle was opened with ``newline=""``, so the worker-rendered
        ``\\r\\n`` terminators pass through untranslated — the file is
        byte-identical to the per-row ``csv.writer`` path.
        """
        self._handle.write(encoded.text)
        self.records_written += encoded.n_rows

    def close(self) -> None:
        if self._owned:
            self._handle.close()
        return None

    def abort(self) -> None:
        """Close and remove an owned partial file after a mid-publish failure.

        Deleting the partial keeps stream jobs retryable: the service's
        "only write new files" guard would otherwise block a retry on the
        broken output the failed job itself left behind.  Caller-provided
        streams are only closed-by-not-touched (we don't own them).
        """
        self.close()
        if self._owned and self.path is not None:
            self.path.unlink(missing_ok=True)


class _RowSpool:
    """Disk spool of provisional-coded row blocks plus per-row retain bits.

    Backs the row-stream (``streams_rows``) path: pass 1 appends each encoded
    chunk, the enforcement phases replay the chunks in order.  Lives entirely
    in anonymous temp files, so memory stays bounded while disk carries the
    ``O(n)`` state an order-preserving perturbation inevitably needs.
    """

    def __init__(self, n_cols: int) -> None:
        self._n_cols = n_cols
        self._codes = tempfile.TemporaryFile()
        self._retain = tempfile.TemporaryFile()
        self.chunk_lengths: list[int] = []

    def append(self, block: np.ndarray) -> None:
        self._codes.write(np.ascontiguousarray(block, dtype=np.int64).tobytes())
        self.chunk_lengths.append(block.shape[0])

    def append_retain(self, retain: np.ndarray) -> None:
        self._retain.write(np.packbits(retain).tobytes())

    def replay(
        self, with_retain: bool = False
    ) -> Iterator[tuple[np.ndarray, np.ndarray | None]]:
        """Yield the spooled blocks (optionally with their retain bits) in order."""
        self._codes.seek(0)
        if with_retain:
            self._retain.seek(0)
        row_bytes = self._n_cols * 8
        for length in self.chunk_lengths:
            raw = self._codes.read(length * row_bytes)
            block = np.frombuffer(raw, dtype=np.int64).reshape(length, self._n_cols)
            if with_retain:
                packed = np.frombuffer(self._retain.read((length + 7) // 8), dtype=np.uint8)
                yield block, np.unpackbits(packed)[:length].astype(bool)
            else:
                yield block, None

    def close(self) -> None:
        self._codes.close()
        self._retain.close()


def _streamable(strategy: PublishStrategy) -> bool:
    if not strategy.streamable:
        return False
    overrides_kernel = (
        type(strategy).chunk_publisher is not PublishStrategy.chunk_publisher
    )
    return overrides_kernel or strategy.streams_rows


def stream_publish(
    source: str | Path | IO[str],
    *,
    sensitive: str,
    strategy: str | PublishStrategy = "sps",
    rng: int | np.random.Generator | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    workers: int = 1,
    parallel_backend: str = DEFAULT_BACKEND,
    audit: bool = True,
    output: str | Path | IO[str] | None = None,
    materialize: bool = True,
    overwrite: bool = True,
    delimiter: str = ",",
    progress: ProgressCallback | None = None,
    track_memory: bool = False,
    **params: Any,
) -> StreamReport:
    """Publish a CSV source out-of-core with bounded memory.

    Parameters
    ----------
    source:
        CSV file path or open text stream; read exactly once, in chunks of
        ``chunk_rows`` records.
    sensitive:
        Name of the sensitive column SA.
    strategy:
        Registered strategy name or instance.  Must either expose a
        group-batch kernel (``chunk_publisher`` — SPS, the DP histogram
        strategies, ``generalize+sps``) or declare ``streams_rows``
        (``uniform``); anything else raises :class:`ValueError`.
    rng, chunk_size:
        Seed and groups-per-work-chunk, with the same meaning (and the same
        bytes out) as :func:`repro.publish`.
    chunk_rows:
        Records per ingestion chunk — the memory knob.
    workers:
        Fan the enforce stage out over this many workers through the shared
        scheduler (:mod:`repro.parallel`).  Byte-identity is preserved at
        any worker count: chunks and their seeded generators are fixed
        before dispatch and completions are flushed to the sink in chunk
        order, so the published table, the CSV bytes and the RNG stream
        consumption never depend on ``workers``.
    parallel_backend:
        ``"auto"`` (process pool when the kernel pickles, threads
        otherwise), ``"process"``, ``"thread"`` or ``"serial"``.
    audit:
        Run the pre-publication audit (computed from the incremental index).
    output:
        CSV path or text stream for the published rows.  When given, rows
        stream to it and ``report.published`` is ``None``; when omitted the
        published table is materialised on the report.
    materialize:
        Only consulted when ``output`` is ``None``: pass ``False`` to count
        published records without keeping them (bounded memory for
        stats-only runs, e.g. ``repro-stream`` without ``--output``);
        ``report.published`` is then ``None``.
    overwrite:
        Only consulted for path outputs: pass ``False`` to open the sink
        with mode ``"x"``, atomically refusing to clobber an existing file
        (the service's stream jobs do).
    delimiter:
        Field delimiter of the source.
    progress:
        Optional callback receiving ``{"phase": ..., ...}`` dicts as the run
        advances (used by the service's stream jobs).
    track_memory:
        Record the run's peak ``tracemalloc`` allocation on the report.
    params:
        Strategy parameters, validated like :func:`repro.publish`.

    Example:

    >>> import io
    >>> src = io.StringIO("City,Disease\\n" + "Oslo,Flu\\n" * 40 + "Bergen,Cold\\n" * 24)
    >>> report = stream_publish(src, sensitive="Disease", strategy="sps",
    ...                         rng=7, chunk_rows=16)
    >>> report.n_rows, report.n_chunks, report.n_groups
    (64, 4, 2)
    >>> report.published is not None
    True
    """
    strategy = get_strategy(strategy) if isinstance(strategy, str) else strategy
    if not _streamable(strategy):
        raise ValueError(
            f"strategy {strategy.name!r} is not streamable: it opted out "
            "(streamable = False) or neither exposes a group-batch "
            "chunk_publisher nor declares streams_rows; "
            "load the table and use repro.publish instead"
        )
    if strategy.generalizes and strategy.streams_rows:
        raise ValueError("row-stream strategies cannot generalize")
    if workers <= 0:
        raise ValueError("workers must be positive")

    started_tracing = False
    if track_memory:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            started_tracing = True
        tracemalloc.reset_peak()

    try:
        return _run(
            strategy, source, sensitive, rng, chunk_size, chunk_rows,
            int(workers), parallel_backend, audit,
            output, materialize, overwrite, delimiter, progress, track_memory, params,
        )
    finally:
        if started_tracing:
            tracemalloc.stop()


def _run(
    strategy: PublishStrategy,
    source: str | Path | IO[str],
    sensitive: str,
    rng: int | np.random.Generator | None,
    chunk_size: int,
    chunk_rows: int,
    workers: int,
    parallel_backend: str,
    audit: bool,
    output: str | Path | IO[str] | None,
    materialize: bool,
    overwrite: bool,
    delimiter: str,
    progress: ProgressCallback | None,
    track_memory: bool,
    params: dict[str, Any],
) -> StreamReport:
    timings: dict[str, float] = {}
    notify = progress or (lambda event: None)

    with span(
        "stream_publish", kind="publish", path="stream", strategy=strategy.name
    ) as root:
        # prepare: typed parameter resolution + seed normalisation.
        with span("prepare", kind="stage") as sp:
            resolved = strategy.resolve(params)
            seed = coerce_seed(rng)
            if chunk_size <= 0:
                raise ValueError("chunk_size must be positive")
        timings["prepare"] = sp.duration
        root.set(
            seed=seed, chunk_size=chunk_size, chunk_rows=chunk_rows, workers=workers
        )

        # Everything that owns on-disk state (the row spool, the CSV sink)
        # lives inside this one try: whatever fails — a bad row mid-read, a
        # strategy exception, a worker process dying mid-enforce — the
        # spool's temp files are closed and any owned partial output is
        # removed before the error propagates.
        spool: _RowSpool | None = None
        sink: Any = None
        try:
            # read: one bounded-memory pass over the source.  Time spent
            # writing the row spool is booked separately ("spool"), so the
            # read timing is pure parse+index work.
            spool_seconds = 0.0
            with span("read", kind="stage") as sp:
                reader = ChunkedReader(
                    source, sensitive, chunk_rows=chunk_rows, delimiter=delimiter
                )
                index: IncrementalGroupIndex | None = None
                for chunk in reader.chunks():
                    if index is None:
                        index = IncrementalGroupIndex(reader.public_names or [], sensitive)
                        if strategy.streams_rows:
                            spool = _RowSpool(len(reader.public_names or []) + 1)
                    if spool is not None:
                        encoded = index.update_encoded(chunk)
                        with span("spool", kind="io") as spool_sp:
                            spool.append(encoded)
                        spool_seconds += spool_sp.duration
                    else:
                        index.update(chunk)
                    notify({
                        "phase": "read",
                        "rows_read": reader.rows_read,
                        "chunks_read": reader.chunks_read,
                    })
                assert index is not None  # reader raises on empty input
                sp.set(rows=reader.rows_read, chunks=reader.chunks_read)
            timings["read"] = max(0.0, sp.duration - spool_seconds)
            timings["spool"] = spool_seconds

            # group index: finalize schema + lexicographically ordered groups.
            with span("group_index", kind="stage") as sp:
                schema, groups = index.finalize()
            timings["group_index"] = sp.duration
            notify({"phase": "group_index", "n_groups": len(groups)})

            # generalize: chi-square merging decided from streamed counts.
            with span("generalize", kind="stage", ran=strategy.generalizes) as sp:
                merges: tuple[AttributeMerge, ...] | None = None
                prepared_schema = schema
                metadata = dict(strategy.metadata_for(resolved))
                if strategy.generalizes:
                    m = schema.sensitive_domain_size
                    significance = resolved.get("significance", DEFAULT_SIGNIFICANCE)
                    merges = tuple(
                        merge_attribute_from_counts(
                            attribute,
                            conditional_sa_counts(groups, column, m),
                            m,
                            significance=significance,
                        )
                        for column, attribute in enumerate(schema.public)
                    )
                    prepared_schema = Schema(
                        public=tuple(merge.generalized for merge in merges),
                        sensitive=schema.sensitive,
                    )
                    groups = apply_code_maps(groups, [merge.code_map() for merge in merges])
                    metadata["generalized_domains"] = {
                        merge.original.name: {
                            "before": merge.original_domain_size,
                            "after": merge.generalized_domain_size,
                        }
                        for merge in merges
                    }
            timings["generalize"] = sp.duration

            spec = strategy.spec_for(_SchemaHolder(prepared_schema), resolved)

            # audit: Corollary 4 over the incremental groups (no table required).
            with span("audit", kind="stage", ran=audit and strategy.audits) as sp:
                privacy_audit: PrivacyAudit | None = None
                if audit and strategy.audits and spec is not None:
                    audits = tuple(audit_group(spec, group) for group in groups)
                    privacy_audit = PrivacyAudit(
                        spec=spec, groups=audits, total_records=index.n_rows
                    )
            timings["audit"] = sp.duration

            # enforce: drive the kernel per group batch (or replay the row
            # spool), writing published blocks straight to the sink in chunk
            # order.  Chunk spans recorded by the scheduler land under this
            # span.
            with span("enforce", kind="stage") as sp:
                if output is not None:
                    sink = _CsvSink(output, prepared_schema, overwrite=overwrite)
                elif materialize:
                    sink = _TableSink(prepared_schema)
                else:
                    sink = _NullSink()
                records: list[GroupPublication] = []
                if spool is not None:
                    _enforce_rows(
                        strategy, prepared_schema, spec, index, spool, seed,
                        workers, parallel_backend, sink, notify,
                    )
                else:
                    _enforce_groups(
                        strategy, prepared_schema, spec, resolved, groups,
                        seed, chunk_size, workers, parallel_backend, sink, records, notify,
                    )
            timings["enforce"] = sp.duration
            if sp.duration > 0.0:
                STREAM_ROWS_PER_SECOND.set(sink.records_written / sp.duration)

            # flush: close the sink — for CSV outputs this is the final
            # buffer flush to disk, previously invisible inside enforce.
            with span("flush", kind="stage") as sp:
                published = sink.close()
            timings["flush"] = sp.duration
        except BaseException:
            if sink is not None:
                sink.abort()
            raise
        finally:
            if spool is not None:
                spool.close()
        notify({"phase": "done", "published_records": sink.records_written})

        peak: int | None = None
        if track_memory:
            peak = tracemalloc.get_traced_memory()[1]
            TRACEMALLOC_PEAK.set(peak)

        # finalize: the residual of the run (spec resolution, report
        # assembly) so the stage timings sum to the root span's wall-clock.
        timings["finalize"] = max(0.0, root.elapsed() - sum(timings.values()))
        root.set(rows=index.n_rows, published_records=sink.records_written)

    PUBLISH_RUNS.inc(path="stream", strategy=strategy.name)
    ROWS_PUBLISHED.inc(sink.records_written, strategy=strategy.name)
    return StreamReport(
        strategy=strategy.name,
        params=resolved,
        seed=seed,
        chunk_rows=int(chunk_rows),
        chunk_size=int(chunk_size),
        workers=int(workers),
        n_rows=index.n_rows,
        n_chunks=reader.chunks_read,
        n_groups=len(groups),
        published_records=sink.records_written,
        schema=prepared_schema,
        spec=spec,
        audit=privacy_audit,
        groups=tuple(records),
        merges=merges,
        metadata=metadata,
        timings=timings,
        output=None if output is None else source_label(output),
        published=published if output is None else None,
        peak_tracked_bytes=peak,
    )


def _enforce_groups(
    strategy: PublishStrategy,
    schema: Schema,
    spec: PrivacySpec | None,
    resolved: dict[str, Any],
    groups: list[StreamGroup],
    seed: int,
    chunk_size: int,
    workers: int,
    backend: str,
    sink: Any,
    records: list[GroupPublication],
    notify: ProgressCallback,
) -> None:
    """Drive the strategy's group-batch kernel over seeded chunks, in chunk order.

    With ``workers > 1`` the chunks are dispatched through the shared
    scheduler (process pool by default) and, when the sink is a CSV, each
    worker also renders its block to CSV text — the ordered emitter inside
    the scheduler guarantees blocks reach the sink in chunk order, so the
    output bytes never depend on the worker count.
    """
    kernel = StrategyKernel(strategy, schema, spec, dict(resolved))
    try:
        # Fail fast in the parent (and cache the closure for the serial
        # path); workers rebuild their own copy after unpickling.
        kernel.build()
    except MissingChunkPublisher:
        raise ValueError(
            f"strategy {strategy.name!r} returned no chunk publisher for this "
            "configuration; it cannot publish out-of-core"
        ) from None
    encode = workers > 1 and isinstance(sink, _CsvSink)
    chunk_fn = CsvChunkKernel(kernel) if encode else kernel
    results = iter_chunk_results(
        groups, chunk_fn, seed, chunk_size, workers=workers, backend=backend
    )
    done = 0
    for payload, chunk_records in results:
        if encode:
            sink.write_encoded(payload)
        else:
            sink.write_block(payload)
        records.extend(chunk_records)
        done = min(done + chunk_size, len(groups))
        notify({
            "phase": "enforce",
            "groups_done": done,
            "n_groups": len(groups),
            "published_records": sink.records_written,
        })


def _enforce_rows(
    strategy: PublishStrategy,
    schema: Schema,
    spec: PrivacySpec | None,
    index: IncrementalGroupIndex,
    spool: _RowSpool,
    seed: int,
    workers: int,
    backend: str,
    sink: Any,
    notify: ProgressCallback,
) -> None:
    """Replay the row spool through the whole-table uniform perturbation.

    Byte-identity with ``UniformPerturbation.perturb_table`` holds because
    the in-memory path draws ``rng.random(n)`` then ``rng.integers(0, m, n)``,
    and chunked draws from the same generator consume the same stream: all
    retain draws happen first (phase one), all replacement draws second.

    With ``workers > 1`` the draws **stay sequential in the parent** (they
    define the byte contract and are cheap vectorised generator calls); the
    spool is partitioned block-wise across the pool, whose workers do the
    expensive parts — code remapping, perturbation apply and, for CSV sinks,
    the per-row render — and the ordered scheduler flushes their results in
    spool order.  The scheduler's submission backpressure caps in-flight
    blocks, so memory stays bounded by ``O(workers * chunk_rows)``.
    """
    if spec is None:  # pragma: no cover - uniform always has a spec
        raise ValueError(f"strategy {strategy.name!r} has no spec for row streaming")
    p = spec.retention_probability
    m = spec.domain_size
    generator = seeded_rng(seed)
    for block, _ in spool.replay():
        spool.append_retain(generator.random(block.shape[0]) < p)
        RNG_DRAWS.inc(block.shape[0])
    total = sum(spool.chunk_lengths)

    encode = workers > 1 and isinstance(sink, _CsvSink)
    kernel = UniformRowKernel(remaps=tuple(index.remaps), schema=schema, encode=encode)

    def payloads() -> Iterator[tuple[tuple[np.ndarray, np.ndarray | None, np.ndarray]]]:
        # Pulled lazily by the scheduler, so the phase-two draws happen in
        # spool order regardless of which worker finishes first.
        for block, retain in spool.replay(with_retain=True):
            replacements = generator.integers(0, m, size=block.shape[0])
            RNG_DRAWS.inc(block.shape[0])
            yield ((block, retain, replacements),)

    done = 0
    for result in iter_ordered_map(
        kernel, payloads(), workers=workers, backend=backend,
        n_tasks=len(spool.chunk_lengths),
    ):
        if encode:
            sink.write_encoded(result)
            done += result.n_rows
        else:
            sink.write_block(result)
            done += result.shape[0]
        notify({
            "phase": "enforce",
            "rows_done": done,
            "n_rows": total,
            "published_records": sink.records_written,
        })
