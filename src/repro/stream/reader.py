"""Bounded-memory chunked CSV reading.

:class:`ChunkedReader` is the ingestion half of the out-of-core publishing
engine: it walks a CSV source (path or open text stream) in chunks of at most
``chunk_rows`` records, validating each row against the header as it goes, so
peak memory is proportional to the chunk size rather than the file size.
Rows are yielded with the sensitive column moved last — the same record
layout :func:`repro.dataset.loaders.infer_schema` produces — so downstream
consumers never need to know where the SA column sat in the file.

The reader shares the tolerant-input contract of
:func:`repro.dataset.loaders.read_csv` by construction — both consume the
same :func:`repro.dataset.loaders.open_csv_rows` row source: a UTF-8
byte-order mark is stripped, CRLF line endings are handled by the
:mod:`csv` module, blank lines are skipped, and error messages name the
source and the offending line number.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterator, Sequence
from pathlib import Path
from typing import IO

from repro.dataset.loaders import open_csv_rows, source_label
from repro.pipeline.execution import DEFAULT_CHUNK_ROWS


class ChunkedReader:
    """Iterate a header-carrying CSV source as bounded-size row chunks.

    Parameters
    ----------
    source:
        CSV file path, or an open text-mode file-like object.  Paths are
        opened (and closed) per iteration and can therefore be read more
        than once; file-like sources are read exactly once and not closed.
    sensitive:
        Name of the sensitive column SA.  Each yielded row is reordered so
        this column comes last.
    chunk_rows:
        Maximum number of records per chunk (the final chunk may be
        smaller).
    delimiter:
        Field delimiter (default comma).

    Example:

    >>> import io
    >>> reader = ChunkedReader(
    ...     io.StringIO("City,Disease\\nOslo,Flu\\nBergen,Cold\\nOslo,Flu\\n"),
    ...     sensitive="Disease", chunk_rows=2)
    >>> [len(chunk) for chunk in reader.chunks()]
    [2, 1]
    >>> reader.rows_read, reader.header
    (3, ['City', 'Disease'])
    """

    def __init__(
        self,
        source: str | Path | IO[str],
        sensitive: str,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        delimiter: str = ",",
    ) -> None:
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        self._source = source
        self._sensitive = sensitive
        self._chunk_rows = int(chunk_rows)
        self._delimiter = delimiter
        self.label = source_label(source)
        #: Header of the last completed/started iteration (file column order).
        self.header: list[str] | None = None
        #: Public column names in header order (set once the header is read).
        self.public_names: list[str] | None = None
        #: Records yielded so far in the current iteration.
        self.rows_read = 0
        #: Chunks yielded so far in the current iteration.
        self.chunks_read = 0

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[str]],
        header: Sequence[str],
        sensitive: str,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        label: str = "appended rows",
    ) -> "ChunkedReader":
        """Build a reader over in-memory rows (file column order, no header row).

        The rows are rendered through the same CSV machinery a file source
        goes through, so every validation error a file read would name —
        ragged width, missing sensitive column, no rows at all — is raised
        here too, prefixed with ``label`` instead of a file path (e.g.
        ``"appended rows, line 3: row has 2 fields but the header has 3"``).
        This is what the delta engine hands appended row batches to.

        >>> reader = ChunkedReader.from_rows(
        ...     [["Oslo", "Flu"], ["Bergen", "Cold"]], ["City", "Disease"],
        ...     sensitive="Disease")
        >>> [len(chunk) for chunk in reader.chunks()]
        [2]
        """
        buffer = io.StringIO(newline="")
        writer = csv.writer(buffer)
        writer.writerow(list(header))
        writer.writerows(rows)
        buffer.seek(0)
        reader = cls(buffer, sensitive, chunk_rows=chunk_rows)
        reader.label = label
        return reader

    @classmethod
    def from_cursor(
        cls,
        cursor: Iterator[Sequence[object]],
        header: Sequence[str],
        sensitive: str,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        label: str = "database cursor",
    ) -> "ChunkedReader":
        """Build a reader over a DB-API cursor (or any row iterator).

        ``cursor`` yields value tuples in ``header`` order — exactly what
        ``SELECT`` over the source columns produces — and is drained
        incrementally: only ``chunk_rows`` rows are rendered to CSV text at
        a time, so a table larger than memory streams through at bounded
        cost.  Values are stringified with ``str()``; the same header and
        width validation as a file source applies, labelled with ``label``.
        Like a file-like source, a cursor is consumed exactly once.

        >>> rows = iter([("Oslo", "Flu"), ("Bergen", "Cold"), ("Oslo", "Flu")])
        >>> reader = ChunkedReader.from_cursor(
        ...     rows, ["City", "Disease"], sensitive="Disease", chunk_rows=2)
        >>> [len(chunk) for chunk in reader.chunks()]
        [2, 1]
        """
        reader = cls(_CursorStream(cursor, list(header)), sensitive, chunk_rows=chunk_rows)
        reader.label = label
        return reader

    @property
    def chunk_rows(self) -> int:
        """The configured maximum records per chunk."""
        return self._chunk_rows

    @property
    def sensitive(self) -> str:
        """The sensitive column name."""
        return self._sensitive

    def _open(self) -> tuple[IO[str], bool]:
        if hasattr(self._source, "read"):
            return self._source, False  # type: ignore[return-value]
        path = Path(self._source)  # type: ignore[arg-type]
        return path.open(newline="", encoding="utf-8-sig"), True

    def chunks(self) -> Iterator[list[list[str]]]:
        """Yield lists of at most ``chunk_rows`` records (NA values then SA).

        Raises :class:`~repro.dataset.schema.SchemaError` — naming the source
        and line number — on an empty source, a header without data rows, a
        header missing the sensitive column, or a row whose width does not
        match the header.
        """
        handle, owned = self._open()
        try:
            yield from self._chunks_from(handle)
        finally:
            if owned:
                handle.close()

    def _chunks_from(self, handle: IO[str]) -> Iterator[list[list[str]]]:
        header, rows = open_csv_rows(handle, self.label, self._sensitive, self._delimiter)
        sensitive_index = header.index(self._sensitive)
        self.header = header
        self.public_names = [h for i, h in enumerate(header) if i != sensitive_index]
        self.rows_read = 0
        self.chunks_read = 0

        chunk: list[list[str]] = []
        for row in rows:
            chunk.append(row)
            if len(chunk) >= self._chunk_rows:
                self.rows_read += len(chunk)
                self.chunks_read += 1
                yield chunk
                chunk = []
        if chunk:
            self.rows_read += len(chunk)
            self.chunks_read += 1
            yield chunk


class _CursorStream:
    """Lazy text-stream view of a row cursor, rendered as CSV lines.

    Satisfies just enough of the text-file protocol for
    :class:`ChunkedReader` (``read`` marks it as an open stream, iteration
    feeds :func:`csv.reader`): each row is rendered on demand, so draining a
    million-row cursor never holds more than one line of CSV text.
    """

    def __init__(self, cursor: Iterator[Sequence[object]], header: list[str]) -> None:
        self._lines = self._render(cursor, header)

    @staticmethod
    def _render(cursor: Iterator[Sequence[object]], header: list[str]) -> Iterator[str]:
        out = io.StringIO(newline="")
        writer = csv.writer(out)
        writer.writerow(header)
        yield out.getvalue()
        for row in cursor:
            out.seek(0)
            out.truncate(0)
            writer.writerow(["" if value is None else str(value) for value in row])
            yield out.getvalue()

    def __iter__(self) -> Iterator[str]:
        return self._lines

    def readline(self) -> str:
        return next(self._lines, "")

    def read(self, size: int = -1) -> str:
        return "".join(self._lines)
