"""The ``stream`` benchmark suite: out-of-core vs in-memory publishing.

Each scenario publishes a synthetic CSV twice — through
:func:`repro.stream.stream_publish` (bounded-memory, rows streamed to a CSV
sink) and through the classic load-then-:func:`repro.publish` path — and
records three things per point:

* **throughput** — rows/second of the streaming path (timed like every
  other suite);
* **peak tracked allocation** — ``tracemalloc`` peaks of both paths, in
  bytes.  Scenarios come in ×10 row-growth pairs, so the report shows the
  streaming peak staying flat while the in-memory peak grows with ``n``;
* **byte identity** — whether the streamed CSV equals the in-memory
  published table's CSV bit for bit (it must, for every scenario).

The suite writes ``BENCH_stream.json`` through the shared runner/schema
machinery; ``docs/streaming.md`` reads its numbers for the chunk-size tuning
guide.
"""

from __future__ import annotations

import io
import tracemalloc
from collections.abc import Callable
from pathlib import Path
from typing import Any

from repro.bench.scenarios import Scenario
from repro.bench.timing import TimingSpec, time_callable
from repro.dataset.loaders import read_csv, write_csv
from repro.pipeline import publish
from repro.stream import stream_publish

_SENSITIVE = {"adult": "Income", "census": "Occupation"}


def stream_scenarios(tiny: bool = False) -> list[Scenario]:
    """The stream-suite scenario list (×10 row-growth pairs per strategy).

    ``chunk_rows`` rides in ``params`` (it is a streaming-only axis); the
    scenario order — strategy-major, then rows ascending — is fixed so the
    emitted report is diffable, like every other suite's.
    """
    if tiny:
        points = [("sps", "adult", 1_000), ("sps", "adult", 10_000)]
        chunk_rows = 500
    else:
        points = [
            ("sps", "adult", 10_000),
            ("sps", "adult", 100_000),
            ("dp-laplace", "census", 10_000),
            ("dp-laplace", "census", 100_000),
        ]
        chunk_rows = 5_000
    return [
        Scenario(
            name=f"stream/{strategy}/{dataset}-{rows}/c256/r{chunk_rows}",
            suite="stream",
            strategy=strategy,
            dataset=dataset,
            rows=rows,
            chunk_size=256,
            workers=1,
            params={"chunk_rows": chunk_rows},
        )
        for strategy, dataset, rows in points
    ]


def _tracked_peak(fn: Callable[[], Any]) -> tuple[Any, int]:
    """Run ``fn`` once and return (result, peak tracemalloc bytes)."""
    started = not tracemalloc.is_tracing()
    if started:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = fn()
        return result, tracemalloc.get_traced_memory()[1]
    finally:
        if started:
            tracemalloc.stop()


def run_stream_scenario(
    scenario: Scenario,
    csv_path: Path,
    seed: int,
    timing: TimingSpec,
    workdir: Path,
) -> dict[str, Any]:
    """Benchmark one stream scenario against its in-memory twin."""
    sensitive = _SENSITIVE[scenario.dataset]
    chunk_rows = int(scenario.params["chunk_rows"])
    out_path = workdir / f"{scenario.dataset}-{scenario.rows}-out.csv"

    def streaming_once() -> Any:
        return stream_publish(
            csv_path,
            sensitive=sensitive,
            strategy=scenario.strategy,
            rng=seed,
            chunk_size=scenario.chunk_size,
            chunk_rows=chunk_rows,
            output=out_path,
        )

    def inmemory_once() -> Any:
        table = read_csv(csv_path, sensitive=sensitive)
        report = publish(
            table, strategy=scenario.strategy, rng=seed, chunk_size=scenario.chunk_size
        )
        buffer = io.StringIO()
        write_csv(report.published, buffer)
        return buffer.getvalue()

    report, measurement = time_callable(streaming_once, timing)
    _, stream_peak = _tracked_peak(streaming_once)
    inmemory_csv, inmemory_peak = _tracked_peak(inmemory_once)
    byte_identical = out_path.read_bytes().decode("utf-8") == inmemory_csv

    entry = scenario.to_json()
    entry["ops"] = {
        "rows": scenario.rows,
        "published_records": report.published_records,
        "n_groups": report.n_groups,
        "chunks_read": report.n_chunks,
        "rows_per_second": scenario.rows / measurement.best,
        "peak_tracked_streaming_bytes": int(stream_peak),
        "peak_tracked_inmemory_bytes": int(inmemory_peak),
        "byte_identical": bool(byte_identical),
    }
    entry["seconds"] = measurement.to_json()
    entry["stages"] = {stage: float(s) for stage, s in report.timings.items()}
    return entry
