"""The ``serve`` benchmark suite: concurrent load against a live front end.

Each **audit** scenario boots a :class:`~repro.serve.frontend.ServingFrontend`
on an ephemeral port, registers one synthetic dataset, and drives N
concurrent keep-alive clients at ``GET /audit`` in three phases:

* **uncached** — the response cache disabled (the group index warm, so
  every response is deterministic): per-request latency and throughput of
  the recompute path;
* **cached** — the cache enabled and filled: the same load served from
  memory, plus the cache-hit ratio observed via the ``X-Cache`` headers;
* **invalidation** — the dataset re-registered (same table), which must
  drop the cached entries; the next recomputed response must byte-match
  the reference.

The report's verdicts are the serving tentpole's acceptance criteria:
``cache_speedup`` (mean uncached latency over mean cached latency, ≥ 5× at
default scale) and ``byte_identical`` (zero divergence between cached,
uncached and post-invalidation bodies).

Each **backpressure** scenario floods a deliberately tiny server
(``workers=1``, ``queue_limit=1``) with simultaneous publish requests and
verifies overload is *shed*, not absorbed: some requests complete, some are
rejected, every rejection is a ``429`` carrying ``Retry-After``, and none
hang.

The suite writes ``BENCH_serve.json`` through the shared runner/schema
machinery; ``scripts/check_bench_regression.py`` gates its latency and
verdict fields in CI and ``docs/serving.md`` reads its numbers.
"""

from __future__ import annotations

import http.client
import json
import math
import threading
import time
from typing import Any

from repro.bench.scenarios import Scenario
from repro.bench.timing import TimingSpec, time_callable
from repro.serve.frontend import ServingFrontend
from repro.service.engine import AnonymizationService

#: Chunk size for the publish jobs the backpressure flood runs (the audit
#: scenarios never publish; the field is part of every scenario's identity).
_CHUNK_SIZE = 256


def serve_scenarios(tiny: bool = False) -> list[Scenario]:
    """The serve-suite scenario list: audit load points plus a flood.

    The ``strategy`` slot names the driven endpoint (``audit`` or
    ``backpressure``); ``workers`` is the *server's* worker-thread count and
    ``params`` carries the client-side load shape plus the queue bound.
    """
    # (kind, dataset, rows, server workers, queue limit, clients, req/client)
    if tiny:
        points = [
            ("audit", "adult", 2_000, 4, 64, 4, 10),
            ("backpressure", "adult", 2_000, 1, 1, 8, 2),
        ]
    else:
        points = [
            ("audit", "adult", 20_000, 8, 64, 8, 25),
            ("audit", "census", 50_000, 8, 64, 8, 25),
            ("backpressure", "adult", 20_000, 1, 1, 8, 2),
        ]
    return [
        Scenario(
            name=f"serve/{kind}/{dataset}-{rows}/c{clients}",
            suite="serve",
            strategy=kind,
            dataset=dataset,
            rows=rows,
            chunk_size=_CHUNK_SIZE,
            workers=workers,
            params={
                "clients": clients,
                "requests_per_client": per_client,
                "queue_limit": queue_limit,
            },
        )
        for kind, dataset, rows, workers, queue_limit, clients, per_client in points
    ]


def _percentile(latencies: list[float], q: float) -> float:
    """The ``q``-quantile of a non-empty latency sample (nearest-rank)."""
    ranked = sorted(latencies)
    rank = max(1, math.ceil(q * len(ranked)))
    return float(ranked[rank - 1])


class _LoadResult:
    """One load phase's outcome: latencies, bodies, headers, wall time."""

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.bodies: list[bytes] = []
        self.cache_headers: list[str] = []
        self.statuses: list[int] = []
        self.wall_seconds = 0.0

    @property
    def requests(self) -> int:
        return len(self.latencies)


def _drive_load(
    host: str, port: int, path: str, clients: int, per_client: int
) -> _LoadResult:
    """Drive ``clients`` keep-alive connections at ``path`` simultaneously."""
    result = _LoadResult()
    lock = threading.Lock()
    barrier = threading.Barrier(clients)
    errors: list[BaseException] = []

    def client() -> None:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        local: list[tuple[float, int, str, bytes]] = []
        try:
            barrier.wait()
            for _ in range(per_client):
                begin = time.perf_counter()
                conn.request("GET", path)
                response = conn.getresponse()
                body = response.read()
                local.append(
                    (
                        time.perf_counter() - begin,
                        response.status,
                        response.headers.get("X-Cache", ""),
                        body,
                    )
                )
        except BaseException as exc:  # surfaced after the join
            with lock:
                errors.append(exc)
        finally:
            conn.close()
        with lock:
            for latency, status, cache_header, body in local:
                result.latencies.append(latency)
                result.statuses.append(status)
                result.cache_headers.append(cache_header)
                result.bodies.append(body)

    threads = [threading.Thread(target=client) for _ in range(clients)]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.wall_seconds = time.perf_counter() - begin
    if errors:
        raise RuntimeError(f"load client failed: {errors[0]}") from errors[0]
    return result


def _get(host: str, port: int, path: str) -> tuple[int, str, bytes]:
    """One request on a fresh connection: (status, X-Cache header, body)."""
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.headers.get("X-Cache", ""), response.read()
    finally:
        conn.close()


def run_serve_scenario(
    scenario: Scenario, seed: int, timing: TimingSpec
) -> dict[str, Any]:
    """Benchmark one serve scenario against a live ephemeral-port server."""
    dataset_name = f"{scenario.dataset}-{scenario.rows}"
    service = AnonymizationService()
    service.register_synthetic(
        dataset_name, scenario.dataset, n_records=scenario.rows, seed=seed
    )
    frontend = ServingFrontend(
        service,
        port=0,
        workers=scenario.workers,
        queue_limit=int(scenario.params["queue_limit"]),
    )
    try:
        with frontend:
            if scenario.strategy == "audit":
                entry = _run_audit_phases(scenario, frontend, dataset_name, seed, timing)
            elif scenario.strategy == "backpressure":
                entry = _run_backpressure(scenario, frontend, dataset_name, seed, timing)
            else:
                raise ValueError(f"unknown serve scenario kind {scenario.strategy!r}")
    finally:
        service.close()
    return entry


def _run_audit_phases(
    scenario: Scenario,
    frontend: ServingFrontend,
    dataset_name: str,
    seed: int,
    timing: TimingSpec,
) -> dict[str, Any]:
    host, port = frontend.host, frontend.port
    clients = int(scenario.params["clients"])
    per_client = int(scenario.params["requests_per_client"])
    path = f"/audit?dataset={dataset_name}"
    cache = frontend.cache
    assert cache is not None

    # Warm the group index (the cold audit carries the real build time and
    # is not deterministic); every later response is a pure function of the
    # table and the resolved parameters.
    _get(host, port, path)
    status, _, reference = _get(host, port, path)
    if status != 200:
        raise RuntimeError(f"audit warmup failed with status {status}")

    # Phase A — uncached: every request recomputes on a worker.
    cache.enabled = False
    uncached, uncached_meas = time_callable(
        lambda: _drive_load(host, port, path, clients, per_client), timing
    )

    # Phase B — cached: fill once, then the same load serves from memory.
    cache.enabled = True
    _get(host, port, path)  # miss: fills the cache
    cached, cached_meas = time_callable(
        lambda: _drive_load(host, port, path, clients, per_client), timing
    )

    # Phase C — invalidation: re-registering the same table must drop the
    # cached entries; after re-warming the index, the recomputed response
    # must byte-match the reference.
    frontend.service.register_synthetic(
        dataset_name, scenario.dataset, n_records=scenario.rows, seed=seed, replace=True
    )
    post_status, post_cache, _ = _get(host, port, path)  # cold rebuild, not stored
    status_2, cache_2, post_body = _get(host, port, path)  # warm recompute
    invalidated = post_cache != "hit" and cache_2 != "hit"
    if post_status != 200 or status_2 != 200:
        raise RuntimeError("post-invalidation audit failed")

    bodies_uncached_ok = all(body == reference for body in uncached.bodies)
    bodies_cached_ok = all(body == reference for body in cached.bodies)
    byte_identical = bodies_uncached_ok and bodies_cached_ok and post_body == reference
    hits = sum(1 for header in cached.cache_headers if header == "hit")
    hit_ratio = hits / max(1, cached.requests)
    uncached_mean = sum(uncached.latencies) / max(1, uncached.requests)
    cached_mean = sum(cached.latencies) / max(1, cached.requests)

    entry = scenario.to_json()
    entry["ops"] = {
        "requests": cached.requests,
        "throughput_rps": cached.requests / cached.wall_seconds,
        "uncached_throughput_rps": uncached.requests / uncached.wall_seconds,
        "p50_seconds": _percentile(cached.latencies, 0.50),
        "p95_seconds": _percentile(cached.latencies, 0.95),
        "p99_seconds": _percentile(cached.latencies, 0.99),
        "uncached_p50_seconds": _percentile(uncached.latencies, 0.50),
        "uncached_p95_seconds": _percentile(uncached.latencies, 0.95),
        "uncached_p99_seconds": _percentile(uncached.latencies, 0.99),
        "cache_hit_ratio": hit_ratio,
        "cache_speedup": uncached_mean / max(cached_mean, 1e-9),
        "queue_rejections": frontend.dispatcher.rejections,
        "invalidation_observed": bool(invalidated),
        "byte_identical": bool(byte_identical),
    }
    entry["seconds"] = cached_meas.to_json()
    entry["stages"] = {
        "cached_load": float(cached_meas.best),
        "uncached_load": float(uncached_meas.best),
    }
    return entry


def _run_backpressure(
    scenario: Scenario,
    frontend: ServingFrontend,
    dataset_name: str,
    seed: int,
    timing: TimingSpec,
) -> dict[str, Any]:
    host, port = frontend.host, frontend.port
    clients = int(scenario.params["clients"])
    per_client = int(scenario.params["requests_per_client"])
    payload = json.dumps(
        {"dataset": dataset_name, "backend": "sps", "seed": seed}
    ).encode("utf-8")

    def flood() -> dict[str, Any]:
        lock = threading.Lock()
        barrier = threading.Barrier(clients)
        outcomes: list[tuple[int, str]] = []
        latencies: list[float] = []

        def client() -> None:
            barrier.wait()
            for _ in range(per_client):
                # 429 responses close the connection, so the flood uses one
                # connection per request.
                conn = http.client.HTTPConnection(host, port, timeout=60)
                try:
                    begin = time.perf_counter()
                    conn.request(
                        "POST",
                        "/publish",
                        body=payload,
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    response.read()
                    with lock:
                        latencies.append(time.perf_counter() - begin)
                        outcomes.append(
                            (response.status, response.headers.get("Retry-After", ""))
                        )
                finally:
                    conn.close()

        threads = [threading.Thread(target=client) for _ in range(clients)]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return {
            "wall": time.perf_counter() - begin,
            "outcomes": outcomes,
            "latencies": latencies,
        }

    result, measurement = time_callable(flood, timing)
    outcomes: list[tuple[int, str]] = result["outcomes"]
    latencies: list[float] = result["latencies"]
    completed = sum(1 for status, _ in outcomes if status == 201)
    rejected = [(status, retry) for status, retry in outcomes if status == 429]
    hung_or_failed = sum(1 for status, _ in outcomes if status not in (201, 429))
    retry_after_ok = all(retry for _, retry in rejected)

    entry = scenario.to_json()
    entry["ops"] = {
        "requests": len(outcomes),
        "throughput_rps": len(outcomes) / result["wall"],
        "p50_seconds": _percentile(latencies, 0.50),
        "p95_seconds": _percentile(latencies, 0.95),
        "p99_seconds": _percentile(latencies, 0.99),
        "cache_hit_ratio": 0.0,
        "completed": completed,
        "rejected": len(rejected),
        "unexpected_statuses": hung_or_failed,
        "queue_rejections": frontend.dispatcher.rejections,
        "all_rejections_have_retry_after": bool(retry_after_ok),
        "shed_load": bool(rejected and completed >= 1 and hung_or_failed == 0),
    }
    entry["seconds"] = measurement.to_json()
    entry["stages"] = {"flood": float(measurement.best)}
    return entry
