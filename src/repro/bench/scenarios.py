"""The benchmark scenario matrix.

A :class:`Scenario` is one timed publishing configuration — a point in the
``strategy × dataset size × chunk_size × workers`` grid.  A
:class:`ScenarioMatrix` expands those axes into the full cross product in a
fixed, deterministic order, so a given matrix always produces the same
scenario set (the emitted ``BENCH_*.json`` files are diffable across PRs).

Two suites are built from matrices:

* ``core`` — times :func:`repro.publish` (the library path, serial chunk
  execution, so the ``workers`` axis is pinned to 1);
* ``service`` — times :meth:`repro.service.AnonymizationService.publish`
  (the shared-scheduler path, exercising the ``workers`` axis and the dataset
  registry's cached group index).

Each suite has a ``tiny`` preset (seconds, used by CI's bench-smoke job and
the test suite) and a ``default`` preset (the paper-scale sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Scenario:
    """One timed configuration: a point of the benchmark matrix."""

    name: str
    suite: str
    strategy: str
    dataset: str
    rows: int
    chunk_size: int
    workers: int
    params: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        """The scenario's identity as a JSON-compatible dict."""
        return {
            "name": self.name,
            "strategy": self.strategy,
            "dataset": self.dataset,
            "rows": self.rows,
            "chunk_size": self.chunk_size,
            "workers": self.workers,
            "params": dict(self.params),
        }


@dataclass(frozen=True)
class ScenarioMatrix:
    """The four benchmark axes; :meth:`expand` yields their cross product.

    Expansion order is strategy-major, then dataset, then chunk size, then
    workers — fixed so that the scenario list (and therefore the report's
    scenario order) is a pure function of the matrix.
    """

    strategies: tuple[str, ...]
    datasets: tuple[tuple[str, int], ...]  # (generator name, rows)
    chunk_sizes: tuple[int, ...]
    workers: tuple[int, ...] = (1,)

    def expand(self, suite: str) -> list[Scenario]:
        """All scenarios of the matrix, in deterministic order."""
        scenarios = []
        for strategy in self.strategies:
            for dataset, rows in self.datasets:
                for chunk_size in self.chunk_sizes:
                    for workers in self.workers:
                        scenarios.append(
                            Scenario(
                                name=scenario_name(strategy, dataset, rows, chunk_size, workers),
                                suite=suite,
                                strategy=strategy,
                                dataset=dataset,
                                rows=rows,
                                chunk_size=chunk_size,
                                workers=workers,
                            )
                        )
        return scenarios

    @property
    def size(self) -> int:
        """Number of scenarios the matrix expands to."""
        return (
            len(self.strategies) * len(self.datasets) * len(self.chunk_sizes) * len(self.workers)
        )


def scenario_name(strategy: str, dataset: str, rows: int, chunk_size: int, workers: int) -> str:
    """The canonical scenario name, e.g. ``sps/adult-2000/c64/w1``."""
    return f"{strategy}/{dataset}-{rows}/c{chunk_size}/w{workers}"


#: All strategies exercised by the default core matrix.
ALL_STRATEGIES = ("sps", "uniform", "dp-laplace", "dp-gaussian", "generalize+sps")


def core_matrix(tiny: bool = False) -> ScenarioMatrix:
    """The library-path matrix (serial execution, so one worker)."""
    if tiny:
        return ScenarioMatrix(
            strategies=("sps", "uniform", "generalize+sps"),
            datasets=(("adult", 2_000), ("census", 5_000)),
            chunk_sizes=(64, 256),
        )
    return ScenarioMatrix(
        strategies=ALL_STRATEGIES,
        datasets=(("adult", 45_222), ("census", 100_000)),
        chunk_sizes=(256, 1024),
    )


def service_matrix(tiny: bool = False) -> ScenarioMatrix:
    """The service-path matrix (scheduler execution; workers is a real axis)."""
    if tiny:
        return ScenarioMatrix(
            strategies=("sps", "generalize+sps"),
            datasets=(("adult", 2_000),),
            chunk_sizes=(64,),
            workers=(1, 4),
        )
    return ScenarioMatrix(
        strategies=("sps", "generalize+sps", "dp-laplace"),
        datasets=(("adult", 45_222), ("census", 100_000)),
        chunk_sizes=(256,),
        workers=(1, 4, 8),
    )


def matrix_for(suite: str, tiny: bool = False) -> ScenarioMatrix:
    """The preset matrix of a suite (``core`` or ``service``)."""
    if suite == "core":
        return core_matrix(tiny)
    if suite == "service":
        return service_matrix(tiny)
    raise ValueError(f"no scenario matrix for suite {suite!r}; choose 'core' or 'service'")
