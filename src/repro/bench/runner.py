"""Execute benchmark suites and emit the ``BENCH_*.json`` reports.

Three suites:

* ``core`` — the scenario matrix through :func:`repro.publish` (library
  path), plus the vectorization micro-benchmarks of
  :mod:`repro.bench.micro`;
* ``service`` — the scenario matrix through
  :class:`repro.service.AnonymizationService` (shared-scheduler path, cached
  group indexes);
* ``paper`` — the twelve named paper scenarios of
  :mod:`repro.bench.paper`;
* ``stream`` — out-of-core vs in-memory publishing over ×10 row-growth
  pairs (:mod:`repro.bench.stream`): rows/sec, peak tracked allocation of
  both paths, and a per-scenario byte-identity verdict;
* ``parallel`` — worker-count scaling of the shared scheduler
  (:mod:`repro.bench.parallel`): strategy × workers in {1, 2, 4}, rows/sec,
  ``speedup_vs_w1`` and a per-scenario byte-identity verdict against both
  the sequential stream and the in-memory pipeline;
* ``delta`` — incremental vs full re-publish over shrinking append
  fractions (:mod:`repro.bench.delta`): ``speedup_vs_full``, the
  dirty-chunk fraction and a per-scenario byte-identity verdict of the
  spliced output against a from-scratch re-publish;
* ``serve`` — concurrent clients against a live
  :class:`~repro.serve.frontend.ServingFrontend` (:mod:`repro.bench.serve`):
  throughput, p50/p95/p99 latency, cache hit ratio, ``cache_speedup`` of the
  response cache, queue-rejection counts and a byte-identity verdict across
  cached/uncached/post-invalidation responses.

Determinism contract: for a fixed ``(suite, tiny, seed, filter)`` the
scenario set, every scenario's operation counts and the published bytes
behind them are identical run-to-run — only the wall-clock fields move.
Reports are written to ``BENCH_<suite>.json`` (schema-checked before
writing) so the repo root carries a diffable perf trajectory.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.bench.micro import run_micro_benchmarks
from repro.bench.paper import available_paper_scenarios, paper_scenario, smoke_config
from repro.bench.scenarios import Scenario, matrix_for
from repro.bench.schema import SCHEMA_VERSION, validate_report
from repro.bench.timing import TimingSpec, time_callable
from repro.dataset.adult import generate_adult
from repro.dataset.census import generate_census
from repro.experiments.config import ExperimentConfig
from repro.obs.environment import runtime_environment
from repro.obs.trace import span
from repro.pipeline import publish

_GENERATORS = {"adult": generate_adult, "census": generate_census}

#: Default root seed (the same EDBT-date seed the experiments use).
DEFAULT_BENCH_SEED = 20150323


def default_timing(suite: str) -> TimingSpec:
    """The default timer for a suite — the single source the CLI also reads.

    Paper scenarios are minutes-scale at default sizes, so they get one
    untimed-warmup-free pass; the matrix suites get warmup + best-of-3.
    """
    return TimingSpec(warmup=0, repeats=1) if suite == "paper" else TimingSpec()


class _DatasetCache:
    """Synthetic tables keyed by (generator, rows), built once per run."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._tables: dict[tuple[str, int], Any] = {}

    def get(self, dataset: str, rows: int) -> Any:
        key = (dataset, rows)
        if key not in self._tables:
            self._tables[key] = _GENERATORS[dataset](rows, seed=self._seed)
        return self._tables[key]


def _filter_scenarios(scenarios: list[Scenario], names: Sequence[str] | None) -> list[Scenario]:
    if not names:
        return scenarios
    wanted = set(names)
    kept = [s for s in scenarios if s.name in wanted or s.strategy in wanted]
    missing = wanted - {s.name for s in kept} - {s.strategy for s in kept}
    if missing:
        raise ValueError(
            f"unknown scenario filter(s) {sorted(missing)}; "
            "filters match a scenario name or a strategy name"
        )
    return kept


def run_core_scenario(
    scenario: Scenario, cache: _DatasetCache, seed: int, timing: TimingSpec
) -> dict[str, Any]:
    """Time one library-path scenario and return its report entry."""
    table = cache.get(scenario.dataset, scenario.rows)

    def once() -> Any:
        return publish(
            table,
            strategy=scenario.strategy,
            rng=seed,
            chunk_size=scenario.chunk_size,
            **scenario.params,
        )

    report, measurement = time_callable(once, timing)
    ops: dict[str, Any] = {
        "published_records": len(report.published),
        "prepared_records": len(report.prepared),
        "n_group_records": len(report.groups),
        "n_sampled_groups": report.n_sampled_groups,
    }
    if report.audit is not None:
        ops["n_groups"] = report.audit.n_groups
        ops["n_violating_groups"] = len(report.audit.violating_groups)
    entry = scenario.to_json()
    entry["ops"] = ops
    entry["seconds"] = measurement.to_json()
    entry["stages"] = {stage: float(s) for stage, s in report.timings.items()}
    return entry


def run_service_scenario(
    scenario: Scenario, service: Any, seed: int, timing: TimingSpec
) -> dict[str, Any]:
    """Time one service-path scenario (cached group index, shared scheduler)."""
    dataset_name = f"{scenario.dataset}-{scenario.rows}"

    def once() -> Any:
        return service.publish(
            dataset_name,
            scenario.strategy,
            params=scenario.params,
            seed=seed,
            chunk_size=scenario.chunk_size,
            max_workers=scenario.workers,
        )

    record, measurement = time_callable(once, timing)
    ops: dict[str, Any] = {
        "published_records": record.published_records,
        "group_index_cached": bool(record.timings.group_index_cached),
    }
    if record.audit is not None:
        ops["n_groups"] = record.audit.n_groups
        ops["n_violating_groups"] = record.audit.n_violating_groups
    entry = scenario.to_json()
    entry["ops"] = ops
    entry["seconds"] = measurement.to_json()
    entry["stages"] = {
        "group_index": float(record.timings.group_index_seconds),
        "publish": float(record.timings.publish_seconds),
        "total": float(record.timings.total_seconds),
    }
    return entry


def _paper_config(tiny: bool) -> ExperimentConfig:
    return smoke_config() if tiny else ExperimentConfig()


def run_paper_entry(name: str, tiny: bool, timing: TimingSpec) -> dict[str, Any]:
    """Run one named paper scenario and return its report entry.

    The scenario's shape checks run whenever the data scale supports them
    (always for closed-form exhibits; the Monte-Carlo sweeps are only
    checked at the default scale — the tiny smoke sizes are below their
    calibration).
    """
    scenario = paper_scenario(name)
    config = _paper_config(tiny)
    result, measurement = time_callable(lambda: scenario.run(config), timing)
    checked = scenario.checks_at_tiny or not tiny
    if checked:
        scenario.check(result, config)
    ops = {str(k): v for k, v in scenario.summarize(result).items()}
    ops["checked"] = checked
    return {
        "name": name,
        "title": scenario.title,
        "ops": ops,
        "seconds": measurement.to_json(),
    }


def run_suite(
    suite: str,
    tiny: bool = False,
    seed: int = DEFAULT_BENCH_SEED,
    timing: TimingSpec | None = None,
    scenario_filter: Sequence[str] | None = None,
    include_micro: bool = True,
) -> dict[str, Any]:
    """Run a whole suite and return the (schema-valid) report document."""
    if timing is None:
        timing = default_timing(suite)
    entries: list[dict[str, Any]] = []
    micro: list[dict[str, Any]] | None = None

    if suite == "paper":
        names = list(scenario_filter) if scenario_filter else available_paper_scenarios()
        unknown = set(names) - set(available_paper_scenarios())
        if unknown:
            raise ValueError(f"unknown paper scenario(s) {sorted(unknown)}")
        for name in names:
            with span(name, kind="scenario", suite=suite):
                entries.append(run_paper_entry(name, tiny, timing))
    elif suite == "core":
        scenarios = _filter_scenarios(matrix_for("core", tiny).expand("core"), scenario_filter)
        cache = _DatasetCache(seed)
        for scenario in scenarios:
            with span(scenario.name, kind="scenario", suite=suite):
                entries.append(run_core_scenario(scenario, cache, seed, timing))
        if include_micro:
            micro = run_micro_benchmarks(seed, tiny=tiny, timing=timing)
    elif suite == "stream":
        import tempfile

        from repro.bench.stream import run_stream_scenario, stream_scenarios
        from repro.dataset.loaders import write_csv

        scenarios = _filter_scenarios(stream_scenarios(tiny), scenario_filter)
        cache = _DatasetCache(seed)
        with tempfile.TemporaryDirectory(prefix="repro-bench-stream-") as tmp:
            workdir = Path(tmp)
            csv_paths: dict[tuple[str, int], Path] = {}
            for scenario in scenarios:
                key = (scenario.dataset, scenario.rows)
                if key not in csv_paths:
                    path = workdir / f"{scenario.dataset}-{scenario.rows}.csv"
                    write_csv(cache.get(scenario.dataset, scenario.rows), path)
                    csv_paths[key] = path
                with span(scenario.name, kind="scenario", suite=suite):
                    entries.append(
                        run_stream_scenario(scenario, csv_paths[key], seed, timing, workdir)
                    )
    elif suite == "parallel":
        import tempfile

        from repro.bench.parallel import parallel_scenarios, run_parallel_scenario
        from repro.dataset.loaders import write_csv

        scenarios = _filter_scenarios(parallel_scenarios(tiny), scenario_filter)
        cache = _DatasetCache(seed)
        with tempfile.TemporaryDirectory(prefix="repro-bench-parallel-") as tmp:
            workdir = Path(tmp)
            csv_paths: dict[tuple[str, int], Path] = {}
            baselines: dict[tuple[str, str, int], dict[str, Any]] = {}
            for scenario in scenarios:
                key = (scenario.dataset, scenario.rows)
                if key not in csv_paths:
                    path = workdir / f"{scenario.dataset}-{scenario.rows}.csv"
                    write_csv(cache.get(scenario.dataset, scenario.rows), path)
                    csv_paths[key] = path
                with span(scenario.name, kind="scenario", suite=suite):
                    entries.append(
                        run_parallel_scenario(
                            scenario, csv_paths[key], seed, timing, workdir, baselines
                        )
                    )
    elif suite == "delta":
        import tempfile

        from repro.bench.delta import delta_scenarios, run_delta_scenario

        scenarios = _filter_scenarios(delta_scenarios(tiny), scenario_filter)
        cache = _DatasetCache(seed)
        with tempfile.TemporaryDirectory(prefix="repro-bench-delta-") as tmp:
            workdir = Path(tmp)
            for scenario in scenarios:
                table = cache.get(scenario.dataset, scenario.rows)
                with span(scenario.name, kind="scenario", suite=suite):
                    entries.append(
                        run_delta_scenario(scenario, table, seed, timing, workdir)
                    )
    elif suite == "serve":
        from repro.bench.serve import run_serve_scenario, serve_scenarios

        scenarios = _filter_scenarios(serve_scenarios(tiny), scenario_filter)
        for scenario in scenarios:
            with span(scenario.name, kind="scenario", suite=suite):
                entries.append(run_serve_scenario(scenario, seed, timing))
    elif suite == "service":
        from repro.service import AnonymizationService, JobStore

        scenarios = _filter_scenarios(matrix_for("service", tiny).expand("service"), scenario_filter)
        service = AnonymizationService()
        # Every timed pass records a job; keep only the latest published
        # table resident so a long matrix doesn't accumulate hundreds of MB.
        service.jobs = JobStore(max_published_tables=1)
        for dataset, rows in sorted({(s.dataset, s.rows) for s in scenarios}):
            service.register_synthetic(f"{dataset}-{rows}", dataset, n_records=rows, seed=seed)
        for scenario in scenarios:
            with span(scenario.name, kind="scenario", suite=suite):
                entries.append(run_service_scenario(scenario, service, seed, timing))
    else:
        raise ValueError(
            f"unknown suite {suite!r}; choose core, service, paper, stream, "
            "parallel, delta or serve"
        )

    report: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "scale": "tiny" if tiny else "default",
        "seed": int(seed),
        "timing": timing.to_json(),
        # The canonical per-process record from repro.obs — the same dict
        # trace headers and /metrics report, so numbers stay comparable.
        # Worker-scaling numbers (the parallel suite) only mean anything
        # read against the cores the run actually had.
        "environment": dict(runtime_environment()),
        "scenarios": entries,
    }
    if micro is not None:
        report["micro"] = micro
    validate_report(report)
    return report


def report_path(suite: str, output_dir: str | Path = ".") -> Path:
    """The canonical report file for a suite, e.g. ``BENCH_core.json``."""
    return Path(output_dir) / f"BENCH_{suite}.json"


def write_report(report: dict[str, Any], output_dir: str | Path = ".") -> Path:
    """Schema-check ``report`` and write it to ``BENCH_<suite>.json``."""
    validate_report(report)
    path = report_path(report["suite"], output_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
