"""Deterministic warmup/repeat timing.

Wall-clock numbers are never deterministic, but everything else about a
measurement is made so: the callable runs ``warmup`` discarded passes (JIT-ish
effects, cache warming, lazy imports) followed by exactly ``repeats`` timed
passes, and the callable itself is seeded by the caller — so the *work*
performed in every pass, and therefore the recorded operation counts, are a
pure function of the seed.  The best-of-repeats time is the headline number
(least scheduling noise); mean and standard deviation are kept alongside it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

import numpy as np


@dataclass(frozen=True)
class TimingSpec:
    """How many passes to run: ``warmup`` discarded, ``repeats`` timed."""

    warmup: int = 1
    repeats: int = 3

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.repeats < 1:
            raise ValueError("repeats must be at least 1")

    def to_json(self) -> dict[str, int]:
        """JSON form for the report header."""
        return {"warmup": self.warmup, "repeats": self.repeats}


@dataclass(frozen=True)
class Measurement:
    """Per-repeat wall-clock seconds of one timed callable."""

    seconds: tuple[float, ...]

    @property
    def best(self) -> float:
        """Fastest repeat — the headline, least-noise number."""
        return min(self.seconds)

    @property
    def mean(self) -> float:
        """Mean over the repeats."""
        return float(np.mean(self.seconds))

    @property
    def std(self) -> float:
        """Population standard deviation over the repeats."""
        return float(np.std(self.seconds))

    def to_json(self) -> dict[str, Any]:
        """JSON form: best/mean/std plus the raw per-repeat times."""
        return {
            "best": self.best,
            "mean": self.mean,
            "std": self.std,
            "repeats": [float(s) for s in self.seconds],
        }


def time_callable(fn: Callable[[], Any], spec: TimingSpec = TimingSpec()) -> tuple[Any, Measurement]:
    """Run ``fn`` with warmup + repeats; return its last result and the times.

    ``fn`` must be self-contained (re-seed its own randomness internally) so
    every pass performs identical work; the last pass's return value is handed
    back for operation counting.
    """
    for _ in range(spec.warmup):
        fn()
    seconds = []
    result: Any = None
    for _ in range(spec.repeats):
        start = time.perf_counter()
        result = fn()
        seconds.append(time.perf_counter() - start)
    return result, Measurement(seconds=tuple(seconds))
