"""The paper's tables, figures and ablations as named benchmark scenarios.

Each of the twelve ``benchmarks/bench_*.py`` scripts used to carry its own
run / render / assert logic; that logic now lives here as a
:class:`PaperScenario` so the same scenario is reachable three ways:

* ``repro-bench run --suite paper --scenario figure3`` (timed, JSON report);
* ``pytest benchmarks/`` (the scripts are thin wrappers over this registry,
  keeping the pytest-benchmark workflow and the ``benchmarks/results/``
  artifacts);
* programmatically, via :func:`paper_scenario`.

A scenario bundles four callables: ``run(config)`` produces the result,
``render(result)`` the plain-text table/series, ``check(result, config)``
the qualitative shape assertions of the corresponding paper exhibit, and
``summarize(result)`` a small dict of deterministic operation counts for the
JSON report.  ``checks_at_tiny`` declares whether those assertions hold at
any data size (closed-form exhibits) or only from the quick/default scales
up (the Monte-Carlo sweeps) — the runner and the smoke tests skip the
checks at tiny sizes for the latter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.analysis.utility import compare_up_and_sps
from repro.core.criterion import PrivacySpec, smallest_error_bound
from repro.core.sps import sps_publish
from repro.core.testing import audit_table
from repro.criteria.comparison import compare_criteria
from repro.dataset.adult import generate_adult
from repro.dataset.groups import personal_groups
from repro.experiments.aggregation import run_aggregation_impact
from repro.experiments.config import ExperimentConfig
from repro.experiments.error_sweep import run_error_sweep
from repro.experiments.figure1 import run_figure1
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import TABLE2_ANSWERS, TABLE2_SCALES, run_table2
from repro.experiments.violation_sweep import run_violation_sweep
from repro.generalization.merging import generalize_table
from repro.utils.rng import default_rng
from repro.perturbation.uniform import UniformPerturbation, perturb_table
from repro.queries.error import average_relative_error
from repro.queries.workload import WorkloadConfig, generate_workload
from repro.reconstruction.mle import mle_frequencies


class CheckFailed(AssertionError):
    """A paper scenario's qualitative shape assertion did not hold."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailed(message)


@dataclass(frozen=True)
class PaperScenario:
    """One paper exhibit, runnable and checkable by name."""

    name: str
    title: str
    description: str
    run: Callable[[ExperimentConfig], Any]
    render: Callable[[Any], str]
    check: Callable[[Any, ExperimentConfig], None]
    summarize: Callable[[Any], dict[str, Any]]
    checks_at_tiny: bool = False  # True when the checks hold at every data size


_SCENARIOS: dict[str, PaperScenario] = {}


def _register(scenario: PaperScenario) -> PaperScenario:
    _SCENARIOS[scenario.name] = scenario
    return scenario


def paper_scenario(name: str) -> PaperScenario:
    """Look a paper scenario up by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown paper scenario {name!r}; available: {available_paper_scenarios()}"
        ) from None


def available_paper_scenarios() -> list[str]:
    """Sorted names of every registered paper scenario."""
    return sorted(_SCENARIOS)


def paper_scenario_listing() -> list[tuple[str, str]]:
    """(name, one-line description) pairs, for ``repro-bench --list``."""
    return [(name, _SCENARIOS[name].title) for name in available_paper_scenarios()]


def smoke_config() -> ExperimentConfig:
    """A seconds-scale configuration for smoke-testing every scenario."""
    return ExperimentConfig(
        adult_size=1_500,
        census_size=3_000,
        census_sweep_sizes=(1_500, 3_000),
        workload_queries=30,
        runs=1,
        attack_trials=2,
    )


# --------------------------------------------------------------------- #
# core-ops: throughput of the individual building blocks
# --------------------------------------------------------------------- #

#: Names of the operations timed by the ``core-ops`` scenario — the single
#: source of truth for its checks and the pytest wrapper's parametrization.
CORE_OP_NAMES = (
    "uniform-perturbation",
    "group-indexing",
    "privacy-audit",
    "sps-publish",
    "mle-reconstruction",
    "adult-generation",
)


def core_op_callables(config: ExperimentConfig) -> dict[str, Callable[[], Any]]:
    """The individual core operations timed by the ``core-ops`` scenario.

    Mirrors the paper's complexity claim that SPS costs a sort plus a single
    scan: every building block on the publish path is timed in isolation.
    """
    n = min(config.adult_size, 20_000)
    table = generate_adult(n, seed=config.seed)
    spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
    groups = personal_groups(table)
    operator = UniformPerturbation(0.5, 50)
    codes = default_rng(0).integers(0, 50, size=10 * n)
    counts = default_rng(1).integers(100, 10_000, size=50).astype(float)
    return {
        "uniform-perturbation": lambda: operator.perturb_codes(codes, 1),
        "group-indexing": lambda: personal_groups(table),
        "privacy-audit": lambda: audit_table(table, spec, groups),
        "sps-publish": lambda: sps_publish(table, spec, 0, groups),
        "mle-reconstruction": lambda: mle_frequencies(counts, 0.5),
        "adult-generation": lambda: generate_adult(n, seed=1),
    }


def _run_core_ops(config: ExperimentConfig) -> dict[str, float]:
    seconds = {}
    for name, op in core_op_callables(config).items():
        start = time.perf_counter()
        op()
        seconds[name] = time.perf_counter() - start
    return seconds


def _render_core_ops(result: dict[str, float]) -> str:
    from repro.utils.textplot import render_table

    rows = [(name, seconds) for name, seconds in result.items()]
    return render_table(("operation", "seconds"), rows, title="Core operation timings")


def _check_core_ops(result: dict[str, float], config: ExperimentConfig) -> None:
    expected = set(CORE_OP_NAMES)
    _require(set(result) == expected, f"core ops changed: {sorted(result)} != {sorted(expected)}")
    _require(all(s >= 0 for s in result.values()), "negative op timing")


_register(
    PaperScenario(
        name="core-ops",
        title="Throughput of the core building blocks (perturb, index, audit, SPS, MLE)",
        description="Times each hot-path operation in isolation so regressions are attributable.",
        run=_run_core_ops,
        render=_render_core_ops,
        check=_check_core_ops,
        summarize=lambda result: {"n_operations": len(result)},
        checks_at_tiny=True,
    )
)


# --------------------------------------------------------------------- #
# Table 1 and Table 2: the DP disclosure exhibits
# --------------------------------------------------------------------- #

def _check_table1(result: Any, config: ExperimentConfig) -> None:
    _require(result.true_confidence > 0.8, "ADULT rule confidence should exceed 0.8")
    low_privacy = result.per_epsilon[0.5]
    high_privacy = result.per_epsilon[0.01]
    _require(low_privacy.confidence_gap < 0.05, "Conf' should be accurate at eps=0.5")
    _require(low_privacy.error_q1_mean < 0.1, "Q1 should be accurate at eps=0.5")
    _require(
        high_privacy.error_q1_mean > 5 * low_privacy.error_q1_mean,
        "eps=0.01 answers should be much noisier than eps=0.5",
    )


_register(
    PaperScenario(
        name="table1",
        title="Table 1: disclosure of the ADULT rule through two Laplace-noisy counts",
        description="Mean Conf' and relative error of the DP attack at eps in {0.5, 0.01}.",
        run=run_table1,
        render=lambda result: result.render(),
        check=_check_table1,
        summarize=lambda result: {"n_epsilons": len(result.per_epsilon)},
    )
)


def _check_table2(result: Any, config: ExperimentConfig) -> None:
    for expected, (b, x) in (
        (0.000008, (10.0, 5000)),
        (0.02, (20.0, 200)),
        (0.0128, (40.0, 500)),
        (8.0, (200.0, 100)),
    ):
        _require(
            bool(np.isclose(result.grid[b][x], expected, rtol=1e-6)),
            f"Table 2 cell (b={b}, x={x}) should be {expected}",
        )
    for b in TABLE2_SCALES:
        values = [result.grid[b][x] for x in TABLE2_ANSWERS]
        _require(values == sorted(values), f"Table 2 row b={b} should be monotone in x")


_register(
    PaperScenario(
        name="table2",
        title="Table 2: the 2 (b/x)^2 disclosure-indicator grid",
        description="Exact closed-form disclosure indicator over the paper's (b, x) grid.",
        run=lambda config: run_table2(),
        render=lambda result: result.render(),
        check=_check_table2,
        summarize=lambda result: {"n_cells": sum(len(row) for row in result.grid.values())},
        checks_at_tiny=True,
    )
)


# --------------------------------------------------------------------- #
# Tables 4 and 5: chi-square aggregation impact
# --------------------------------------------------------------------- #

def _check_tables4_5(impacts: Any, config: ExperimentConfig) -> None:
    adult = impacts["ADULT"]
    census = impacts["CENSUS"]
    _require(
        adult.domain_sizes_after["Education"] < adult.domain_sizes_before["Education"],
        "ADULT Education domain should shrink",
    )
    _require(
        adult.domain_sizes_after["Occupation"] < adult.domain_sizes_before["Occupation"],
        "ADULT Occupation domain should shrink",
    )
    _require(adult.n_groups_after < adult.n_groups_before / 5, "ADULT group count should collapse")
    _require(
        adult.average_group_size_after > adult.average_group_size_before,
        "ADULT average group size should grow",
    )
    _require(census.domain_sizes_after["Age"] == 1, "CENSUS Age should become uninformative")
    for attribute in ("Education", "Marital", "Race"):
        _require(
            census.domain_sizes_after[attribute] == census.domain_sizes_before[attribute],
            f"CENSUS {attribute} domain should survive",
        )
    _require(census.n_groups_after < census.n_groups_before / 10, "CENSUS group count should collapse")


_register(
    PaperScenario(
        name="tables4-5",
        title="Tables 4 and 5: impact of chi-square NA aggregation on ADULT and CENSUS",
        description="Domain sizes, group counts and average group sizes before/after merging.",
        run=run_aggregation_impact,
        render=lambda impacts: "\n\n".join(impact.render() for impact in impacts.values()),
        check=_check_tables4_5,
        summarize=lambda impacts: {
            "datasets": len(impacts),
            "adult_groups_after": impacts["ADULT"].n_groups_after,
            "census_groups_after": impacts["CENSUS"].n_groups_after,
        },
    )
)


# --------------------------------------------------------------------- #
# Figure 1: the s_g curves
# --------------------------------------------------------------------- #

def _check_figure1(panels: Any, config: ExperimentConfig) -> None:
    for panel in panels.values():
        for retention, curve in panel.curves.items():
            _require(
                all(a >= b for a, b in zip(curve, curve[1:], strict=False)),
                f"s_g should decrease in f (p={retention})",
            )
        _require(
            all(low >= high for low, high in zip(panel.curves[0.3], panel.curves[0.7], strict=True)),
            "larger p should give smaller s_g at the same f",
        )
    _require(
        panels["CENSUS"].curves[0.5][0] > max(panels["ADULT"].curves[0.5]),
        "CENSUS small frequencies should blow s_g up past ADULT's",
    )


_register(
    PaperScenario(
        name="figure1",
        title="Figure 1: the maximum group size s_g versus the maximum frequency f",
        description="Closed-form s_g curves per dataset and retention probability.",
        run=lambda config: run_figure1(),
        render=lambda panels: "\n\n".join(panel.render() for panel in panels.values()),
        check=_check_figure1,
        summarize=lambda panels: {
            "panels": len(panels),
            "curves": sum(len(panel.curves) for panel in panels.values()),
        },
        checks_at_tiny=True,
    )
)


# --------------------------------------------------------------------- #
# Figures 2 and 4: violation sweeps
# --------------------------------------------------------------------- #

def _check_figure2(sweeps: Any, config: ExperimentConfig) -> None:
    adult = sweeps["ADULT"]
    defaults = adult["p"]
    default_index = defaults.values.index(config.retention)
    _require(
        defaults.record_rates[default_index] > 0.5,
        "most ADULT records should sit in violating groups at the defaults",
    )
    for sweep in adult.values():
        for vg, vr in zip(sweep.group_rates, sweep.record_rates, strict=True):
            _require(vr >= vg - 1e-9, "coverage must dominate the group rate")
    _require(
        adult["lambda"].group_rates[-1] >= adult["lambda"].group_rates[0],
        "violations should grow with lambda",
    )
    _require(
        adult["delta"].group_rates[-1] >= adult["delta"].group_rates[0],
        "violations should grow with delta",
    )
    _require(
        adult["p"].group_rates[-1] >= adult["p"].group_rates[0],
        "violations should grow with p",
    )


_register(
    PaperScenario(
        name="figure2",
        title="Figure 2: reconstruction-privacy violation rates on ADULT under plain UP",
        description="Group and record violation rates over the lambda/delta/p sweeps.",
        run=lambda config: run_violation_sweep(
            config=config, datasets=("ADULT",), include_size_sweep=False
        ),
        render=lambda sweeps: "\n\n".join(s.render() for s in sweeps["ADULT"].values()),
        check=_check_figure2,
        summarize=lambda sweeps: {
            "sweeps": len(sweeps["ADULT"]),
            "points": sum(len(s.values) for s in sweeps["ADULT"].values()),
        },
    )
)


def _check_figure4(sweeps: Any, config: ExperimentConfig) -> None:
    census = sweeps["CENSUS"]
    for sweep in census.values():
        for vg, vr in zip(sweep.group_rates, sweep.record_rates, strict=True):
            _require(vr >= vg - 1e-9, "coverage must dominate the group rate")
        _require(max(sweep.group_rates) < 0.6, "CENSUS group violation rate should stay moderate")
    size_sweep = census["|D|"]
    _require(
        size_sweep.record_rates[-1] >= size_sweep.record_rates[0],
        "more data should mean more violating coverage",
    )


_register(
    PaperScenario(
        name="figure4",
        title="Figure 4: reconstruction-privacy violation rates on CENSUS under plain UP",
        description="Violation sweeps on CENSUS including the |D| size sweep.",
        run=lambda config: run_violation_sweep(
            config=config, datasets=("CENSUS",), include_size_sweep=True
        ),
        render=lambda sweeps: "\n\n".join(s.render() for s in sweeps["CENSUS"].values()),
        check=_check_figure4,
        summarize=lambda sweeps: {
            "sweeps": len(sweeps["CENSUS"]),
            "points": sum(len(s.values) for s in sweeps["CENSUS"].values()),
        },
    )
)


# --------------------------------------------------------------------- #
# Figures 3 and 5: relative-error sweeps
# --------------------------------------------------------------------- #

def _figure3_config(config: ExperimentConfig) -> ExperimentConfig:
    """Trim the ADULT error sweep unless a paper-scale run was requested."""
    if config.adult_size <= 20_000:
        return config
    return ExperimentConfig(
        adult_size=20_000,
        workload_queries=min(config.workload_queries, 400),
        runs=min(config.runs, 3),
        seed=config.seed,
    )


def _check_figure3(sweeps: Any, config: ExperimentConfig) -> None:
    adult = sweeps["ADULT"]
    p_sweep = adult["p"]
    _require(p_sweep.up_errors[0] > p_sweep.up_errors[-1], "UP error should fall with p")
    _require(p_sweep.sps_errors[0] > p_sweep.sps_errors[-1], "SPS error should fall with p")
    for sweep in adult.values():
        for up, sps in zip(sweep.up_errors, sweep.sps_errors, strict=True):
            _require(sps >= up - 0.03, "SPS should not beat UP beyond Monte-Carlo noise")
            _require(sps <= 2.5 * up + 0.05, "SPS extra cost on ADULT should stay bounded")


_register(
    PaperScenario(
        name="figure3",
        title="Figure 3: the relative-error cost of SPS versus plain UP on ADULT",
        description="Average workload relative error for UP and SPS over the parameter sweeps.",
        run=lambda config: run_error_sweep(
            config=_figure3_config(config), datasets=("ADULT",), include_size_sweep=False
        ),
        render=lambda sweeps: "\n\n".join(s.render() for s in sweeps["ADULT"].values()),
        check=_check_figure3,
        summarize=lambda sweeps: {
            "sweeps": len(sweeps["ADULT"]),
            "points": sum(len(s.values) for s in sweeps["ADULT"].values()),
        },
    )
)


def _figure5_config(config: ExperimentConfig) -> ExperimentConfig:
    """Trim the CENSUS error sweep unless a paper-scale run was requested."""
    if config.census_size <= 60_000:
        return config
    return ExperimentConfig(
        census_size=60_000,
        census_sweep_sizes=(30_000, 60_000, 90_000),
        workload_queries=min(config.workload_queries, 300),
        runs=min(config.runs, 2),
        seed=config.seed,
    )


def _check_figure5(sweeps: Any, config: ExperimentConfig) -> None:
    census = sweeps["CENSUS"]
    for sweep in census.values():
        for up, sps in zip(sweep.up_errors, sweep.sps_errors, strict=True):
            _require(sps >= up - 0.03, "SPS should not beat UP beyond Monte-Carlo noise")
            _require(sps <= 1.6 * up + 0.03, "SPS on CENSUS should track UP closely")
    size_sweep = census["|D|"]
    _require(
        size_sweep.sps_errors[-1] < size_sweep.sps_errors[0],
        "relative error should fall as the data grows",
    )
    p_sweep = census["p"]
    _require(p_sweep.up_errors[0] > p_sweep.up_errors[-1], "UP error should fall with p")
    _require(p_sweep.sps_errors[0] > p_sweep.sps_errors[-1], "SPS error should fall with p")


_register(
    PaperScenario(
        name="figure5",
        title="Figure 5: the relative-error cost of SPS versus plain UP on CENSUS",
        description="Average workload relative error on CENSUS including the |D| size sweep.",
        run=lambda config: run_error_sweep(
            config=_figure5_config(config), datasets=("CENSUS",), include_size_sweep=True
        ),
        render=lambda sweeps: "\n\n".join(s.render() for s in sweeps["CENSUS"].values()),
        check=_check_figure5,
        summarize=lambda sweeps: {
            "sweeps": len(sweeps["CENSUS"]),
            "points": sum(len(s.values) for s in sweeps["CENSUS"].values()),
        },
    )
)


# --------------------------------------------------------------------- #
# Ablations
# --------------------------------------------------------------------- #

def violation_rates_by_bound(adult_size: int, seed: int) -> dict[str, float]:
    """Group violation rate of the same ADULT sample under three tail bounds."""
    table = generalize_table(generate_adult(adult_size, seed=seed)).table
    spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
    groups = list(personal_groups(table))

    rates = {}
    chernoff_audit = audit_table(table, spec)
    rates["chernoff"] = chernoff_audit.group_violation_rate
    for method in ("chebyshev", "markov"):
        violations = sum(
            1
            for group in groups
            if smallest_error_bound(spec, group.size, group.max_frequency, method=method)
            < spec.delta
        )
        rates[method] = violations / len(groups)
    return rates


def _check_ablation_bounds(rates: Any, config: ExperimentConfig) -> None:
    _require(
        rates["markov"] <= min(rates["chernoff"], rates["chebyshev"]) + 1e-9,
        "Markov is too loose to certify violations",
    )
    _require(rates["chernoff"] > 0, "Chernoff should flag some ADULT groups")


_register(
    PaperScenario(
        name="ablation-bounds",
        title="Ablation: Chernoff vs Chebyshev vs Markov in the privacy test",
        description="Group violation rate of the same ADULT sample under each tail bound.",
        run=lambda config: violation_rates_by_bound(
            min(config.adult_size, 20_000), config.seed
        ),
        render=lambda rates: (
            "Group violation rate on ADULT by tail bound\n"
            + "\n".join(f"{name:10s}: {rate:.3f}" for name, rate in rates.items())
        ),
        check=_check_ablation_bounds,
        summarize=lambda rates: {"n_bounds": len(rates)},
    )
)


def _largest_private_retention(
    table: Any, lam: float, delta: float, domain_size: int
) -> float:
    """The largest p on a coarse grid for which no personal group violates."""
    for p in np.arange(0.95, 0.009, -0.05):
        spec = PrivacySpec(
            lam=lam, delta=delta, retention_probability=float(p), domain_size=domain_size
        )
        if audit_table(table, spec).is_private:
            return float(p)
    return 0.01


def run_sampling_ablation(adult_size: int, seed: int) -> dict:
    """SPS at the original p versus plain UP at the largest private p."""
    raw = generate_adult(adult_size, seed=seed)
    generalization = generalize_table(raw)
    table = generalization.table
    queries = generate_workload(
        raw, table, WorkloadConfig(n_queries=200), generalization=generalization, rng=seed
    )
    lam = delta = 0.3
    p = 0.5
    spec = PrivacySpec(lam=lam, delta=delta, retention_probability=p, domain_size=2)

    comparison = compare_up_and_sps(table, spec, queries, runs=2, rng=seed)
    reduced_p = _largest_private_retention(table, lam, delta, 2)
    reduced_errors = [
        average_relative_error(
            queries, table, perturb_table(table, reduced_p, rng=seed + i), reduced_p
        )
        for i in range(2)
    ]
    return {
        "sps_error": comparison.sps_error,
        "up_error": comparison.up_error,
        "reduced_p": reduced_p,
        "reduced_p_error": float(np.mean(reduced_errors)),
    }


def _render_ablation_sampling(result: dict) -> str:
    return (
        "SPS at p=0.5 vs global p reduction (ADULT)\n"
        f"UP error at p=0.5          : {result['up_error']:.4f}\n"
        f"SPS error at p=0.5         : {result['sps_error']:.4f}\n"
        f"largest private p          : {result['reduced_p']:.2f}\n"
        f"UP error at that reduced p : {result['reduced_p_error']:.4f}\n"
    )


def _check_ablation_sampling(result: Any, config: ExperimentConfig) -> None:
    _require(result["reduced_p"] <= 0.2, "global privacy should require a very noisy p")
    _require(
        result["reduced_p_error"] > result["sps_error"],
        "lowering p globally should cost more utility than SPS sampling",
    )


_register(
    PaperScenario(
        name="ablation-sampling",
        title="Ablation: SPS sampling versus lowering p globally (Section 5)",
        description="Query error of SPS at p=0.5 against plain UP at the largest private p.",
        run=lambda config: run_sampling_ablation(min(config.adult_size, 20_000), config.seed),
        render=_render_ablation_sampling,
        check=_check_ablation_sampling,
        summarize=lambda result: {"reduced_p": result["reduced_p"]},
    )
)


def _check_criteria_comparison(comparison: Any, config: ExperimentConfig) -> None:
    by_name = {report.criterion: report for report in comparison.reports}
    _require(by_name["t-closeness"].group_failure_rate > 0, "t-closeness should flag ADULT groups")
    _require(by_name["beta-likeness"].group_failure_rate > 0, "beta-likeness should flag ADULT groups")
    _require(
        0 < comparison.reconstruction_group_rate < 1,
        "reconstruction privacy should flag some but not all groups",
    )


_register(
    PaperScenario(
        name="criteria-comparison",
        title="Ablation: reconstruction privacy versus the posterior/prior criteria",
        description="Audit the same generalised ADULT sample under every implemented criterion.",
        run=lambda config: compare_criteria(
            generalize_table(generate_adult(min(config.adult_size, 20_000), seed=config.seed)).table,
            PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2),
            l=2,
            t=0.2,
            beta=1.0,
            k=3,
        ),
        render=lambda comparison: comparison.render(),
        check=_check_criteria_comparison,
        summarize=lambda comparison: {"n_criteria": len(comparison.reports)},
    )
)
