"""The ``repro-bench`` command line.

Usage (installed console script, or ``python -m repro.bench``)::

    repro-bench run --suite core --tiny          # CI's bench-smoke matrix
    repro-bench run --suite service              # scheduler path, full sizes
    repro-bench run --suite paper --scenario figure3
    repro-bench run --suite core --tiny --trace bench-trace.jsonl
    repro-bench --list                           # every scenario of every suite

``run`` writes the schema-versioned ``BENCH_<suite>.json`` to ``--output-dir``
(the repo root by default) and prints a per-scenario summary table; see
``docs/benchmarks.md`` for the report schema and how to read a regression.
"""

from __future__ import annotations

import argparse
import contextlib
import logging
import sys
from collections.abc import Sequence

from repro import __version__
from repro.obs import Tracer, configure_cli_logging, export
from repro.bench.paper import paper_scenario_listing
from repro.bench.runner import DEFAULT_BENCH_SEED, default_timing, run_suite, write_report
from repro.bench.scenarios import matrix_for
from repro.bench.timing import TimingSpec
from repro.utils.textplot import render_listing, render_table

SUITES = ("core", "service", "paper", "stream", "parallel", "delta", "serve")

_log = logging.getLogger("repro.bench")


def _listing_text(suite: str | None, tiny: bool) -> str:
    """The scenario listing for one suite, or all suites when ``None``."""
    blocks = []
    for name in SUITES if suite is None else (suite,):
        if name == "paper":
            blocks.append(
                render_listing(paper_scenario_listing(), title="paper scenarios (repro-bench run --suite paper)")
            )
            continue
        if name == "stream":
            from repro.bench.stream import stream_scenarios

            scale = "tiny" if tiny else "default"
            rows = [
                (
                    s.name,
                    f"{s.strategy} on {s.dataset} ({s.rows} rows), out-of-core vs "
                    f"in-memory, chunk_rows={s.params['chunk_rows']}",
                )
                for s in stream_scenarios(tiny)
            ]
            blocks.append(
                render_listing(rows, title=f"stream scenarios ({scale} scale, {len(rows)} scenarios)")
            )
            continue
        if name == "delta":
            from repro.bench.delta import delta_scenarios

            scale = "tiny" if tiny else "default"
            rows = [
                (
                    s.name,
                    f"{s.strategy} on {s.dataset} ({s.rows} rows), "
                    f"append_fraction={s.params['append_fraction']:g}, "
                    "incremental vs full re-publish",
                )
                for s in delta_scenarios(tiny)
            ]
            blocks.append(
                render_listing(rows, title=f"delta scenarios ({scale} scale, {len(rows)} scenarios)")
            )
            continue
        if name == "serve":
            from repro.bench.serve import serve_scenarios

            scale = "tiny" if tiny else "default"
            rows = [
                (
                    s.name,
                    f"{s.strategy} load on {s.dataset} ({s.rows} rows), "
                    f"{s.params['clients']} clients x "
                    f"{s.params['requests_per_client']} requests, "
                    f"server workers={s.workers}, "
                    f"queue_limit={s.params['queue_limit']}",
                )
                for s in serve_scenarios(tiny)
            ]
            blocks.append(
                render_listing(rows, title=f"serve scenarios ({scale} scale, {len(rows)} scenarios)")
            )
            continue
        if name == "parallel":
            from repro.bench.parallel import parallel_scenarios

            scale = "tiny" if tiny else "default"
            rows = [
                (
                    s.name,
                    f"{s.strategy} on {s.dataset} ({s.rows} rows), "
                    f"workers={s.workers}, scaling vs the sequential reference",
                )
                for s in parallel_scenarios(tiny)
            ]
            blocks.append(
                render_listing(rows, title=f"parallel scenarios ({scale} scale, {len(rows)} scenarios)")
            )
            continue
        matrix = matrix_for(name, tiny)
        rows = [
            (
                s.name,
                f"{s.strategy} on {s.dataset} ({s.rows} rows), "
                f"chunk_size={s.chunk_size}, workers={s.workers}",
            )
            for s in matrix.expand(name)
        ]
        scale = "tiny" if tiny else "default"
        blocks.append(
            render_listing(rows, title=f"{name} scenario matrix ({scale} scale, {matrix.size} scenarios)")
        )
    return "\n\n".join(blocks)


def _summary_table(report: dict) -> str:
    rows = []
    for entry in report["scenarios"]:
        seconds = entry["seconds"]
        ops = entry.get("ops", {})
        records = ops.get("published_records", "-")
        rows.append((entry["name"], f"{seconds['best']:.4f}", f"{seconds['mean']:.4f}", records))
    table = render_table(
        ("scenario", "best_s", "mean_s", "published"),
        rows,
        title=f"suite={report['suite']} scale={report['scale']} seed={report['seed']}",
    )
    if report.get("micro"):
        micro_rows = [
            (
                entry["name"],
                f"{entry['baseline_seconds']:.4f}",
                f"{entry['vectorized_seconds']:.4f}",
                f"{entry['speedup']:.1f}x",
                "yes" if entry["identical"] else f"~{entry['max_abs_diff']:.1e}",
            )
            for entry in report["micro"]
        ]
        table += "\n\n" + render_table(
            ("micro-benchmark", "loop_s", "vectorized_s", "speedup", "identical"),
            micro_rows,
            title="vectorized hot paths vs their loop baselines",
        )
    return table


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-bench`` console script."""
    parser = argparse.ArgumentParser(prog="repro-bench", description=__doc__)
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument(
        "--list", action="store_true", dest="list_all",
        help="list every scenario of every suite and exit",
    )
    subparsers = parser.add_subparsers(dest="command")

    run_parser = subparsers.add_parser("run", help="run a suite and write BENCH_<suite>.json")
    run_parser.add_argument("--suite", choices=SUITES, default="core", help="which suite to run")
    run_parser.add_argument(
        "--tiny", action="store_true",
        help="seconds-scale preset (CI bench-smoke); default is the full-size matrix",
    )
    run_parser.add_argument("--seed", type=int, default=DEFAULT_BENCH_SEED, help="root seed")
    run_parser.add_argument(
        "--output-dir", default=".", help="directory for BENCH_<suite>.json (default: cwd)"
    )
    run_parser.add_argument("--warmup", type=int, default=None, help="discarded warmup passes")
    run_parser.add_argument("--repeats", type=int, default=None, help="timed passes per scenario")
    run_parser.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run only matching scenarios (full name, or strategy name for matrix suites); repeatable",
    )
    run_parser.add_argument(
        "--no-micro", action="store_true",
        help="skip the vectorization micro-benchmarks (core suite only)",
    )
    run_parser.add_argument(
        "--trace", metavar="PATH",
        help="record every scenario's spans and write them as a JSONL trace",
    )

    list_parser = subparsers.add_parser("list", help="list scenarios")
    list_parser.add_argument("--suite", choices=SUITES, default=None, help="restrict to one suite")
    list_parser.add_argument("--tiny", action="store_true", help="show the tiny preset matrices")

    args = parser.parse_args(argv)
    configure_cli_logging()

    if args.list_all or args.command == "list":
        suite = getattr(args, "suite", None) if args.command == "list" else None
        tiny = getattr(args, "tiny", False)
        sys.stdout.write(_listing_text(suite, tiny) + "\n")
        return 0

    if args.command != "run":
        parser.print_help()
        return 2

    timing = None
    if args.warmup is not None or args.repeats is not None:
        base = default_timing(args.suite)
        timing = TimingSpec(
            warmup=base.warmup if args.warmup is None else args.warmup,
            repeats=base.repeats if args.repeats is None else args.repeats,
        )
    tracer = Tracer() if args.trace else None
    with tracer if tracer is not None else contextlib.nullcontext():
        report = run_suite(
            args.suite,
            tiny=args.tiny,
            seed=args.seed,
            timing=timing,
            scenario_filter=args.scenario,
            include_micro=not args.no_micro,
        )
    path = write_report(report, args.output_dir)
    if tracer is not None:
        export.write_trace(tracer, args.trace)
        _log.info("trace written to %s (%d spans)", args.trace, len(tracer.spans))
    sys.stdout.write(_summary_table(report) + "\n")
    sys.stdout.write(f"\nwrote {path}\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
