"""The ``parallel`` benchmark suite: worker-count scaling of the publishing engines.

Each scenario publishes the same synthetic CSV through
:func:`repro.stream.stream_publish` at a fixed seed while sweeping the
``workers`` axis (1, 2, 4) — the scheduler's process pool against its own
sequential reference.  Per point the report records:

* **throughput** — rows/second (best of repeats, timed like every suite);
* **scaling** — ``speedup_vs_w1``, the ratio against the same strategy's
  ``workers=1`` point, i.e. the scaling curve;
* **byte identity** — whether the CSV produced at this worker count equals
  the ``workers=1`` CSV *and* the classic load-then-:func:`repro.publish`
  CSV bit for bit.  This is the suite's real verdict: it must be ``True``
  for every scenario on every machine.

The report carries ``environment.cpu_count``; read the scaling curve
against it — on a single-core runner the curve is flat-to-negative by
construction (pool overhead, nothing to schedule onto), and only
``byte_identical`` is meaningful there.  ``docs/streaming.md`` reads the
committed numbers for the worker-count tuning guide.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Any

from repro.bench.scenarios import Scenario
from repro.bench.timing import TimingSpec, time_callable
from repro.dataset.loaders import read_csv, write_csv
from repro.pipeline import publish
from repro.stream import stream_publish

_SENSITIVE = {"adult": "Income", "census": "Occupation"}

#: The worker-count axis every parallel scenario sweeps.
WORKER_AXIS = (1, 2, 4)


def parallel_scenarios(tiny: bool = False) -> list[Scenario]:
    """The parallel-suite scenario list: strategy × workers, workers ascending.

    Strategy-major order with ``workers=1`` first per strategy, so the
    baseline a later point is compared against always precedes it in the
    report (and in execution).
    """
    if tiny:
        points = [("sps", "adult", 2_000), ("dp-laplace", "adult", 2_000)]
        chunk_rows = 500
    else:
        points = [("sps", "adult", 45_222), ("dp-gaussian", "census", 100_000)]
        chunk_rows = 10_000
    return [
        Scenario(
            name=f"parallel/{strategy}/{dataset}-{rows}/c256/w{workers}",
            suite="parallel",
            strategy=strategy,
            dataset=dataset,
            rows=rows,
            chunk_size=256,
            workers=workers,
            params={"chunk_rows": chunk_rows},
        )
        for strategy, dataset, rows in points
        for workers in WORKER_AXIS
    ]


def run_parallel_scenario(
    scenario: Scenario,
    csv_path: Path,
    seed: int,
    timing: TimingSpec,
    workdir: Path,
    baselines: dict[tuple[str, str, int], dict[str, Any]],
) -> dict[str, Any]:
    """Benchmark one worker-count point and verify its bytes against the references.

    ``baselines`` accumulates, per ``(strategy, dataset, rows)``, the
    ``workers=1`` streamed CSV text, the in-memory published CSV text and
    the ``workers=1`` best time; the ``workers=1`` scenario of each strategy
    populates it (scenario order guarantees it runs first).
    """
    sensitive = _SENSITIVE[scenario.dataset]
    chunk_rows = int(scenario.params["chunk_rows"])
    out_path = workdir / f"{scenario.strategy}-{scenario.dataset}-w{scenario.workers}-out.csv"

    def once() -> Any:
        return stream_publish(
            csv_path,
            sensitive=sensitive,
            strategy=scenario.strategy,
            rng=seed,
            chunk_size=scenario.chunk_size,
            chunk_rows=chunk_rows,
            workers=scenario.workers,
            output=out_path,
        )

    report, measurement = time_callable(once, timing)
    produced = out_path.read_bytes().decode("utf-8")

    key = (scenario.strategy, scenario.dataset, scenario.rows)
    if key not in baselines:
        table = read_csv(csv_path, sensitive=sensitive)
        inmemory = publish(
            table, strategy=scenario.strategy, rng=seed, chunk_size=scenario.chunk_size
        )
        buffer = io.StringIO()
        write_csv(inmemory.published, buffer)
        baselines[key] = {"inmemory_csv": buffer.getvalue()}
    baseline = baselines[key]
    if scenario.workers == 1:
        baseline["w1_csv"] = produced
        baseline["w1_best"] = measurement.best

    byte_identical = (
        produced == baseline.get("w1_csv", produced)
        and produced == baseline["inmemory_csv"]
    )

    entry = scenario.to_json()
    entry["ops"] = {
        "rows": scenario.rows,
        "published_records": report.published_records,
        "n_groups": report.n_groups,
        "rows_per_second": scenario.rows / measurement.best,
        "byte_identical": bool(byte_identical),
    }
    if "w1_best" in baseline:
        entry["ops"]["speedup_vs_w1"] = baseline["w1_best"] / measurement.best
    # else: a scenario filter excluded the workers=1 point — omit the field
    # rather than report a fabricated 1.0 (byte_identical then compares
    # against the in-memory CSV only).
    entry["seconds"] = measurement.to_json()
    entry["stages"] = {stage: float(s) for stage, s in report.timings.items()}
    return entry
