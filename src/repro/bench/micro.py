"""Micro-benchmarks of the vectorized hot paths against their loop baselines.

This PR's optimizations replaced per-record / per-group Python loops with
numpy bulk operations in four places: the SPS sampling step, the
personal-group index build, the closed-form MLE over many groups, and the EM
reconstruction over many groups.  The original loop implementations are kept
here as *reference baselines* so every ``repro-bench run --suite core``:

1. re-verifies that the shipped vectorized path produces the same output as
   the loop it replaced (bit-identical where the operations are elementwise
   or integer; to machine precision for the reassociated EM products), and
2. records the measured before/after seconds in the emitted
   ``BENCH_core.json`` — the perf claims stay attached to the numbers that
   back them.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

import numpy as np

from repro.core.sps import _sample_counts, _stochastic_round
from repro.dataset.adult import generate_adult
from repro.dataset.groups import personal_groups
from repro.dataset.table import Table
from repro.reconstruction.iterative import iterative_bayes_frequencies
from repro.reconstruction.mle import mle_frequencies_clipped
from repro.bench.timing import TimingSpec, time_callable
from repro.utils.rng import default_rng


# --------------------------------------------------------------------- #
# Reference (pre-vectorization) implementations
# --------------------------------------------------------------------- #

def _reference_sample_counts(
    counts: np.ndarray, sampling_rate: float, rng: np.random.Generator
) -> np.ndarray:
    """The original per-SA-value sampling loop of ``repro.core.sps``."""
    sampled = np.zeros_like(counts)
    for value, count in enumerate(counts):
        if count == 0:
            continue
        sampled[value] = min(int(count), _stochastic_round(count * sampling_rate, rng))
    return sampled


def _reference_group_index(table: Table) -> dict[tuple[int, ...], "PersonalGroup"]:
    """The original ``GroupIndex._build`` loop: one bincount per group."""
    from repro.dataset.groups import PersonalGroup

    groups: dict[tuple[int, ...], PersonalGroup] = {}
    public = table.public_codes
    order = np.lexsort(public.T[::-1])
    sorted_public = public[order]
    change = np.any(np.diff(sorted_public, axis=0) != 0, axis=1)
    boundaries = np.concatenate(([0], np.flatnonzero(change) + 1, [len(table)]))
    m = table.schema.sensitive_domain_size
    sensitive = table.sensitive_codes
    for start, stop in zip(boundaries[:-1], boundaries[1:], strict=True):
        indices = order[start:stop]
        key = tuple(int(c) for c in sorted_public[start])
        counts = np.bincount(sensitive[indices], minlength=m).astype(np.int64)
        groups[key] = PersonalGroup(key=key, indices=indices, sensitive_counts=counts)
    return groups


def _counts_of(groups: Iterable["PersonalGroup"]) -> np.ndarray:
    return np.vstack([group.sensitive_counts for group in groups])


# --------------------------------------------------------------------- #
# The benchmark entries
# --------------------------------------------------------------------- #

def _entry(
    name: str,
    description: str,
    n: int,
    baseline_seconds: float,
    vectorized_seconds: float,
    max_abs_diff: float,
) -> dict[str, Any]:
    return {
        "name": name,
        "description": description,
        "n": n,
        "baseline_seconds": baseline_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": baseline_seconds / vectorized_seconds if vectorized_seconds > 0 else 0.0,
        "max_abs_diff": float(max_abs_diff),
        "identical": max_abs_diff == 0.0,
    }


def run_micro_benchmarks(
    seed: int, tiny: bool = False, timing: TimingSpec = TimingSpec(warmup=1, repeats=3)
) -> list[dict[str, Any]]:
    """Time each vectorized hot path against its loop baseline.

    Output sizes and operation counts depend only on ``seed`` and ``tiny``;
    both implementations of each pair consume identical RNG streams, so their
    outputs are directly comparable (and compared, every run).
    """
    rng = default_rng(seed)
    entries: list[dict[str, Any]] = []

    # --- SPS sampling step: per-SA-value loop vs one vectorised draw. ------ #
    n_groups = 200 if tiny else 2_000
    m = 64
    count_rows = rng.integers(0, 40, size=(n_groups, m)).astype(np.int64)
    rates = rng.random(n_groups)
    draw_seed = int(rng.integers(0, 2**31))

    def _sample_all(fn: Callable[..., np.ndarray]) -> Callable[[], np.ndarray]:
        def run() -> np.ndarray:
            draw_rng = default_rng(draw_seed)
            return np.vstack([fn(row, float(rate), draw_rng) for row, rate in zip(count_rows, rates, strict=True)])
        return run

    baseline, base_time = time_callable(_sample_all(_reference_sample_counts), timing)
    vectorized, vec_time = time_callable(_sample_all(_sample_counts), timing)
    entries.append(
        _entry(
            "sps-sample-counts",
            "SPS Sampling step over personal-group SA histograms "
            f"({n_groups} groups, m={m})",
            n_groups,
            base_time.best,
            vec_time.best,
            float(np.abs(baseline - vectorized).max()),
        )
    )

    # --- Personal-group index build: per-group bincount vs one bincount. --- #
    table_rows = 4_000 if tiny else 30_000
    table = generate_adult(table_rows, seed=seed)
    ref_groups, base_time = time_callable(lambda: _reference_group_index(table), timing)
    new_index, vec_time = time_callable(lambda: personal_groups(table), timing)
    baseline = _counts_of(ref_groups.values())
    vectorized = _counts_of(new_index)
    entries.append(
        _entry(
            "group-index-build",
            f"GroupIndex construction on ADULT ({table_rows} rows)",
            table_rows,
            base_time.best,
            vec_time.best,
            float(np.abs(baseline - vectorized).max()),
        )
    )

    # --- Closed-form MLE: one call per group vs one batched call. ---------- #
    n_subsets = 500 if tiny else 5_000
    mle_m = 50
    counts = rng.integers(1, 200, size=(n_subsets, mle_m)).astype(float)
    baseline, base_time = time_callable(
        lambda: np.vstack([mle_frequencies_clipped(row, 0.5, mle_m) for row in counts]), timing
    )
    vectorized, vec_time = time_callable(lambda: mle_frequencies_clipped(counts, 0.5, mle_m), timing)
    entries.append(
        _entry(
            "mle-batch",
            f"Clipped MLE reconstruction of {n_subsets} aggregate groups (m={mle_m})",
            n_subsets,
            base_time.best,
            vec_time.best,
            float(np.abs(baseline - vectorized).max()),
        )
    )

    # --- EM reconstruction: one call per group vs one batched run. --------- #
    n_em = 50 if tiny else 400
    em_m = 20
    em_counts = rng.integers(1, 200, size=(n_em, em_m)).astype(float)
    baseline, base_time = time_callable(
        lambda: np.vstack([iterative_bayes_frequencies(row, 0.5, em_m) for row in em_counts]),
        timing,
    )
    vectorized, vec_time = time_callable(
        lambda: iterative_bayes_frequencies(em_counts, 0.5, em_m), timing
    )
    entries.append(
        _entry(
            "em-batch",
            f"Iterative Bayesian reconstruction of {n_em} groups (m={em_m})",
            n_em,
            base_time.best,
            vec_time.best,
            float(np.abs(baseline - vectorized).max()),
        )
    )
    return entries
