"""repro.bench — the benchmark and profiling subsystem.

Turns the repo's ad-hoc benchmark scripts into a first-class, reproducible
measurement harness:

* a **scenario matrix** (strategy × dataset size × chunk_size × workers)
  timed through the same :func:`repro.publish` / ``AnonymizationService``
  entry points production traffic uses (:mod:`repro.bench.scenarios`,
  :mod:`repro.bench.runner`);
* **deterministic warmup/repeat timers** — op counts are a pure function of
  the seed, only wall-clock moves (:mod:`repro.bench.timing`);
* **micro-benchmarks** that re-verify and re-measure every vectorized hot
  path against the Python loop it replaced (:mod:`repro.bench.micro`);
* the paper's twelve tables/figures/ablations as **named scenarios**
  (:mod:`repro.bench.paper`);
* a schema-versioned **JSON report** written to ``BENCH_<suite>.json`` at
  the repo root so the perf trajectory is diffable across PRs
  (:mod:`repro.bench.schema`).

Front ends: the ``repro-bench`` console script (:mod:`repro.bench.cli`) and
``python -m repro.bench``.
"""

from repro.bench.paper import (
    PaperScenario,
    available_paper_scenarios,
    paper_scenario,
    smoke_config,
)
from repro.bench.runner import (
    DEFAULT_BENCH_SEED,
    report_path,
    run_suite,
    write_report,
)
from repro.bench.scenarios import (
    Scenario,
    ScenarioMatrix,
    core_matrix,
    matrix_for,
    service_matrix,
)
from repro.bench.schema import SCHEMA_VERSION, SchemaError, validate_report
from repro.bench.timing import Measurement, TimingSpec, time_callable

__all__ = [
    "DEFAULT_BENCH_SEED",
    "Measurement",
    "PaperScenario",
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioMatrix",
    "SchemaError",
    "available_paper_scenarios",
    "core_matrix",
    "matrix_for",
    "paper_scenario",
    "report_path",
    "run_suite",
    "service_matrix",
    "smoke_config",
    "time_callable",
    "validate_report",
    "write_report",
]
