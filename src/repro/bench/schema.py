"""The ``BENCH_*.json`` report schema and its validator.

The benchmark runner emits one JSON document per suite at the repo root
(``BENCH_core.json``, ``BENCH_service.json``, ``BENCH_paper.json``,
``BENCH_stream.json``, ``BENCH_parallel.json``, ``BENCH_delta.json``,
``BENCH_serve.json``) so the performance trajectory is diffable across PRs.  The document is
schema-versioned; :func:`validate_report` is the single source of truth for
what a well-formed report looks like and is run by CI's bench-smoke job on
every emitted file.

The validator is hand-rolled (presence + type + structural checks) so the
library keeps its zero-extra-dependency footprint; ``docs/benchmarks.md``
documents every field and its units.
"""

from __future__ import annotations

from typing import Any

#: Version of the report layout; bump when a field changes meaning or shape.
SCHEMA_VERSION = 1

#: Suites a report may declare.
SUITES = ("core", "service", "paper", "stream", "parallel", "delta", "serve")

#: Ops fields every serve-suite scenario must report (numbers).
SERVE_REQUIRED_OPS = (
    "throughput_rps",
    "p50_seconds",
    "p95_seconds",
    "p99_seconds",
    "cache_hit_ratio",
    "queue_rejections",
)

_NUMBER = (int, float)


class SchemaError(ValueError):
    """Raised by :func:`validate_report` with every problem found, one per line."""


def _check(problems: list[str], condition: bool, message: str) -> bool:
    if not condition:
        problems.append(message)
    return condition


def _check_mapping_of_numbers(problems: list[str], value: Any, where: str) -> None:
    if _check(problems, isinstance(value, dict), f"{where} must be an object"):
        for key, item in value.items():
            _check(
                problems,
                isinstance(item, _NUMBER) and not isinstance(item, bool),
                f"{where}.{key} must be a number",
            )


def _check_seconds(problems: list[str], value: Any, where: str) -> None:
    if not _check(problems, isinstance(value, dict), f"{where} must be an object"):
        return
    for key in ("best", "mean", "std"):
        _check(problems, isinstance(value.get(key), _NUMBER), f"{where}.{key} must be a number")
    repeats = value.get("repeats")
    if _check(problems, isinstance(repeats, list) and repeats, f"{where}.repeats must be a non-empty array"):
        _check(
            problems,
            all(isinstance(s, _NUMBER) for s in repeats),
            f"{where}.repeats entries must be numbers",
        )


def _check_scenario(problems: list[str], entry: Any, where: str, suite: str) -> None:
    if not _check(problems, isinstance(entry, dict), f"{where} must be an object"):
        return
    _check(problems, isinstance(entry.get("name"), str) and entry.get("name"), f"{where}.name must be a non-empty string")
    if suite in ("core", "service", "stream", "parallel", "delta", "serve"):
        for key in ("strategy", "dataset"):
            _check(problems, isinstance(entry.get(key), str), f"{where}.{key} must be a string")
        for key in ("rows", "chunk_size", "workers"):
            _check(
                problems,
                isinstance(entry.get(key), int) and not isinstance(entry.get(key), bool),
                f"{where}.{key} must be an integer",
            )
        _check(problems, isinstance(entry.get("params"), dict), f"{where}.params must be an object")
    if "ops" in entry or suite in ("core", "service", "stream", "parallel", "delta", "serve"):
        ops = entry.get("ops")
        if _check(problems, isinstance(ops, dict), f"{where}.ops must be an object"):
            for key, item in ops.items():
                _check(
                    problems,
                    isinstance(item, (int, float, bool, str)),
                    f"{where}.ops.{key} must be a scalar",
                )
            if suite == "serve":
                # The load-benchmark verdict fields the perf gate reads.
                for key in SERVE_REQUIRED_OPS:
                    _check(
                        problems,
                        isinstance(ops.get(key), _NUMBER) and not isinstance(ops.get(key), bool),
                        f"{where}.ops.{key} must be a number (serve suite)",
                    )
    _check_seconds(problems, entry.get("seconds"), f"{where}.seconds")
    if "stages" in entry:
        _check_mapping_of_numbers(problems, entry["stages"], f"{where}.stages")


def _check_micro(problems: list[str], entry: Any, where: str) -> None:
    if not _check(problems, isinstance(entry, dict), f"{where} must be an object"):
        return
    _check(problems, isinstance(entry.get("name"), str) and entry.get("name"), f"{where}.name must be a non-empty string")
    for key in ("baseline_seconds", "vectorized_seconds", "speedup", "max_abs_diff"):
        _check(problems, isinstance(entry.get(key), _NUMBER), f"{where}.{key} must be a number")
    _check(problems, isinstance(entry.get("identical"), bool), f"{where}.identical must be a boolean")
    _check(
        problems,
        isinstance(entry.get("n"), int) and not isinstance(entry.get("n"), bool),
        f"{where}.n must be an integer",
    )


def validate_report(report: Any) -> None:
    """Raise :class:`SchemaError` if ``report`` is not a well-formed bench report."""
    problems: list[str] = []
    if not isinstance(report, dict):
        raise SchemaError("report must be a JSON object")

    _check(
        problems,
        report.get("schema_version") == SCHEMA_VERSION,
        f"schema_version must be {SCHEMA_VERSION} (got {report.get('schema_version')!r})",
    )
    suite = report.get("suite")
    _check(problems, suite in SUITES, f"suite must be one of {SUITES} (got {suite!r})")
    _check(problems, report.get("scale") in ("tiny", "default"), "scale must be 'tiny' or 'default'")
    _check(
        problems,
        isinstance(report.get("seed"), int) and not isinstance(report.get("seed"), bool),
        "seed must be an integer",
    )

    timing = report.get("timing")
    if _check(problems, isinstance(timing, dict), "timing must be an object"):
        for key in ("warmup", "repeats"):
            _check(problems, isinstance(timing.get(key), int), f"timing.{key} must be an integer")

    environment = report.get("environment")
    if _check(problems, isinstance(environment, dict), "environment must be an object"):
        # The canonical record shape comes from repro.obs (the same dict the
        # trace header and /metrics carry); keys are pinned there.
        for key in ("python", "numpy", "platform", "repro_version"):
            _check(problems, isinstance(environment.get(key), str), f"environment.{key} must be a string")
        # cpu_count joined the record later; legacy committed reports may
        # omit it, but when present it must be the integer obs records.
        if "cpu_count" in environment:
            _check(problems, isinstance(environment.get("cpu_count"), int),
                   "environment.cpu_count must be an integer")

    scenarios = report.get("scenarios")
    if _check(problems, isinstance(scenarios, list) and scenarios, "scenarios must be a non-empty array"):
        names = set()
        for i, entry in enumerate(scenarios):
            _check_scenario(problems, entry, f"scenarios[{i}]", suite if suite in SUITES else "core")
            if isinstance(entry, dict) and isinstance(entry.get("name"), str):
                _check(problems, entry["name"] not in names, f"duplicate scenario name {entry['name']!r}")
                names.add(entry["name"])

    if "micro" in report:
        micro = report["micro"]
        if _check(problems, isinstance(micro, list), "micro must be an array"):
            for i, entry in enumerate(micro):
                _check_micro(problems, entry, f"micro[{i}]")

    if problems:
        raise SchemaError("\n".join(problems))
