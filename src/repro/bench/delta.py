"""The ``delta`` benchmark suite: incremental vs full re-publish.

Each scenario models one append to a living dataset: the synthetic table's
records are sorted by group key (appends to a living dataset are naturally
key-localized — new rows arrive for a bounded key range, not uniformly over
every group), the last ``append_fraction`` of rows becomes the append batch,
and the rest is published once as the base.  The timed comparison is then

* **delta** — :func:`repro.delta.delta_publish` of the append batch against
  the captured base state (only the dirty chunks' kernels re-run);
* **full** — :func:`repro.stream.stream_publish` of base + append from
  scratch (every row re-indexed, every chunk's kernel re-run).

Per scenario the report records both timings, ``speedup_vs_full``, the
dirty-chunk fraction, and a ``byte_identical`` verdict — the delta output
must equal the full re-publish bit for bit at every append fraction (the
hard invariant the differential test harness pins; the bench re-checks it
on real paper-scale data).  As the append fraction shrinks, the dirty
fraction and the delta time drop while the full time stays flat — the
incremental advantage the suite exists to show.

The suite writes ``BENCH_delta.json`` through the shared runner/schema
machinery; ``docs/delta.md`` reads its numbers.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.bench.scenarios import Scenario
from repro.bench.timing import TimingSpec, time_callable
from repro.delta.engine import delta_publish, publish_base
from repro.stream import stream_publish

_SENSITIVE = {"adult": "Income", "census": "Occupation"}

#: Groups per kernel chunk for every delta scenario.  Smaller than the other
#: suites' 256 on purpose: the dirty-chunk resolution is one chunk, so finer
#: chunks let a small key-localized append leave more of the output clean.
_CHUNK_SIZE = 64


def delta_scenarios(tiny: bool = False) -> list[Scenario]:
    """The delta-suite scenario list: strategy × shrinking append fraction.

    ``append_fraction`` and ``chunk_rows`` ride in ``params``; the order —
    strategy-major, then fraction descending — is fixed so the emitted
    report is diffable, like every other suite's.
    """
    if tiny:
        points = [("sps", "adult", 2_000, 0.10), ("sps", "adult", 2_000, 0.01)]
        chunk_rows = 1_000
    else:
        points = [
            ("sps", "adult", 50_000, 0.10),
            ("sps", "adult", 50_000, 0.05),
            ("sps", "adult", 50_000, 0.01),
            ("dp-laplace", "census", 50_000, 0.10),
            ("dp-laplace", "census", 50_000, 0.01),
        ]
        chunk_rows = 5_000
    return [
        Scenario(
            name=f"delta/{strategy}/{dataset}-{rows}/a{fraction * 100:g}pct",
            suite="delta",
            strategy=strategy,
            dataset=dataset,
            rows=rows,
            chunk_size=_CHUNK_SIZE,
            workers=1,
            params={"append_fraction": fraction, "chunk_rows": chunk_rows},
        )
        for strategy, dataset, rows, fraction in points
    ]


def _write_rows(path: Path, header: list[str], rows: list[Any]) -> None:
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def run_delta_scenario(
    scenario: Scenario,
    table: Any,
    seed: int,
    timing: TimingSpec,
    workdir: Path,
) -> dict[str, Any]:
    """Benchmark one delta scenario against its full-re-publish twin."""
    sensitive = _SENSITIVE[scenario.dataset]
    fraction = float(scenario.params["append_fraction"])
    chunk_rows = int(scenario.params["chunk_rows"])
    header = list(table.schema.public_names) + [table.schema.sensitive_name]
    records = sorted(table.records())
    n_append = max(1, round(scenario.rows * fraction))

    stem = f"{scenario.dataset}-{scenario.rows}-a{fraction:g}"
    base_csv = workdir / f"{stem}-base.csv"
    append_csv = workdir / f"{stem}-append.csv"
    full_csv = workdir / f"{stem}-full.csv"
    _write_rows(base_csv, header, records[:-n_append])
    _write_rows(append_csv, header, records[-n_append:])
    _write_rows(full_csv, header, records)

    base_pub = workdir / f"{stem}-base-pub.csv"
    base_report = publish_base(
        base_csv,
        sensitive=sensitive,
        output=base_pub,
        strategy=scenario.strategy,
        rng=seed,
        chunk_size=scenario.chunk_size,
        chunk_rows=chunk_rows,
    )
    state = base_report.state
    assert state is not None
    delta_out = workdir / f"{stem}-delta-out.csv"
    full_out = workdir / f"{stem}-full-out.csv"

    # Writing to `output=` leaves the pristine base untouched, so the timed
    # callable is idempotent across warmup + repeats.
    def delta_once() -> Any:
        return delta_publish(state, append_csv, output=delta_out)

    def full_once() -> Any:
        return stream_publish(
            full_csv,
            sensitive=sensitive,
            strategy=scenario.strategy,
            rng=seed,
            chunk_size=scenario.chunk_size,
            chunk_rows=chunk_rows,
            output=full_out,
        )

    delta_report, delta_meas = time_callable(delta_once, timing)
    full_report, full_meas = time_callable(full_once, timing)
    byte_identical = delta_out.read_bytes() == full_out.read_bytes()
    audits_agree = (delta_report.audit is None) == (full_report.audit is None) and (
        delta_report.audit is None
        or (
            delta_report.audit.group_violation_rate
            == full_report.audit.group_violation_rate
            and delta_report.audit.is_private == full_report.audit.is_private
        )
    )

    entry = scenario.to_json()
    entry["ops"] = {
        "rows": scenario.rows,
        "rows_appended": n_append,
        "append_fraction": fraction,
        "published_records": delta_report.published_records,
        "n_groups": delta_report.n_groups,
        "groups_touched": delta_report.groups_touched,
        "n_chunks": delta_report.n_chunks,
        "n_chunks_dirty": delta_report.n_chunks_dirty,
        "dirty_fraction": delta_report.dirty_fraction,
        "mode": delta_report.mode,
        "rows_per_second": scenario.rows / delta_meas.best,
        "full_seconds_best": float(full_meas.best),
        "speedup_vs_full": float(full_meas.best / delta_meas.best),
        "byte_identical": bool(byte_identical),
        "audits_agree": bool(audits_agree),
    }
    entry["seconds"] = delta_meas.to_json()
    entry["stages"] = {stage: float(s) for stage, s in delta_report.timings.items()}
    return entry
