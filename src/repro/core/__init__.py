"""The paper's primary contribution: reconstruction privacy.

* :mod:`repro.core.bounds` — tail-probability bounds for Poisson trials
  (Chernoff, Chebyshev, Markov) and the Theorem-2 conversion between bounds on
  the observed count ``O*`` and bounds on the reconstruction error of ``F'``;
* :mod:`repro.core.criterion` — the (lambda, delta)-reconstruction-privacy
  criterion, the per-value test of Corollary 4 and the maximum group size
  ``s_g`` of Equation (10);
* :mod:`repro.core.testing` — data-set level auditing: which personal groups
  violate the criterion, and the violation rates ``v_g`` / ``v_r``;
* :mod:`repro.core.sps` — the Sampling-Perturbing-Scaling enforcement
  algorithm of Section 5;
* :mod:`repro.core.publisher` — the end-to-end publishing pipeline
  (generalise NA values, audit, enforce, publish).
"""

from repro.core.bounds import (
    chernoff_lower_bound,
    chernoff_upper_bound,
    chebyshev_bound,
    markov_bound,
    convert_omega_to_lambda,
    convert_lambda_to_omega,
    reconstruction_error_bounds,
)
from repro.core.criterion import (
    PrivacySpec,
    max_group_size,
    value_is_private,
    group_is_private,
)
from repro.core.testing import GroupAudit, PrivacyAudit, audit_table
from repro.core.sps import SPSResult, sps_group, sps_publish
from repro.core.publisher import PublishResult, ReconstructionPrivacyPublisher

__all__ = [
    "chernoff_lower_bound",
    "chernoff_upper_bound",
    "chebyshev_bound",
    "markov_bound",
    "convert_omega_to_lambda",
    "convert_lambda_to_omega",
    "reconstruction_error_bounds",
    "PrivacySpec",
    "max_group_size",
    "value_is_private",
    "group_is_private",
    "GroupAudit",
    "PrivacyAudit",
    "audit_table",
    "SPSResult",
    "sps_group",
    "sps_publish",
    "PublishResult",
    "ReconstructionPrivacyPublisher",
]
