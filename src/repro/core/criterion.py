"""The (lambda, delta)-reconstruction-privacy criterion (Definition 3).

A sensitive value ``sa`` with frequency ``f`` in a personal group ``g`` is
``(lambda, delta)``-reconstruction-private if the smallest upper bound the
adversary can place on ``Pr[(F' - f)/f > lambda]`` or
``Pr[(F' - f)/f < -lambda]`` is at least ``delta``.  Using the lower-tail
Chernoff bound (which is always the smaller of the two for ``omega <= 1``,
Section 4.3), Corollary 4 reduces the test to a simple size condition:

    |g|  <=  -2 (f p + (1 - p)/m) ln(delta) / (lambda p f)^2

and Equation (10) defines the *maximum group size* ``s_g`` as the right-hand
side evaluated at the group's maximum SA frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.bounds import reconstruction_error_bounds
from repro.dataset.groups import PersonalGroup
from repro.perturbation.matrix import PerturbationMatrix


@dataclass(frozen=True)
class PrivacySpec:
    """A reconstruction-privacy specification ``(lambda, delta)`` plus ``(p, m)``.

    Parameters
    ----------
    lam:
        ``lambda``: the relative-error threshold that personal reconstruction
        must not beat.  Must be positive.
    delta:
        ``delta``: the minimum value the smallest tail-probability upper bound
        must reach.  Must lie in ``(0, 1)``; the paper's Table 6 sweeps
        0.1-0.5 with a default of 0.3.  (``delta = 0`` is trivially satisfied
        and ``delta = 1`` can never be satisfied by a finite group, so both
        are rejected.)
    retention_probability:
        ``p`` of the uniform perturbation that will publish the data.
    domain_size:
        ``m``, the SA domain size.
    """

    lam: float
    delta: float
    retention_probability: float
    domain_size: int

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ValueError("lambda must be positive")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must lie strictly between 0 and 1")
        # Constructing the matrix validates p and m.
        PerturbationMatrix(self.retention_probability, self.domain_size)

    @property
    def off_diagonal(self) -> float:
        """``(1 - p)/m``, the background publication probability."""
        return PerturbationMatrix(self.retention_probability, self.domain_size).off_diagonal

    def lambda_upper_limit(self, frequency: float) -> float:
        """The largest ``lambda`` covered by the lower-tail bound: ``1 + (1-p)/m / (p f)``.

        Corollary 4 is stated for ``lambda`` in ``(0, 1 + ((1-p)/m)/(p f)]``,
        which corresponds to ``omega`` in ``(0, 1]``.
        """
        if frequency <= 0:
            return math.inf
        return 1.0 + self.off_diagonal / (self.retention_probability * frequency)


def max_group_size(spec: PrivacySpec, frequency: float) -> float:
    """Equation (10): the maximum group size ``s_g`` for a maximum frequency ``f``.

    ``s_g = -2 (f p + (1 - p)/m) ln(delta) / (lambda p f)^2``.

    A group larger than ``s_g`` gives the adversary enough independent coin
    tosses to reconstruct the frequency of its dominant value more accurately
    than the ``(lambda, delta)`` target allows.  For ``f = 0`` the group is
    vacuously private and ``s_g`` is infinite.
    """
    if not 0.0 <= frequency <= 1.0:
        raise ValueError("frequency must lie in [0, 1]")
    if frequency == 0.0:
        return math.inf
    p = spec.retention_probability
    numerator = -2.0 * (frequency * p + spec.off_diagonal) * math.log(spec.delta)
    denominator = (spec.lam * p * frequency) ** 2
    return numerator / denominator


def value_is_private(spec: PrivacySpec, group_size: int, frequency: float) -> bool:
    """Corollary 4: is a value with frequency ``f`` private in a group of this size?

    Returns ``True`` when ``|g| <= s_g(f)``, i.e. the best (Chernoff-derived)
    upper bound on the reconstruction error probability is at least ``delta``.
    Values absent from the group (``f = 0``) are trivially private.
    """
    if group_size < 0:
        raise ValueError("group_size must be non-negative")
    if group_size == 0 or frequency == 0.0:
        return True
    return group_size <= max_group_size(spec, frequency)


def group_is_private(spec: PrivacySpec, group: PersonalGroup) -> bool:
    """Whether every SA value in ``group`` is (lambda, delta)-reconstruction-private.

    Because ``s_g(f)`` is decreasing in ``f`` (shown in Section 5), it is
    enough to test the group's maximum frequency, which is what this function
    does; it therefore matches the paper's single-threshold test.
    """
    if group.size == 0:
        return True
    return value_is_private(spec, group.size, group.max_frequency)


def smallest_error_bound(
    spec: PrivacySpec, group_size: int, frequency: float, method: str = "chernoff"
) -> float:
    """The smallest upper bound ``min{U, L}`` on the personal-reconstruction error.

    This is the quantity Definition 3 compares against ``delta``; it is
    exposed so callers (and tests) can inspect the actual bound value rather
    than only the boolean verdict of :func:`value_is_private`.
    """
    if group_size <= 0 or frequency <= 0.0:
        return 1.0
    bounds = reconstruction_error_bounds(
        spec.lam,
        group_size,
        frequency,
        spec.retention_probability,
        spec.domain_size,
        method=method,
    )
    return min(1.0, bounds.smallest)


def group_sizes_and_thresholds(
    spec: PrivacySpec, frequencies: np.ndarray
) -> np.ndarray:
    """Vectorised ``s_g`` for an array of maximum frequencies (used by Figure 1)."""
    frequencies = np.asarray(frequencies, dtype=float)
    if ((frequencies < 0) | (frequencies > 1)).any():
        raise ValueError("frequencies must lie in [0, 1]")
    p = spec.retention_probability
    with np.errstate(divide="ignore"):
        numerator = -2.0 * (frequencies * p + spec.off_diagonal) * math.log(spec.delta)
        denominator = (spec.lam * p * frequencies) ** 2
        out = np.where(frequencies > 0, numerator / np.where(denominator > 0, denominator, 1.0), np.inf)
    return out
