"""The Sampling-Perturbing-Scaling (SPS) enforcement algorithm (Section 5).

For every personal group ``g`` of the input table:

1. compute the maximum group size ``s_g`` (Equation 10) from the group's
   maximum SA frequency;
2. if ``|g| <= s_g`` the group already satisfies reconstruction privacy and is
   perturbed as-is (plain uniform perturbation);
3. otherwise, *Sampling* draws a frequency-preserving sample ``g1`` of
   expected size ``s_g`` (per SA value: ``floor(|g_sa| tau)`` records plus one
   more with probability equal to the fractional part, ``tau = s_g / |g|``),
   *Perturbing* applies uniform perturbation to ``g1``, and *Scaling*
   duplicates each perturbed record ``floor(tau')`` times plus one more with
   probability equal to the fractional part, ``tau' = |g| / |g1|``, so the
   published group returns to roughly the original size.

The published table ``D*_2`` is the union of the per-group outputs.  Privacy
holds because only ``|g1| ~ s_g`` independent coin tosses were performed
(Theorem 4); utility holds because sampling and scaling both preserve SA
frequencies in expectation (Theorem 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.criterion import PrivacySpec, max_group_size
from repro.dataset.groups import GroupIndex, PersonalGroup, personal_groups
from repro.dataset.table import Table
from repro.perturbation.uniform import UniformPerturbation
from repro.utils.rng import default_rng


@dataclass(frozen=True)
class GroupPublication:
    """What SPS did to one personal group."""

    key: tuple[int, ...]
    original_size: int
    max_group_size: float
    sampled: bool
    sample_size: int
    published_size: int


@dataclass(frozen=True)
class SPSResult:
    """The published table ``D*_2`` and per-group bookkeeping."""

    published: Table
    groups: tuple[GroupPublication, ...]
    spec: PrivacySpec

    @property
    def n_sampled_groups(self) -> int:
        """How many groups actually needed sampling (``|g| > s_g``)."""
        return sum(1 for g in self.groups if g.sampled)

    @property
    def sampled_fraction(self) -> float:
        """Fraction of groups that needed sampling."""
        if not self.groups:
            return 0.0
        return self.n_sampled_groups / len(self.groups)


def _stochastic_round(value: float, rng: np.random.Generator) -> int:
    """Round ``value`` down, plus one with probability equal to its fractional part."""
    floor = int(np.floor(value))
    fraction = value - floor
    if fraction > 0 and rng.random() < fraction:
        floor += 1
    return floor


def _sample_counts(
    counts: np.ndarray, sampling_rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Frequency-preserving sample sizes per SA value (the *Sampling* step).

    All records of a personal group sharing the same SA value are identical,
    so sampling reduces to choosing how many copies of each value to keep:
    ``floor(count * tau)`` plus one more with probability equal to the
    fractional part.  One uniform is drawn per SA value with a non-zero
    fractional part, in value order, exactly as the per-value
    :func:`_stochastic_round` loop would — numpy generators fill array draws
    from the same stream as repeated scalar draws, so this vectorised form is
    byte-identical to the loop for any seed.
    """
    scaled = counts * sampling_rate
    floors = np.floor(scaled)
    fractions = scaled - floors
    sampled = floors.astype(np.int64)
    # counts == 0 entries have a zero fractional part and never draw.
    draw = fractions > 0
    n_draws = int(np.count_nonzero(draw))
    if n_draws:
        sampled[draw] += rng.random(n_draws) < fractions[draw]
    return np.minimum(sampled, counts)


def _scale_codes(codes: np.ndarray, target_size: int, rng: np.random.Generator) -> np.ndarray:
    """Duplicate perturbed SA codes back up to roughly ``target_size`` (the *Scaling* step).

    Every record is repeated ``floor(tau')`` times plus one more with
    probability equal to the fractional part of ``tau'``, as a single
    vectorised draw (one uniform per record instead of a Python-level loop —
    this is the hot path for large sampled groups).
    """
    if codes.size == 0:
        return codes
    ratio = target_size / codes.size
    floor = int(np.floor(ratio))
    fraction = ratio - floor
    repeats = floor + (rng.random(codes.size) < fraction).astype(np.int64)
    return np.repeat(codes, repeats)


def sps_group(
    group: PersonalGroup,
    spec: PrivacySpec,
    perturbation: UniformPerturbation,
    rng: np.random.Generator,
) -> tuple[np.ndarray, GroupPublication]:
    """Run SPS on one personal group.

    Returns the published SA codes for the group (the NA key is unchanged by
    construction) and the bookkeeping record.
    """
    threshold = max_group_size(spec, group.max_frequency)
    counts = group.sensitive_counts

    if group.size <= threshold:
        # No sampling needed: perturb every record of the group.
        original_codes = np.repeat(np.arange(counts.size), counts)
        published = perturbation.perturb_codes(original_codes, rng)
        record = GroupPublication(
            key=group.key,
            original_size=group.size,
            max_group_size=threshold,
            sampled=False,
            sample_size=group.size,
            published_size=int(published.size),
        )
        return published, record

    sampling_rate = threshold / group.size
    sampled_counts = _sample_counts(counts, sampling_rate, rng)
    if sampled_counts.sum() == 0:
        # Degenerate corner (s_g < 1): keep one record of the dominant value so
        # the group is not silently deleted from the published data.
        sampled_counts[int(np.argmax(counts))] = 1
    sample_codes = np.repeat(np.arange(sampled_counts.size), sampled_counts)
    perturbed = perturbation.perturb_codes(sample_codes, rng)
    published = _scale_codes(perturbed, group.size, rng)
    record = GroupPublication(
        key=group.key,
        original_size=group.size,
        max_group_size=threshold,
        sampled=True,
        sample_size=int(sample_codes.size),
        published_size=int(published.size),
    )
    return published, record


def sps_publish_groups(
    groups: Sequence[PersonalGroup],
    spec: PrivacySpec,
    rng: int | np.random.Generator | None,
    n_public: int,
    perturbation: UniformPerturbation | None = None,
) -> tuple[np.ndarray, list[GroupPublication]]:
    """Run SPS over a chunk of personal groups and return its published block.

    This is the reusable unit of work behind :func:`sps_publish`: callers that
    partition a :class:`GroupIndex` into chunks (e.g. the service engine's
    parallel executor) hand each chunk its own seeded generator and
    concatenate the returned blocks, so the full published table is
    deterministic for a fixed chunking regardless of execution order.

    Returns the ``(n_published, n_public + 1)`` code block for the chunk
    (NA key columns then the published SA column) and the per-group
    bookkeeping records, in input group order.
    """
    rng = default_rng(rng)
    if perturbation is None:
        perturbation = UniformPerturbation(spec.retention_probability, spec.domain_size)
    code_blocks: list[np.ndarray] = []
    keys: list[tuple[int, ...]] = []
    records: list[GroupPublication] = []
    for group in groups:
        published_codes, record = sps_group(group, spec, perturbation, rng)
        records.append(record)
        if published_codes.size == 0:
            continue
        code_blocks.append(published_codes)
        keys.append(group.key)
    if not code_blocks:
        return np.empty((0, n_public + 1), dtype=np.int64), records
    # Assemble the chunk's block in two bulk operations (repeat the NA keys,
    # concatenate the SA codes) instead of one allocation per group; the row
    # order — and therefore the published bytes — is unchanged.
    sizes = np.fromiter((block.size for block in code_blocks), dtype=np.int64, count=len(code_blocks))
    codes = np.empty((int(sizes.sum()), n_public + 1), dtype=np.int64)
    codes[:, :n_public] = np.repeat(
        np.asarray(keys, dtype=np.int64).reshape(len(keys), n_public), sizes, axis=0
    )
    codes[:, n_public] = np.concatenate(code_blocks)
    return codes, records


def sps_publish(
    table: Table,
    spec: PrivacySpec,
    rng: int | np.random.Generator | None = None,
    groups: GroupIndex | None = None,
) -> SPSResult:
    """Publish ``D*_2``: run SPS over every personal group of ``table``.

    Parameters
    ----------
    table:
        The raw table ``D`` (after NA generalisation if applicable).
    spec:
        The ``(lambda, delta, p, m)`` specification; ``m`` must match the
        table's sensitive domain size.
    rng:
        Seed or generator for all coin tosses (sampling, perturbation, scaling).
    groups:
        Optional pre-built group index.
    """
    if spec.domain_size != table.schema.sensitive_domain_size:
        raise ValueError("spec.domain_size does not match the table's sensitive domain size")
    rng = default_rng(rng)
    index = groups if groups is not None else personal_groups(table)
    codes, records = sps_publish_groups(
        list(index), spec, rng, n_public=len(table.schema.public)
    )
    published_table = Table(table.schema, codes)
    return SPSResult(published=published_table, groups=tuple(records), spec=spec)
