"""Tail bounds for Poisson trials and the Theorem-2 bound conversion.

The observed count ``O*`` of a sensitive value in a perturbed subset is a sum
of independent Bernoulli (Poisson) trials, so classical tail bounds apply:

* Chernoff (Theorem 3):  ``Pr[(X - mu)/mu >  w] < exp(-w^2 mu / (2 + w))`` and
  ``Pr[(X - mu)/mu < -w] < exp(-w^2 mu / 2)``;
* Chebyshev and Markov are provided for the ablation comparing how the choice
  of bound changes the privacy test.

Theorem 2 converts any bound on the relative error of ``O*`` into a bound on
the relative error of the MLE ``F'`` through ``lambda = w mu / (|S| p f)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.reconstruction.variance import expected_observed_count, observed_count_variance


# --------------------------------------------------------------------------- #
# Poisson-trial tail bounds (on the observed count O*)
# --------------------------------------------------------------------------- #
def chernoff_upper_bound(omega: float, mu: float) -> float:
    """Chernoff bound on ``Pr[(X - mu)/mu > omega]`` for ``omega > 0`` (Eq. 5)."""
    _validate_omega_mu(omega, mu)
    return math.exp(-(omega**2) * mu / (2.0 + omega))


def chernoff_lower_bound(omega: float, mu: float) -> float:
    """Chernoff bound on ``Pr[(X - mu)/mu < -omega]`` for ``omega`` in ``(0, 1]`` (Eq. 6)."""
    _validate_omega_mu(omega, mu)
    if omega > 1.0:
        raise ValueError("the lower-tail Chernoff bound requires omega <= 1")
    return math.exp(-(omega**2) * mu / 2.0)


def chebyshev_bound(omega: float, mu: float, variance: float) -> float:
    """Chebyshev bound on ``Pr[|X - mu| > omega mu]`` (two-sided), capped at 1."""
    _validate_omega_mu(omega, mu)
    if variance < 0:
        raise ValueError("variance must be non-negative")
    return min(1.0, variance / (omega * mu) ** 2)


def markov_bound(omega: float, mu: float) -> float:
    """Markov bound on ``Pr[X > (1 + omega) mu]``, capped at 1."""
    _validate_omega_mu(omega, mu)
    return min(1.0, 1.0 / (1.0 + omega))


def _validate_omega_mu(omega: float, mu: float) -> None:
    if omega <= 0:
        raise ValueError("omega must be positive")
    if mu <= 0:
        raise ValueError("mu must be positive")


# --------------------------------------------------------------------------- #
# Theorem 2: conversion between O* bounds and F' bounds
# --------------------------------------------------------------------------- #
def convert_omega_to_lambda(
    omega: float,
    subset_size: int,
    frequency: float,
    retention_probability: float,
    domain_size: int,
) -> float:
    """Map a relative error ``omega`` on ``O*`` to the error ``lambda`` on ``F'``.

    ``lambda = omega * mu / (|S| p f)`` with ``mu = E[O*]`` (Theorem 2).
    """
    _validate_frequency(frequency)
    mu = expected_observed_count(subset_size, frequency, retention_probability, domain_size)
    return omega * mu / (subset_size * retention_probability * frequency)


def convert_lambda_to_omega(
    lam: float,
    subset_size: int,
    frequency: float,
    retention_probability: float,
    domain_size: int,
) -> float:
    """Inverse of :func:`convert_omega_to_lambda`: ``omega = lambda |S| p f / mu``."""
    _validate_frequency(frequency)
    mu = expected_observed_count(subset_size, frequency, retention_probability, domain_size)
    return lam * subset_size * retention_probability * frequency / mu


def _validate_frequency(frequency: float) -> None:
    if not 0.0 < frequency <= 1.0:
        raise ValueError("frequency must lie in (0, 1] for the bound conversion")


# --------------------------------------------------------------------------- #
# Corollary 3: bounds on the reconstruction error of F'
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ErrorBounds:
    """Upper bounds on the over- and under-estimation tails of ``F'``.

    ``upper`` bounds ``Pr[(F' - f)/f > lambda]`` and ``lower`` bounds
    ``Pr[(F' - f)/f < -lambda]``.  ``None`` for the lower tail means the
    requested ``lambda`` maps to ``omega > 1``, where the paper's lower-tail
    Chernoff bound does not apply (the event is then impossible anyway, since
    ``O*`` cannot fall below zero by more than its mean).
    """

    upper: float
    lower: float | None

    @property
    def smallest(self) -> float:
        """``min{U, L}`` as used by Definition 3 (ignoring an inapplicable L)."""
        if self.lower is None:
            return self.upper
        return min(self.upper, self.lower)


def reconstruction_error_bounds(
    lam: float,
    subset_size: int,
    frequency: float,
    retention_probability: float,
    domain_size: int,
    method: str = "chernoff",
) -> ErrorBounds:
    """Corollary 3: Chernoff-derived bounds on the MLE's relative error.

    Parameters
    ----------
    lam:
        The relative-error threshold ``lambda`` of the privacy criterion.
    subset_size, frequency, retention_probability, domain_size:
        ``|S|``, ``f``, ``p`` and ``m``.
    method:
        ``"chernoff"`` (the paper's choice), ``"chebyshev"`` or ``"markov"``
        (ablations; Chebyshev is two-sided and is used for both tails, Markov
        only has an upper tail and reports 1.0 for the lower tail).
    """
    if lam <= 0:
        raise ValueError("lambda must be positive")
    _validate_frequency(frequency)
    mu = expected_observed_count(subset_size, frequency, retention_probability, domain_size)
    omega = convert_lambda_to_omega(lam, subset_size, frequency, retention_probability, domain_size)

    if method == "chernoff":
        upper = chernoff_upper_bound(omega, mu)
        lower = chernoff_lower_bound(omega, mu) if omega <= 1.0 else None
    elif method == "chebyshev":
        variance = observed_count_variance(
            subset_size, frequency, retention_probability, domain_size
        )
        two_sided = chebyshev_bound(omega, mu, variance)
        upper = two_sided
        lower = two_sided
    elif method == "markov":
        upper = markov_bound(omega, mu)
        lower = None
    else:
        raise ValueError(f"unknown bound method {method!r}")
    return ErrorBounds(upper=upper, lower=lower)
