"""Data-set level auditing of reconstruction privacy.

Section 6 measures the extent of violation on real data with two rates:

* ``v_g`` — the fraction of personal groups that violate the criterion;
* ``v_r`` — the fraction of *records* contained in a violating group (the
  coverage, i.e. how many individuals are exposed to accurate personal
  reconstruction).

:func:`audit_table` computes both, together with the per-group verdicts and
the ``s_g`` thresholds, in one pass over the personal groups of a table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.criterion import PrivacySpec, group_is_private, max_group_size
from repro.dataset.groups import GroupIndex, PersonalGroup, personal_groups
from repro.dataset.table import Table


@dataclass(frozen=True)
class GroupAudit:
    """The audit verdict for one personal group."""

    group: PersonalGroup
    max_group_size: float
    is_private: bool

    @property
    def size(self) -> int:
        """``|g|``, the group's record count."""
        return self.group.size

    @property
    def sampling_rate(self) -> float:
        """``tau = s_g / |g|`` — the sampling rate SPS would apply (capped at 1)."""
        if self.group.size == 0:
            return 1.0
        return min(1.0, self.max_group_size / self.group.size)


@dataclass(frozen=True)
class PrivacyAudit:
    """Audit of a whole table against a :class:`PrivacySpec`."""

    spec: PrivacySpec
    groups: tuple[GroupAudit, ...]
    total_records: int

    @property
    def n_groups(self) -> int:
        """``|G|``: number of personal groups."""
        return len(self.groups)

    @property
    def violating_groups(self) -> tuple[GroupAudit, ...]:
        """Audits of the groups that violate the criterion."""
        return tuple(audit for audit in self.groups if not audit.is_private)

    @property
    def group_violation_rate(self) -> float:
        """``v_g``: fraction of personal groups violating reconstruction privacy."""
        if not self.groups:
            return 0.0
        return len(self.violating_groups) / len(self.groups)

    @property
    def record_violation_rate(self) -> float:
        """``v_r``: fraction of records contained in a violating group."""
        if self.total_records == 0:
            return 0.0
        covered = sum(audit.size for audit in self.violating_groups)
        return covered / self.total_records

    @property
    def is_private(self) -> bool:
        """Whether every personal group satisfies the criterion."""
        return not self.violating_groups


def audit_group(spec: PrivacySpec, group: PersonalGroup) -> GroupAudit:
    """Audit a single personal group against ``spec``."""
    threshold = max_group_size(spec, group.max_frequency)
    return GroupAudit(group=group, max_group_size=threshold, is_private=group_is_private(spec, group))


def audit_table(
    table: Table,
    spec: PrivacySpec,
    groups: GroupIndex | None = None,
) -> PrivacyAudit:
    """Audit every personal group of ``table`` against ``spec``.

    The audit is a property of the *original* data and the planned
    perturbation parameters (the criterion is a property of the perturbation
    matrix, not of a particular perturbed instance), so it takes the raw table
    ``D`` rather than a published ``D*``.

    Parameters
    ----------
    table:
        The raw table ``D`` (after NA generalisation if applicable).
    spec:
        The privacy specification, whose ``domain_size`` must match the
        table's sensitive domain.
    groups:
        An optional pre-built :class:`GroupIndex` to avoid recomputing it.
    """
    if spec.domain_size != table.schema.sensitive_domain_size:
        raise ValueError("spec.domain_size does not match the table's sensitive domain size")
    index = groups if groups is not None else personal_groups(table)
    audits = tuple(audit_group(spec, group) for group in index)
    return PrivacyAudit(spec=spec, groups=audits, total_records=len(table))
