"""Legacy end-to-end publisher — a deprecation shim over :mod:`repro.pipeline`.

The paper's workflow (generalise → audit → enforce with SPS → publish) is now
expressed by the strategy-first pipeline: ``repro.publish(table,
strategy="generalize+sps", lam=..., delta=..., rng=...)`` returns a
:class:`~repro.pipeline.report.PublishReport` with everything this module's
:class:`PublishResult` used to carry, plus per-stage timings and strategy
metadata.

:class:`ReconstructionPrivacyPublisher` is kept so existing call sites keep
working (it emits a :class:`DeprecationWarning` and delegates to the
pipeline); new code should use :func:`repro.publish` or
:class:`repro.pipeline.PublishPipeline` directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.criterion import PrivacySpec
from repro.core.sps import SPSResult
from repro.core.testing import PrivacyAudit, audit_table
from repro.dataset.table import Table
from repro.generalization.merging import GeneralizationResult, generalize_table
from repro.perturbation.uniform import perturb_table


@dataclass(frozen=True)
class PublishResult:
    """Everything produced by one publishing run (legacy bundle).

    New code should prefer :class:`~repro.pipeline.report.PublishReport`,
    which carries the same artifacts for every strategy.
    """

    spec: PrivacySpec
    generalization: GeneralizationResult | None
    prepared: Table
    audit: PrivacyAudit
    sps: SPSResult

    @property
    def published(self) -> Table:
        """The published table ``D*_2``."""
        return self.sps.published


class ReconstructionPrivacyPublisher:
    """Publish a table under (lambda, delta)-reconstruction privacy.

    .. deprecated::
        Use ``repro.publish(table, strategy="generalize+sps", ...)`` (or
        ``strategy="sps"`` when ``generalize=False``) instead; this class is
        a thin shim over that pipeline and will be removed in a future
        release.

    .. note::
        Since 1.2.0, :meth:`publish` draws its randomness through the
        pipeline's chunked per-group streams instead of one sequential
        generator, so for a fixed seed the published bytes differ from
        1.1.x (the output distribution is unchanged).  In exchange, a fixed
        seed now produces byte-identical output through the library, the
        service and the HTTP API at any worker count.

    Parameters
    ----------
    lam, delta:
        The privacy parameters of Definition 3.
    retention_probability:
        ``p`` of the uniform perturbation; pick it with
        :func:`repro.perturbation.rho_privacy.max_retention_for_rho_privacy`
        if a rho1-rho2 guarantee is also wanted.
    generalize:
        Whether to run the chi-square generalisation of Section 3.4 before
        forming personal groups (the paper always does for its experiments).
    significance:
        Significance level of the chi-square merging test.
    """

    def __init__(
        self,
        lam: float,
        delta: float,
        retention_probability: float,
        generalize: bool = True,
        significance: float = 0.05,
    ) -> None:
        warnings.warn(
            "ReconstructionPrivacyPublisher is deprecated; use "
            "repro.publish(table, strategy='generalize+sps', ...) or "
            "repro.pipeline.PublishPipeline instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._lam = lam
        self._delta = delta
        self._p = retention_probability
        self._generalize = generalize
        self._significance = significance

    def _strategy_params(self) -> tuple[str, dict[str, float]]:
        params = {
            "lam": self._lam,
            "delta": self._delta,
            "retention_probability": self._p,
        }
        if self._generalize:
            params["significance"] = self._significance
            return "generalize+sps", params
        return "sps", params

    def spec_for(self, table: Table) -> PrivacySpec:
        """The :class:`PrivacySpec` this publisher applies to ``table``."""
        return PrivacySpec(
            lam=self._lam,
            delta=self._delta,
            retention_probability=self._p,
            domain_size=table.schema.sensitive_domain_size,
        )

    def prepare(self, table: Table) -> tuple[Table, GeneralizationResult | None]:
        """Run (or skip) the generalisation step and return the table to publish."""
        if not self._generalize:
            return table, None
        result = generalize_table(table, significance=self._significance)
        return result.table, result

    def audit(self, table: Table) -> PrivacyAudit:
        """Audit ``table`` (after preparation) without publishing anything."""
        prepared, _ = self.prepare(table)
        return audit_table(prepared, self.spec_for(prepared))

    def publish(
        self,
        table: Table,
        rng: int | np.random.Generator | None = None,
    ) -> PublishResult:
        """Generalise, audit and publish ``table`` with SPS (via the pipeline)."""
        from repro.pipeline import PublishPipeline

        strategy, params = self._strategy_params()
        report = PublishPipeline(strategy, **params).with_rng(rng).run(table)
        return PublishResult(
            spec=report.spec,
            generalization=report.generalization,
            prepared=report.prepared,
            audit=report.audit,
            sps=report.sps,
        )

    def publish_uniform_baseline(
        self,
        table: Table,
        rng: int | np.random.Generator | None = None,
    ) -> Table:
        """Publish the plain uniform-perturbation baseline ``UP`` on the prepared table."""
        prepared, _ = self.prepare(table)
        return perturb_table(prepared, self._p, rng=rng)
