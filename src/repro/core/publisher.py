"""End-to-end publishing pipeline.

The paper's workflow for a data publisher is:

1. (optional) generalise public-attribute values that have the same impact on
   SA, so that aggregating "irrelevant" attributes cannot sharpen a personal
   reconstruction (Section 3.4);
2. audit the personal groups of the (generalised) table against the
   ``(lambda, delta)`` criterion (Corollary 4);
3. enforce the criterion with SPS, which samples only the violating groups
   (Section 5);
4. publish the perturbed table.

:class:`ReconstructionPrivacyPublisher` wires those steps together and records
everything a downstream analyst or auditor needs (the merge decisions, the
audit of the original table, the per-group SPS bookkeeping and the published
table itself).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.criterion import PrivacySpec
from repro.core.sps import SPSResult, sps_publish
from repro.core.testing import PrivacyAudit, audit_table
from repro.dataset.groups import personal_groups
from repro.dataset.table import Table
from repro.generalization.merging import GeneralizationResult, generalize_table
from repro.perturbation.uniform import perturb_table
from repro.utils.rng import default_rng


@dataclass(frozen=True)
class PublishResult:
    """Everything produced by one publishing run."""

    spec: PrivacySpec
    generalization: GeneralizationResult | None
    prepared: Table
    audit: PrivacyAudit
    sps: SPSResult

    @property
    def published(self) -> Table:
        """The published table ``D*_2``."""
        return self.sps.published


class ReconstructionPrivacyPublisher:
    """Publish a table under (lambda, delta)-reconstruction privacy.

    Parameters
    ----------
    lam, delta:
        The privacy parameters of Definition 3.
    retention_probability:
        ``p`` of the uniform perturbation; pick it with
        :func:`repro.perturbation.rho_privacy.max_retention_for_rho_privacy`
        if a rho1-rho2 guarantee is also wanted.
    generalize:
        Whether to run the chi-square generalisation of Section 3.4 before
        forming personal groups (the paper always does for its experiments).
    significance:
        Significance level of the chi-square merging test.
    """

    def __init__(
        self,
        lam: float,
        delta: float,
        retention_probability: float,
        generalize: bool = True,
        significance: float = 0.05,
    ) -> None:
        self._lam = lam
        self._delta = delta
        self._p = retention_probability
        self._generalize = generalize
        self._significance = significance

    def spec_for(self, table: Table) -> PrivacySpec:
        """The :class:`PrivacySpec` this publisher applies to ``table``."""
        return PrivacySpec(
            lam=self._lam,
            delta=self._delta,
            retention_probability=self._p,
            domain_size=table.schema.sensitive_domain_size,
        )

    def prepare(self, table: Table) -> tuple[Table, GeneralizationResult | None]:
        """Run (or skip) the generalisation step and return the table to publish."""
        if not self._generalize:
            return table, None
        result = generalize_table(table, significance=self._significance)
        return result.table, result

    def audit(self, table: Table) -> PrivacyAudit:
        """Audit ``table`` (after preparation) without publishing anything."""
        prepared, _ = self.prepare(table)
        return audit_table(prepared, self.spec_for(prepared))

    def publish(
        self,
        table: Table,
        rng: int | np.random.Generator | None = None,
    ) -> PublishResult:
        """Generalise, audit and publish ``table`` with SPS."""
        rng = default_rng(rng)
        prepared, generalization = self.prepare(table)
        spec = self.spec_for(prepared)
        groups = personal_groups(prepared)
        audit = audit_table(prepared, spec, groups=groups)
        sps = sps_publish(prepared, spec, rng=rng, groups=groups)
        return PublishResult(
            spec=spec,
            generalization=generalization,
            prepared=prepared,
            audit=audit,
            sps=sps,
        )

    def publish_uniform_baseline(
        self,
        table: Table,
        rng: int | np.random.Generator | None = None,
    ) -> Table:
        """Publish the plain uniform-perturbation baseline ``UP`` on the prepared table."""
        prepared, _ = self.prepare(table)
        return perturb_table(prepared, self._p, rng=rng)
