"""Tabular dataset substrate.

The paper operates on a table ``D`` with several public attributes ``NA`` and
one sensitive attribute ``SA`` (Section 3.1).  This package provides:

* :mod:`repro.dataset.schema` — attribute domains and the ``NA``/``SA`` split;
* :mod:`repro.dataset.table` — an integer-encoded, numpy-backed table;
* :mod:`repro.dataset.groups` — personal and aggregate group partitioning
  (Section 3.2);
* :mod:`repro.dataset.adult` / :mod:`repro.dataset.census` — synthetic
  generators calibrated to the two data sets used in the paper's evaluation;
* :mod:`repro.dataset.loaders` — CSV import/export for user-supplied data.
"""

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.dataset.groups import GroupIndex, PersonalGroup, aggregate_group, personal_groups
from repro.dataset.adult import generate_adult
from repro.dataset.census import generate_census
from repro.dataset.loaders import read_csv, write_csv

__all__ = [
    "Attribute",
    "Schema",
    "Table",
    "GroupIndex",
    "PersonalGroup",
    "personal_groups",
    "aggregate_group",
    "generate_adult",
    "generate_census",
    "read_csv",
    "write_csv",
]
