"""CSV import/export for user-supplied data sets.

The experiments in this repository run on the synthetic ADULT/CENSUS
generators, but a downstream user who has the real files (or any other
categorical table) can load them with :func:`read_csv`, naming which column is
the sensitive attribute.  Domains are inferred from the observed values.
"""

from __future__ import annotations

import csv
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import IO

from repro.dataset.schema import Attribute, Schema, SchemaError
from repro.dataset.table import Table


def infer_schema(
    header: Sequence[str],
    rows: Iterable[Sequence[str]],
    sensitive: str,
    source: str = "csv data",
) -> tuple[Schema, list[Sequence[str]]]:
    """Infer a :class:`Schema` from a header and string rows.

    Returns the schema and the materialised rows (so the caller can encode
    them without re-reading the source).  The sensitive column may appear at
    any position in the input; records are reordered so it comes last.
    ``source`` names the data's origin in error messages.

    Example:

    >>> schema, rows = infer_schema(["City", "Disease"], [["Oslo", "Flu"]], "Disease")
    >>> schema.public_names, schema.sensitive_name
    (('City',), 'Disease')
    >>> rows
    [['Oslo', 'Flu']]
    """
    header = [str(h) for h in header]
    if sensitive not in header:
        raise SchemaError(
            f"{source}: sensitive column {sensitive!r} not found in header {header}"
        )
    materialised = [list(map(str, row)) for row in rows]
    for i, row in enumerate(materialised):
        if len(row) != len(header):
            raise SchemaError(
                f"{source}: row {i + 1} has {len(row)} fields but the header "
                f"has {len(header)}"
            )

    sensitive_index = header.index(sensitive)
    public_names = [h for i, h in enumerate(header) if i != sensitive_index]
    public_indices = [i for i in range(len(header)) if i != sensitive_index]
    reordered = [
        [row[i] for i in public_indices] + [row[sensitive_index]] for row in materialised
    ]
    return _schema_from_reordered(public_names, sensitive, reordered), reordered


def source_label(source: object) -> str:
    """A human-readable name for a CSV source, used in error messages.

    Paths name themselves; file-like objects are named by their ``name``
    attribute when they have one (open files do, ``io.StringIO`` does not).

    >>> source_label("data/adult.csv")
    'data/adult.csv'
    >>> import io
    >>> source_label(io.StringIO("City,Disease\\n"))
    'csv stream'
    """
    if hasattr(source, "read"):
        name = getattr(source, "name", None)
        return f"csv stream {name!r}" if isinstance(name, str) else "csv stream"
    return str(source)


def _strip_bom(header: list[str]) -> list[str]:
    """Remove a UTF-8 byte-order mark from the first header cell, if present."""
    if header and header[0].startswith('\ufeff'):
        header = [header[0].lstrip('\ufeff'), *header[1:]]
    return header


def open_csv_rows(
    handle: Iterable[str], source: str, sensitive: str, delimiter: str = ","
) -> tuple[list[str], Iterable[list[str]]]:
    """Validate a CSV handle's header and return ``(header, row iterator)``.

    The single source of the tolerant-input contract shared by
    :func:`read_csv` and the streaming
    :class:`~repro.stream.reader.ChunkedReader`: the UTF-8 BOM is stripped
    from the header, blank lines are skipped, and every error \u2014 empty input,
    missing sensitive column, ragged row, header without data rows \u2014 names
    ``source`` (plus the line number for ragged rows).  The iterator yields
    rows reordered so the sensitive column comes last, and raises
    :class:`~repro.dataset.schema.SchemaError` lazily as problems are
    reached, so callers can consume it chunk by chunk with bounded memory.

    >>> import io
    >>> header, rows = open_csv_rows(
    ...     io.StringIO("Disease,City\\nFlu,Oslo\\n"), "demo.csv", "Disease")
    >>> header, list(rows)
    (['Disease', 'City'], [['Oslo', 'Flu']])
    """
    reader = csv.reader(handle, delimiter=delimiter)
    try:
        header = _strip_bom(next(reader))
    except StopIteration:
        raise SchemaError(f"{source} is empty") from None
    if sensitive not in header:
        raise SchemaError(
            f"{source}: sensitive column {sensitive!r} not found in header {header}"
        )
    sensitive_index = header.index(sensitive)
    public_indices = [i for i in range(len(header)) if i != sensitive_index]
    width = len(header)

    def rows() -> Iterable[list[str]]:
        yielded = 0
        for row in reader:
            if not row:
                continue
            if len(row) != width:
                raise SchemaError(
                    f"{source}, line {reader.line_num}: row has {len(row)} "
                    f"fields but the header has {width}"
                )
            yielded += 1
            yield [row[i] for i in public_indices] + [row[sensitive_index]]
        if yielded == 0:
            raise SchemaError(
                f"{source} has a header but no data rows; at least one record "
                "is required to infer the attribute domains"
            )

    return header, rows()


def _schema_from_reordered(
    public_names: Sequence[str], sensitive: str, rows: Iterable[Sequence[str]]
) -> Schema:
    """Infer the schema from rows already validated and reordered SA-last.

    Produces exactly the schema :func:`infer_schema` infers (sorted domains)
    without re-validating or re-copying rows :func:`open_csv_rows` already
    checked — one pass collecting domain values per column.
    """
    seen: list[set[str]] = [set() for _ in range(len(public_names) + 1)]
    for row in rows:
        for column, value in enumerate(row):
            seen[column].add(value)
    return Schema(
        public=tuple(
            Attribute(name, tuple(sorted(seen[i]))) for i, name in enumerate(public_names)
        ),
        sensitive=Attribute(sensitive, tuple(sorted(seen[-1]))),
    )


def _read_csv_stream(
    handle: Iterable[str], source: str, sensitive: str, delimiter: str
) -> Table:
    header, row_iter = open_csv_rows(handle, source, sensitive, delimiter)
    rows = list(row_iter)
    sensitive_index = header.index(sensitive)
    public_names = [h for i, h in enumerate(header) if i != sensitive_index]
    schema = _schema_from_reordered(public_names, sensitive, rows)
    return Table.from_records(schema, rows)


def read_csv(source: str | Path | IO[str], sensitive: str, delimiter: str = ",") -> Table:
    """Load categorical CSV data (with header) into a :class:`Table`.

    Parameters
    ----------
    source:
        CSV file path, or an open text-mode file-like object (anything with a
        ``read`` method, e.g. an upload stream); file-like sources are read
        but not closed.
    sensitive:
        Name of the column to treat as the sensitive attribute SA.
    delimiter:
        Field delimiter (default comma).

    Raises
    ------
    SchemaError
        If the input is empty or contains a header but no data rows; the
        message names the source (path or stream) and, for malformed rows,
        the offending line number.

    Example:

    >>> import io
    >>> table = read_csv(io.StringIO("City,Disease\\nOslo,Flu\\nOslo,Cold\\n"),
    ...                  sensitive="Disease")
    >>> len(table), table.schema.sensitive_name
    (2, 'Disease')
    """
    if hasattr(source, "read"):
        return _read_csv_stream(source, source_label(source), sensitive, delimiter)
    path = Path(source)
    with path.open(newline="", encoding="utf-8-sig") as handle:
        return _read_csv_stream(handle, str(path), sensitive, delimiter)


def _write_csv_stream(table: Table, handle: IO[str], delimiter: str) -> None:
    writer = csv.writer(handle, delimiter=delimiter)
    writer.writerow(list(table.schema.public_names) + [table.schema.sensitive_name])
    for record in table.records():
        writer.writerow(record)


def write_csv(table: Table, destination: str | Path | IO[str], delimiter: str = ",") -> None:
    """Write a table (public columns then the sensitive column) to CSV.

    Parameters
    ----------
    table:
        The table to serialise.
    destination:
        Output file path, or an open text-mode file-like object (anything
        with a ``write`` method, e.g. an HTTP response stream); file-like
        destinations are written but not closed, symmetrically with
        :func:`read_csv`'s file-like sources.
    delimiter:
        Field delimiter (default comma).

    Example:

    >>> import io
    >>> table = read_csv(io.StringIO("City,Disease\\nOslo,Flu\\n"), sensitive="Disease")
    >>> out = io.StringIO()
    >>> write_csv(table, out)
    >>> out.getvalue().splitlines()
    ['City,Disease', 'Oslo,Flu']
    """
    if hasattr(destination, "write"):
        _write_csv_stream(table, destination, delimiter)
        return
    path = Path(destination)
    # UTF-8 to mirror read_csv's utf-8-sig decoding, so round-trips work on
    # any locale.
    with path.open("w", newline="", encoding="utf-8") as handle:
        _write_csv_stream(table, handle, delimiter)
