"""CSV import/export for user-supplied data sets.

The experiments in this repository run on the synthetic ADULT/CENSUS
generators, but a downstream user who has the real files (or any other
categorical table) can load them with :func:`read_csv`, naming which column is
the sensitive attribute.  Domains are inferred from the observed values.
"""

from __future__ import annotations

import csv
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import IO

from repro.dataset.schema import Attribute, Schema, SchemaError
from repro.dataset.table import Table


def infer_schema(
    header: Sequence[str],
    rows: Iterable[Sequence[str]],
    sensitive: str,
) -> tuple[Schema, list[Sequence[str]]]:
    """Infer a :class:`Schema` from a header and string rows.

    Returns the schema and the materialised rows (so the caller can encode
    them without re-reading the source).  The sensitive column may appear at
    any position in the input; records are reordered so it comes last.
    """
    header = [str(h) for h in header]
    if sensitive not in header:
        raise SchemaError(f"sensitive column {sensitive!r} not found in header {header}")
    materialised = [list(map(str, row)) for row in rows]
    for row in materialised:
        if len(row) != len(header):
            raise SchemaError("row width does not match header width")

    sensitive_index = header.index(sensitive)
    public_names = [h for i, h in enumerate(header) if i != sensitive_index]

    domains: dict[str, list[str]] = {name: [] for name in header}
    seen: dict[str, set[str]] = {name: set() for name in header}
    for row in materialised:
        for name, value in zip(header, row):
            if value not in seen[name]:
                seen[name].add(value)
                domains[name].append(value)

    schema = Schema(
        public=tuple(Attribute(name, tuple(sorted(domains[name]))) for name in public_names),
        sensitive=Attribute(sensitive, tuple(sorted(domains[sensitive]))),
    )
    reordered = [
        [row[header.index(name)] for name in public_names] + [row[sensitive_index]]
        for row in materialised
    ]
    return schema, reordered


def _read_csv_stream(
    handle: Iterable[str], source: str, sensitive: str, delimiter: str
) -> Table:
    reader = csv.reader(handle, delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError(f"{source} is empty") from None
    rows = [row for row in reader if row]
    if not rows:
        raise SchemaError(
            f"{source} has a header but no data rows; at least one record is "
            "required to infer the attribute domains"
        )
    schema, reordered = infer_schema(header, rows, sensitive)
    return Table.from_records(schema, reordered)


def read_csv(source: str | Path | IO[str], sensitive: str, delimiter: str = ",") -> Table:
    """Load categorical CSV data (with header) into a :class:`Table`.

    Parameters
    ----------
    source:
        CSV file path, or an open text-mode file-like object (anything with a
        ``read`` method, e.g. an upload stream); file-like sources are read
        but not closed.
    sensitive:
        Name of the column to treat as the sensitive attribute SA.
    delimiter:
        Field delimiter (default comma).

    Raises
    ------
    SchemaError
        If the input is empty or contains a header but no data rows.
    """
    if hasattr(source, "read"):
        return _read_csv_stream(source, "csv stream", sensitive, delimiter)
    path = Path(source)
    with path.open(newline="") as handle:
        return _read_csv_stream(handle, str(path), sensitive, delimiter)


def _write_csv_stream(table: Table, handle: IO[str], delimiter: str) -> None:
    writer = csv.writer(handle, delimiter=delimiter)
    writer.writerow(list(table.schema.public_names) + [table.schema.sensitive_name])
    for record in table.records():
        writer.writerow(record)


def write_csv(table: Table, destination: str | Path | IO[str], delimiter: str = ",") -> None:
    """Write a table (public columns then the sensitive column) to CSV.

    Parameters
    ----------
    table:
        The table to serialise.
    destination:
        Output file path, or an open text-mode file-like object (anything
        with a ``write`` method, e.g. an HTTP response stream); file-like
        destinations are written but not closed, symmetrically with
        :func:`read_csv`'s file-like sources.
    delimiter:
        Field delimiter (default comma).
    """
    if hasattr(destination, "write"):
        _write_csv_stream(table, destination, delimiter)
        return
    path = Path(destination)
    with path.open("w", newline="") as handle:
        _write_csv_stream(table, handle, delimiter)
