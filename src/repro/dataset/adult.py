"""Synthetic ADULT data set generator.

The paper's evaluation uses the UCI ADULT data set: 45,222 complete records
with attributes Education, Occupation, Race, Gender (public) and Income
(sensitive, two values, 24.78 % ``>50K``).  The original file cannot be
downloaded in this offline environment, so this module generates a synthetic
table calibrated to the statistics the paper reports and relies on:

* 45,222 records, Income ``>50K`` base rate approximately 24.78 %;
* the motivating rule of Example 1 — the personal group
  ``{Prof-school, Prof-specialty, White, Male}`` contains 501 records of which
  420 (83.83 %) have Income ``>50K``;
* income depends on a small number of education/occupation *tiers* so that
  the chi-square generalisation of Section 3.4 merges values within a tier but
  keeps tiers apart, mirroring the domain-size collapse reported in Table 4
  (Education 16 -> ~7, Occupation 14 -> ~4, Race 5 -> ~2, Gender stays 2).

Only these distributional properties matter to the experiments; individual
record values are synthetic.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.utils.rng import default_rng

#: Number of complete records in the UCI ADULT data set, as used in the paper.
ADULT_SIZE = 45_222

#: Fraction of records with Income ``>50K`` reported in the paper.
HIGH_INCOME_RATE = 0.2478

#: The personal group of Example 1 and the counts behind its 83.83 % confidence.
EXAMPLE_GROUP = {
    "Education": "Prof-school",
    "Occupation": "Prof-specialty",
    "Race": "White",
    "Gender": "Male",
}
EXAMPLE_GROUP_SIZE = 501
EXAMPLE_GROUP_HIGH_INCOME = 420

EDUCATION_VALUES = (
    "Preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th", "11th", "12th",
    "HS-grad", "Some-college", "Assoc-voc", "Assoc-acdm", "Bachelors", "Masters",
    "Prof-school", "Doctorate",
)
OCCUPATION_VALUES = (
    "Priv-house-serv", "Handlers-cleaners", "Other-service", "Farming-fishing",
    "Machine-op-inspct", "Adm-clerical", "Transport-moving", "Craft-repair",
    "Sales", "Tech-support", "Protective-serv", "Armed-Forces",
    "Exec-managerial", "Prof-specialty",
)
RACE_VALUES = ("White", "Asian-Pac-Islander", "Black", "Amer-Indian-Eskimo", "Other")
GENDER_VALUES = ("Male", "Female")
INCOME_VALUES = ("<=50K", ">50K")

# Tiers: values within the same tier share the same effect on income, so the
# chi-square merging procedure should collapse them, approximating Table 4.
_EDUCATION_TIER = {
    # tier index -> list of values; 7 tiers as in the paper's "after" domain.
    0: ("Preschool", "1st-4th", "5th-6th", "7th-8th"),
    1: ("9th", "10th", "11th", "12th"),
    2: ("HS-grad",),
    3: ("Some-college", "Assoc-voc", "Assoc-acdm"),
    4: ("Bachelors",),
    5: ("Masters",),
    6: ("Prof-school", "Doctorate"),
}
_OCCUPATION_TIER = {
    # 4 tiers as in the paper's "after" domain.
    0: ("Priv-house-serv", "Handlers-cleaners", "Other-service", "Farming-fishing"),
    1: ("Machine-op-inspct", "Adm-clerical", "Transport-moving", "Craft-repair", "Armed-Forces"),
    2: ("Sales", "Tech-support", "Protective-serv"),
    3: ("Exec-managerial", "Prof-specialty"),
}
_RACE_TIER = {
    0: ("White", "Asian-Pac-Islander"),
    1: ("Black", "Amer-Indian-Eskimo", "Other"),
}

# Additive contributions (around a base rate) of each tier to P(Income > 50K).
# Adjacent tiers are kept far enough apart (>= ~6 percentage points after the
# base-rate calibration) for the chi-square test to separate them even for the
# smaller categories, while values inside a tier have identical effects and
# therefore merge (mirroring Table 4's domain collapse).  The weighted average
# of all effects is close to zero so the calibration to the 24.78 % base rate
# barely rescales the gaps.
_BASE_RATE = 0.10
_EDUCATION_TIER_EFFECT = {0: -0.08, 1: 0.00, 2: 0.06, 3: 0.13, 4: 0.24, 5: 0.36, 6: 0.50}
_OCCUPATION_TIER_EFFECT = {0: -0.07, 1: 0.00, 2: 0.07, 3: 0.15}
_RACE_TIER_EFFECT = {0: 0.015, 1: -0.05}
_GENDER_EFFECT = {"Male": 0.02, "Female": -0.04}

# Marginal sampling weights (roughly skewed like the real data: HS-grad and
# Some-college dominate, Prof-school/Doctorate are rare, White dominates Race).
# The rarest categories are floored at ~0.5-1 % so every value has enough
# records for the chi-square test to place it in the right tier.
_EDUCATION_WEIGHTS = {
    "Preschool": 0.006, "1st-4th": 0.008, "5th-6th": 0.012, "7th-8th": 0.018,
    "9th": 0.015, "10th": 0.025, "11th": 0.033, "12th": 0.012,
    "HS-grad": 0.315, "Some-college": 0.215, "Assoc-voc": 0.043, "Assoc-acdm": 0.033,
    "Bachelors": 0.165, "Masters": 0.054, "Prof-school": 0.018, "Doctorate": 0.013,
}
_OCCUPATION_WEIGHTS = {
    "Priv-house-serv": 0.012, "Handlers-cleaners": 0.045, "Other-service": 0.101,
    "Farming-fishing": 0.033, "Machine-op-inspct": 0.066, "Adm-clerical": 0.124,
    "Transport-moving": 0.052, "Craft-repair": 0.135, "Sales": 0.120,
    "Tech-support": 0.031, "Protective-serv": 0.022, "Armed-Forces": 0.012,
    "Exec-managerial": 0.130, "Prof-specialty": 0.117,
}
_RACE_WEIGHTS = {
    "White": 0.838, "Asian-Pac-Islander": 0.031, "Black": 0.093,
    "Amer-Indian-Eskimo": 0.018, "Other": 0.020,
}
_GENDER_WEIGHTS = {"Male": 0.675, "Female": 0.325}


def adult_schema() -> Schema:
    """Return the schema of the (synthetic) ADULT table."""
    return Schema(
        public=(
            Attribute("Education", EDUCATION_VALUES),
            Attribute("Occupation", OCCUPATION_VALUES),
            Attribute("Race", RACE_VALUES),
            Attribute("Gender", GENDER_VALUES),
        ),
        sensitive=Attribute("Income", INCOME_VALUES),
    )


def _tier_of(value: str, tiers: dict[int, tuple[str, ...]]) -> int:
    for tier, values in tiers.items():
        if value in values:
            return tier
    raise ValueError(f"value {value!r} not assigned to a tier")


def high_income_probability(education: str, occupation: str, race: str, gender: str) -> float:
    """Probability that a record with these public values has Income ``>50K``.

    The probability is a sum of tier effects clipped to ``[0.01, 0.95]``.  It
    is the ground-truth model the synthetic generator samples from and is
    exposed so tests can verify the generator's calibration.
    """
    probability = (
        _BASE_RATE
        + _EDUCATION_TIER_EFFECT[_tier_of(education, _EDUCATION_TIER)]
        + _OCCUPATION_TIER_EFFECT[_tier_of(occupation, _OCCUPATION_TIER)]
        + _RACE_TIER_EFFECT[_tier_of(race, _RACE_TIER)]
        + _GENDER_EFFECT[gender]
    )
    return float(np.clip(probability, 0.02, 0.95))


def generate_adult(
    n_records: int = ADULT_SIZE,
    seed: int | np.random.Generator | None = 0,
    plant_example_group: bool = True,
) -> Table:
    """Generate the synthetic ADULT table.

    Parameters
    ----------
    n_records:
        Total number of records (default 45,222 as in the paper).
    seed:
        Seed or generator for reproducibility.
    plant_example_group:
        When true (default), the personal group of Example 1 is planted with
        exactly 501 records, 420 of them ``>50K``, so the disclosure
        experiment of Table 1 reproduces the paper's confidence of 83.83 %.
    """
    if n_records <= 0:
        raise ValueError("n_records must be positive")
    rng = default_rng(seed)
    schema = adult_schema()

    planted = 0
    rows: list[np.ndarray] = []
    if plant_example_group:
        planted = min(EXAMPLE_GROUP_SIZE, n_records)
        high = min(EXAMPLE_GROUP_HIGH_INCOME, planted)
        education = schema.public_attribute("Education").encode(EXAMPLE_GROUP["Education"])
        occupation = schema.public_attribute("Occupation").encode(EXAMPLE_GROUP["Occupation"])
        race = schema.public_attribute("Race").encode(EXAMPLE_GROUP["Race"])
        gender = schema.public_attribute("Gender").encode(EXAMPLE_GROUP["Gender"])
        block = np.empty((planted, 5), dtype=np.int64)
        block[:, 0] = education
        block[:, 1] = occupation
        block[:, 2] = race
        block[:, 3] = gender
        income = np.zeros(planted, dtype=np.int64)
        income[:high] = 1
        rng.shuffle(income)
        block[:, 4] = income
        rows.append(block)

    remaining = n_records - planted
    if remaining > 0:
        rows.append(_sample_background(schema, remaining, rng, exclude_example=plant_example_group))

    codes = np.vstack(rows)
    rng.shuffle(codes, axis=0)
    return Table(schema, codes)


def _sample_background(
    schema: Schema, n_records: int, rng: np.random.Generator, exclude_example: bool
) -> np.ndarray:
    """Sample background records from the marginal/tier model."""
    education_attr = schema.public_attribute("Education")
    occupation_attr = schema.public_attribute("Occupation")
    race_attr = schema.public_attribute("Race")
    gender_attr = schema.public_attribute("Gender")

    def weights(attr: Attribute, table: dict[str, float]) -> np.ndarray:
        w = np.array([table[v] for v in attr.values], dtype=float)
        return w / w.sum()

    education = rng.choice(education_attr.size, size=n_records, p=weights(education_attr, _EDUCATION_WEIGHTS))
    occupation = rng.choice(occupation_attr.size, size=n_records, p=weights(occupation_attr, _OCCUPATION_WEIGHTS))
    race = rng.choice(race_attr.size, size=n_records, p=weights(race_attr, _RACE_WEIGHTS))
    gender = rng.choice(gender_attr.size, size=n_records, p=weights(gender_attr, _GENDER_WEIGHTS))

    if exclude_example:
        # Resample any background record that would collide with the planted
        # group so the group's size stays exactly 501.
        example_key = (
            education_attr.encode(EXAMPLE_GROUP["Education"]),
            occupation_attr.encode(EXAMPLE_GROUP["Occupation"]),
            race_attr.encode(EXAMPLE_GROUP["Race"]),
            gender_attr.encode(EXAMPLE_GROUP["Gender"]),
        )
        collision = (
            (education == example_key[0])
            & (occupation == example_key[1])
            & (race == example_key[2])
            & (gender == example_key[3])
        )
        while collision.any():
            n_bad = int(collision.sum())
            education[collision] = rng.choice(
                education_attr.size, size=n_bad, p=weights(education_attr, _EDUCATION_WEIGHTS)
            )
            occupation[collision] = rng.choice(
                occupation_attr.size, size=n_bad, p=weights(occupation_attr, _OCCUPATION_WEIGHTS)
            )
            collision = (
                (education == example_key[0])
                & (occupation == example_key[1])
                & (race == example_key[2])
                & (gender == example_key[3])
            )

    probabilities = np.array(
        [
            high_income_probability(
                education_attr.decode(int(e)),
                occupation_attr.decode(int(o)),
                race_attr.decode(int(r)),
                gender_attr.decode(int(g)),
            )
            for e, o, r, g in zip(education, occupation, race, gender, strict=True)
        ]
    )
    # Rescale so the overall >50K rate matches the paper's 24.78 % base rate.
    scale = HIGH_INCOME_RATE / probabilities.mean()
    probabilities = np.clip(probabilities * scale, 0.005, 0.97)
    income = (rng.random(n_records) < probabilities).astype(np.int64)

    block = np.column_stack([education, occupation, race, gender, income]).astype(np.int64)
    return block
