"""Schema: named categorical attributes and the public/sensitive split.

The paper (Section 3.1) assumes a table with public attributes
``NA = {A1, ..., An}`` and exactly one sensitive attribute ``SA`` whose domain
has ``m > 2`` values (ADULT's Income with m=2 is the deliberately hard corner
case of the evaluation).  All attributes here are categorical; values are
stored as strings in the schema and as integer codes in :class:`Table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence


class SchemaError(ValueError):
    """Raised when a schema or a value does not satisfy its contract."""


@dataclass(frozen=True)
class Attribute:
    """A named categorical attribute with an ordered domain of values."""

    name: str
    values: tuple[str, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        values = tuple(str(v) for v in self.values)
        if len(values) == 0:
            raise SchemaError(f"attribute {self.name!r} must have at least one value")
        if len(set(values)) != len(values):
            raise SchemaError(f"attribute {self.name!r} has duplicate values")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "_index", {v: i for i, v in enumerate(values)})

    @property
    def size(self) -> int:
        """Domain size of the attribute."""
        return len(self.values)

    def encode(self, value: str) -> int:
        """Return the integer code of ``value`` (raises ``SchemaError`` if unknown)."""
        try:
            return self._index[str(value)]
        except KeyError:
            raise SchemaError(f"unknown value {value!r} for attribute {self.name!r}") from None

    def decode(self, code: int) -> str:
        """Return the string value for integer ``code``."""
        if not 0 <= code < self.size:
            raise SchemaError(f"code {code} out of range for attribute {self.name!r}")
        return self.values[code]

    def __contains__(self, value: object) -> bool:
        return str(value) in self._index


@dataclass(frozen=True)
class Schema:
    """Ordered public attributes plus one sensitive attribute.

    Parameters
    ----------
    public:
        The ``NA`` attributes, in column order.
    sensitive:
        The ``SA`` attribute.
    """

    public: tuple[Attribute, ...]
    sensitive: Attribute

    def __init__(self, public: Iterable[Attribute], sensitive: Attribute) -> None:
        public = tuple(public)
        names = [a.name for a in public] + [sensitive.name]
        if len(set(names)) != len(names):
            raise SchemaError("attribute names must be unique across NA and SA")
        if len(public) == 0:
            raise SchemaError("schema needs at least one public attribute")
        object.__setattr__(self, "public", public)
        object.__setattr__(self, "sensitive", sensitive)

    @property
    def public_names(self) -> tuple[str, ...]:
        """Names of the public attributes in column order."""
        return tuple(a.name for a in self.public)

    @property
    def sensitive_name(self) -> str:
        """Name of the sensitive attribute."""
        return self.sensitive.name

    @property
    def sensitive_domain_size(self) -> int:
        """``m``, the number of SA values (Section 3.1)."""
        return self.sensitive.size

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """All attribute names, public first, sensitive last."""
        return self.public_names + (self.sensitive_name,)

    def public_attribute(self, name: str) -> Attribute:
        """Return the public attribute called ``name``."""
        for attr in self.public:
            if attr.name == name:
                return attr
        raise SchemaError(f"no public attribute named {name!r}")

    def public_index(self, name: str) -> int:
        """Return the column index of public attribute ``name``."""
        for i, attr in enumerate(self.public):
            if attr.name == name:
                return i
        raise SchemaError(f"no public attribute named {name!r}")

    def with_public(self, public: Sequence[Attribute]) -> "Schema":
        """Return a copy of this schema with different public attributes.

        Used by the generalisation step (Section 3.4) which replaces each
        public attribute's domain with merged (generalised) values.
        """
        return Schema(public, self.sensitive)

    def encode_record(self, record: Sequence[str]) -> tuple[int, ...]:
        """Encode one string record (NA values then SA value) to integer codes."""
        expected = len(self.public) + 1
        if len(record) != expected:
            raise SchemaError(f"record has {len(record)} fields, expected {expected}")
        codes = [attr.encode(v) for attr, v in zip(self.public, record[:-1], strict=True)]
        codes.append(self.sensitive.encode(record[-1]))
        return tuple(codes)

    def decode_record(self, codes: Sequence[int]) -> tuple[str, ...]:
        """Decode one integer-coded record back to string values."""
        expected = len(self.public) + 1
        if len(codes) != expected:
            raise SchemaError(f"record has {len(codes)} fields, expected {expected}")
        values = [attr.decode(int(c)) for attr, c in zip(self.public, codes[:-1], strict=True)]
        values.append(self.sensitive.decode(int(codes[-1])))
        return tuple(values)
