"""Personal and aggregate groups (Section 3.2 of the paper).

A *personal group* ``D(x1, ..., xn)`` fixes a concrete value for every public
attribute; it contains exactly the records that are indistinguishable from a
target individual using public information.  An *aggregate group* leaves at
least one public attribute as a wildcard.  Personal reconstruction (privacy
risk) operates on personal groups; aggregate reconstruction (utility) on
aggregate groups.

The :class:`GroupIndex` partitions a table into its personal groups in a
single vectorised pass, mirroring the paper's "sort by NA then SA"
preprocessing used by both the privacy test (Corollary 4) and the SPS
algorithm (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Mapping, Sequence

import numpy as np

from repro.dataset.table import Table


@dataclass(frozen=True)
class PersonalGroup:
    """One personal group: a fixed NA key and the row indices carrying it.

    Attributes
    ----------
    key:
        The integer codes of the public attributes shared by every record in
        the group, in schema column order.
    indices:
        Row indices (into the owning table) of the group's records.
    sensitive_counts:
        Counts of each SA value inside the group, length ``m``.
    """

    key: tuple[int, ...]
    indices: np.ndarray
    sensitive_counts: np.ndarray

    @property
    def size(self) -> int:
        """``|g|``, the number of records in the group."""
        return int(self.indices.size)

    @property
    def frequencies(self) -> np.ndarray:
        """Fractional SA frequencies inside the group."""
        total = self.sensitive_counts.sum()
        if total == 0:
            return np.zeros_like(self.sensitive_counts, dtype=float)
        return self.sensitive_counts / total

    @property
    def max_frequency(self) -> float:
        """``f`` in Equation (10): the largest SA frequency in the group."""
        if self.size == 0:
            return 0.0
        return float(self.sensitive_counts.max() / self.sensitive_counts.sum())

    def decoded_key(self, table: Table) -> tuple[str, ...]:
        """Return the group's NA key as human-readable strings."""
        return tuple(
            attr.decode(code) for attr, code in zip(table.schema.public, self.key, strict=True)
        )


class GroupIndex:
    """Partition of a table into personal groups keyed by the full NA tuple."""

    def __init__(
        self,
        table: Table,
        _prebuilt: dict[tuple[int, ...], PersonalGroup] | None = None,
    ) -> None:
        self._table = table
        self._groups: dict[tuple[int, ...], PersonalGroup] = {}
        if _prebuilt is not None:
            self._groups = _prebuilt
        else:
            self._build()

    def _build(self) -> None:
        table = self._table
        if len(table) == 0:
            return
        public = table.public_codes
        # Lexicographic sort on the NA columns groups identical keys together.
        order = np.lexsort(public.T[::-1])
        sorted_public = public[order]
        change = np.any(np.diff(sorted_public, axis=0) != 0, axis=1)
        boundaries = np.concatenate(([0], np.flatnonzero(change) + 1, [len(table)]))
        m = table.schema.sensitive_domain_size
        n_groups = boundaries.size - 1
        starts = boundaries[:-1]
        # One global bincount over (group id, SA code) pairs replaces one
        # bincount call per group; each row of the reshaped result is exactly
        # np.bincount(sensitive[indices], minlength=m) for that group.
        group_ids = np.repeat(np.arange(n_groups), np.diff(boundaries))
        sensitive_sorted = table.sensitive_codes[order]
        counts_matrix = np.bincount(
            group_ids * m + sensitive_sorted, minlength=n_groups * m
        ).reshape(n_groups, m).astype(np.int64)
        for gid, key_row in enumerate(sorted_public[starts].tolist()):
            key = tuple(key_row)
            self._groups[key] = PersonalGroup(
                key=key,
                indices=order[starts[gid] : boundaries[gid + 1]],
                sensitive_counts=counts_matrix[gid],
            )

    # ------------------------------------------------------------------ #
    @property
    def table(self) -> Table:
        """The table this index was built over."""
        return self._table

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[PersonalGroup]:
        return iter(self._groups.values())

    def __contains__(self, key: tuple[int, ...]) -> bool:
        return tuple(key) in self._groups

    def get(self, key: Sequence[int]) -> PersonalGroup | None:
        """Return the personal group with the given NA key, or ``None``."""
        return self._groups.get(tuple(int(k) for k in key))

    def group_of_record(self, row: int) -> PersonalGroup:
        """Return the personal group containing table row ``row``."""
        key = tuple(int(c) for c in self._table.public_codes[row])
        group = self._groups.get(key)
        if group is None:
            raise KeyError(f"row {row} not indexed")
        return group

    def group_for_values(self, conditions: Mapping[str, str]) -> PersonalGroup | None:
        """Return the personal group matching string values for *every* public attribute."""
        schema = self._table.schema
        if set(conditions) != set(schema.public_names):
            raise ValueError(
                "a personal group requires a value for every public attribute; "
                "use aggregate_group() for partial conditions"
            )
        key = tuple(
            schema.public_attribute(name).encode(conditions[name])
            for name in schema.public_names
        )
        return self._groups.get(key)

    def sizes(self) -> np.ndarray:
        """Array of group sizes ``|g|`` in iteration order."""
        return np.array([g.size for g in self], dtype=np.int64)

    def to_parts(self) -> dict[str, list[list[int]]]:
        """Serialise the index into plain lists (for the derived-cache store)."""
        keys: list[list[int]] = []
        indices: list[list[int]] = []
        counts: list[list[int]] = []
        for group in self:
            keys.append([int(k) for k in group.key])
            indices.append(group.indices.tolist())
            counts.append(group.sensitive_counts.tolist())
        return {"keys": keys, "indices": indices, "counts": counts}

    @classmethod
    def from_parts(cls, table: Table, parts: Mapping[str, list[list[int]]]) -> "GroupIndex":
        """Rebuild an index from :meth:`to_parts` output, validating against ``table``.

        Raises :class:`ValueError` when the parts do not cover the table
        exactly (wrong row count, wrong key width, wrong SA domain size) —
        the caller should fall back to a fresh :meth:`_build`.
        """
        m = table.schema.sensitive_domain_size
        n_public = len(table.schema.public)
        groups: dict[tuple[int, ...], PersonalGroup] = {}
        total = 0
        for key_row, idx, cnt in zip(
            parts["keys"], parts["indices"], parts["counts"], strict=True
        ):
            key = tuple(int(k) for k in key_row)
            if len(key) != n_public:
                raise ValueError("cached group key does not match the table schema")
            indices = np.asarray(idx, dtype=np.int64)
            counts = np.asarray(cnt, dtype=np.int64)
            if counts.shape != (m,):
                raise ValueError("cached sensitive counts do not match the SA domain")
            if indices.size and int(indices.max()) >= len(table):
                raise ValueError("cached group indices fall outside the table")
            total += int(indices.size)
            groups[key] = PersonalGroup(key=key, indices=indices, sensitive_counts=counts)
        if total != len(table):
            raise ValueError(
                f"cached group index covers {total} rows but the table has {len(table)}"
            )
        return cls(table, _prebuilt=groups)

    def average_group_size(self) -> float:
        """``|D| / |G|`` as reported in Tables 4 and 5."""
        if len(self) == 0:
            return 0.0
        return len(self._table) / len(self)


def personal_groups(table: Table) -> GroupIndex:
    """Build the :class:`GroupIndex` of all personal groups of ``table``."""
    return GroupIndex(table)


def aggregate_group(table: Table, conditions: Mapping[str, str]) -> np.ndarray:
    """Boolean mask of the aggregate group defined by partial NA conditions.

    ``conditions`` maps a subset of public attribute names to values; the
    remaining attributes are wildcards.  Passing every public attribute
    degenerates to a personal group, which is allowed (the paper's
    ``D(x1, ..., xn)`` notation covers both).
    """
    return table.match_public(dict(conditions))
