"""Synthetic CENSUS data set generator.

The paper's second data set is the CENSUS data used by Anatomy (Xiao & Tao,
VLDB 2006) and small-domain randomisation (Chaytor & Wang, VLDB 2010):
personal information about 500K American adults with six discrete attributes
Age, Gender, Education, Marital, Race and Occupation.  The paper chooses
Occupation (50 values) as the sensitive attribute and uses samples of sizes
100K-500K.

The original file is not redistributable and cannot be downloaded here, so
this module generates a synthetic equivalent with the same schema and domain
sizes and with the structural properties the evaluation depends on:

* Occupation has 50 values with a mildly skewed but *balanced* distribution,
  so the maximum per-group frequency ``f`` is small, making the maximum
  group size ``s_g`` large (Figure 1, right panel);
* Occupation is statistically independent of Age, so the chi-square
  generalisation of Section 3.4 collapses Age's 77 values into a single
  generalised value (Table 5 reports exactly this: 77 -> 1);
* Occupation depends on Gender, Education, Marital and Race, so those domains
  survive generalisation and the number of personal groups after
  generalisation is close to the product of their domain sizes (1,512 in
  Table 5).
"""

from __future__ import annotations

import numpy as np

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.utils.rng import default_rng

#: Full size of the CENSUS data set used in the paper.
CENSUS_SIZE = 500_000

#: Domain sizes reported in Table 5 (before aggregation).
AGE_DOMAIN_SIZE = 77
GENDER_DOMAIN_SIZE = 2
EDUCATION_DOMAIN_SIZE = 14
MARITAL_DOMAIN_SIZE = 6
RACE_DOMAIN_SIZE = 9
OCCUPATION_DOMAIN_SIZE = 50


def census_schema() -> Schema:
    """Return the schema of the (synthetic) CENSUS table."""
    return Schema(
        public=(
            Attribute("Age", tuple(str(a) for a in range(15, 15 + AGE_DOMAIN_SIZE))),
            Attribute("Gender", ("Male", "Female")),
            Attribute("Education", tuple(f"Edu-{i}" for i in range(EDUCATION_DOMAIN_SIZE))),
            Attribute("Marital", tuple(f"Marital-{i}" for i in range(MARITAL_DOMAIN_SIZE))),
            Attribute("Race", tuple(f"Race-{i}" for i in range(RACE_DOMAIN_SIZE))),
        ),
        sensitive=Attribute("Occupation", tuple(f"Occ-{i}" for i in range(OCCUPATION_DOMAIN_SIZE))),
    )


def _dirichlet_rows(rng: np.random.Generator, n_rows: int, n_cols: int, concentration: float) -> np.ndarray:
    """Rows of probability vectors drawn from a symmetric Dirichlet."""
    return rng.dirichlet(np.full(n_cols, concentration), size=n_rows)


def _skewed_weights(
    rng: np.random.Generator, size: int, concentration: float, floor: float
) -> np.ndarray:
    """A skewed categorical marginal with a minimum weight per value.

    The floor keeps every value frequent enough that all NA combinations are
    observed in realistic sample sizes.
    """
    weights = rng.dirichlet(np.full(size, concentration))
    weights = np.maximum(weights, floor)
    return weights / weights.sum()


def generate_census(
    n_records: int = 300_000,
    seed: int | np.random.Generator | None = 0,
) -> Table:
    """Generate a synthetic CENSUS sample of ``n_records`` records.

    Parameters
    ----------
    n_records:
        Sample size; the paper uses 100K, 200K, 300K (default), 400K and 500K.
    seed:
        Seed or generator for reproducibility.
    """
    if n_records <= 0:
        raise ValueError("n_records must be positive")
    rng = default_rng(seed)
    schema = census_schema()

    # Public attribute marginals: Age roughly triangular (working-age bulge),
    # other attributes mildly skewed.
    age_weights = np.concatenate(
        [np.linspace(1.0, 3.0, AGE_DOMAIN_SIZE // 2), np.linspace(3.0, 0.5, AGE_DOMAIN_SIZE - AGE_DOMAIN_SIZE // 2)]
    )
    age_weights /= age_weights.sum()
    gender_weights = np.array([0.52, 0.48])
    # Public-attribute marginals are skewed (a few dominant values hold most of
    # the mass, like the real CENSUS) but floored at ~1 % so every NA
    # combination still occurs in samples of 100K+ records, keeping the number
    # of personal groups equal to the full cross product as in Table 5.
    education_weights = _skewed_weights(rng, EDUCATION_DOMAIN_SIZE, concentration=1.8, floor=0.012)
    marital_weights = _skewed_weights(rng, MARITAL_DOMAIN_SIZE, concentration=1.8, floor=0.02)
    race_weights = _skewed_weights(rng, RACE_DOMAIN_SIZE, concentration=1.5, floor=0.015)

    age = rng.choice(AGE_DOMAIN_SIZE, size=n_records, p=age_weights)
    gender = rng.choice(GENDER_DOMAIN_SIZE, size=n_records, p=gender_weights)
    education = rng.choice(EDUCATION_DOMAIN_SIZE, size=n_records, p=education_weights)
    marital = rng.choice(MARITAL_DOMAIN_SIZE, size=n_records, p=marital_weights)
    race = rng.choice(RACE_DOMAIN_SIZE, size=n_records, p=race_weights)

    # Occupation model: a mildly skewed base distribution perturbed
    # (multiplied) by per-value factors of Gender, Education, Marital and Race
    # -- and crucially NOT of Age, so that Age carries no information about
    # Occupation.  The concentrations are chosen so that the maximum
    # occupation frequency inside a personal group typically falls in the
    # 0.1-0.4 range, matching the "large number of balanced SA values" regime
    # the paper describes for CENSUS.
    base = rng.dirichlet(np.full(OCCUPATION_DOMAIN_SIZE, 5.0))
    gender_factor = _dirichlet_rows(rng, GENDER_DOMAIN_SIZE, OCCUPATION_DOMAIN_SIZE, 3.5)
    education_factor = _dirichlet_rows(rng, EDUCATION_DOMAIN_SIZE, OCCUPATION_DOMAIN_SIZE, 3.5)
    marital_factor = _dirichlet_rows(rng, MARITAL_DOMAIN_SIZE, OCCUPATION_DOMAIN_SIZE, 6.0)
    race_factor = _dirichlet_rows(rng, RACE_DOMAIN_SIZE, OCCUPATION_DOMAIN_SIZE, 6.0)

    weights = (
        base[None, :]
        * gender_factor[gender]
        * education_factor[education]
        * marital_factor[marital]
        * race_factor[race]
    )
    weights /= weights.sum(axis=1, keepdims=True)

    # Vectorised categorical sampling per row via inverse-CDF on uniform draws.
    cumulative = np.cumsum(weights, axis=1)
    uniforms = rng.random(n_records)
    occupation = (uniforms[:, None] > cumulative).sum(axis=1).astype(np.int64)
    occupation = np.clip(occupation, 0, OCCUPATION_DOMAIN_SIZE - 1)

    codes = np.column_stack([age, gender, education, marital, race, occupation]).astype(np.int64)
    return Table(schema, codes)


def census_sample_sizes() -> tuple[int, ...]:
    """The sample sizes used by Figures 4(d) and 5(d)."""
    return (100_000, 200_000, 300_000, 400_000, 500_000)
