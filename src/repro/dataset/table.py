"""Integer-encoded, numpy-backed table of records.

A :class:`Table` stores the data set ``D`` (or a perturbed version ``D*``) as
a 2-D ``int64`` array: one row per record, one column per public attribute and
a final column for the sensitive attribute.  All higher layers (perturbation,
reconstruction, grouping, query evaluation) work on these integer codes; the
schema is only consulted to translate to and from human-readable strings.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.dataset.schema import Schema, SchemaError


class Table:
    """A data set with public attributes ``NA`` and one sensitive attribute ``SA``.

    Parameters
    ----------
    schema:
        The table schema.
    codes:
        Integer-coded records, shape ``(n_records, n_public + 1)``.  The final
        column is the sensitive attribute.  The array is copied and validated
        against the schema domains.
    """

    def __init__(self, schema: Schema, codes: np.ndarray | Sequence[Sequence[int]]) -> None:
        self._schema = schema
        arr = np.asarray(codes, dtype=np.int64)
        if arr.ndim == 1 and arr.size == 0:
            arr = arr.reshape(0, len(schema.public) + 1)
        if arr.ndim != 2:
            raise SchemaError("codes must be a 2-D array")
        expected_cols = len(schema.public) + 1
        if arr.shape[1] != expected_cols:
            raise SchemaError(
                f"codes has {arr.shape[1]} columns, schema expects {expected_cols}"
            )
        self._validate_domains(schema, arr)
        self._codes = arr.copy()
        self._codes.setflags(write=False)

    @staticmethod
    def _validate_domains(schema: Schema, arr: np.ndarray) -> None:
        if arr.size == 0:
            return
        if arr.min() < 0:
            raise SchemaError("negative attribute code")
        sizes = [attr.size for attr in schema.public] + [schema.sensitive.size]
        maxima = arr.max(axis=0)
        for column, (size, observed) in enumerate(zip(sizes, maxima, strict=True)):
            if observed >= size:
                raise SchemaError(
                    f"column {column} contains code {int(observed)} outside domain of size {size}"
                )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(cls, schema: Schema, records: Iterable[Sequence[str]]) -> "Table":
        """Build a table from string records (NA values followed by the SA value)."""
        codes = [schema.encode_record(r) for r in records]
        if not codes:
            return cls(schema, np.empty((0, len(schema.public) + 1), dtype=np.int64))
        return cls(schema, np.asarray(codes, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """The table schema."""
        return self._schema

    @property
    def codes(self) -> np.ndarray:
        """The read-only ``(n_records, n_public + 1)`` code matrix."""
        return self._codes

    @property
    def public_codes(self) -> np.ndarray:
        """The NA columns only, shape ``(n_records, n_public)``."""
        return self._codes[:, :-1]

    @property
    def sensitive_codes(self) -> np.ndarray:
        """The SA column, shape ``(n_records,)``."""
        return self._codes[:, -1]

    def __len__(self) -> int:
        return self._codes.shape[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._schema == other._schema and np.array_equal(self._codes, other._codes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(n={len(self)}, public={self._schema.public_names}, sensitive={self._schema.sensitive_name!r})"

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def with_sensitive_codes(self, sensitive: np.ndarray) -> "Table":
        """Return a copy of this table whose SA column is replaced by ``sensitive``.

        This is how the perturbation operator publishes ``D*``: the NA columns
        are never modified (Section 3.1).
        """
        sensitive = np.asarray(sensitive, dtype=np.int64)
        if sensitive.shape != (len(self),):
            raise SchemaError("sensitive column has the wrong length")
        codes = self._codes.copy()
        codes[:, -1] = sensitive
        return Table(self._schema, codes)

    def select(self, mask_or_indices: np.ndarray) -> "Table":
        """Return the sub-table of rows selected by a boolean mask or index array."""
        return Table(self._schema, self._codes[np.asarray(mask_or_indices)])

    def concat(self, other: "Table") -> "Table":
        """Concatenate two tables with identical schemas."""
        if other.schema != self._schema:
            raise SchemaError("cannot concatenate tables with different schemas")
        return Table(self._schema, np.vstack([self._codes, other._codes]))

    def with_schema(self, schema: Schema, codes: np.ndarray) -> "Table":
        """Return a new table over ``schema`` with the given codes (used by generalisation)."""
        return Table(schema, codes)

    # ------------------------------------------------------------------ #
    # Matching and counting
    # ------------------------------------------------------------------ #
    def match_public(self, conditions: Mapping[str, str]) -> np.ndarray:
        """Boolean mask of rows matching every ``attribute == value`` condition on NA."""
        mask = np.ones(len(self), dtype=bool)
        for name, value in conditions.items():
            attr = self._schema.public_attribute(name)
            column = self._schema.public_index(name)
            mask &= self._codes[:, column] == attr.encode(value)
        return mask

    def match(self, conditions: Mapping[str, str], sensitive_value: str | None = None) -> np.ndarray:
        """Boolean mask of rows matching NA conditions and optionally an SA value."""
        mask = self.match_public(conditions)
        if sensitive_value is not None:
            mask &= self.sensitive_codes == self._schema.sensitive.encode(sensitive_value)
        return mask

    def count(self, conditions: Mapping[str, str], sensitive_value: str | None = None) -> int:
        """Number of records matching the given conditions (a COUNT(*) query)."""
        return int(self.match(conditions, sensitive_value).sum())

    def sensitive_counts(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Counts of each SA value over the whole table or a masked subset.

        Returns an array of length ``m`` (the SA domain size).
        """
        codes = self.sensitive_codes if mask is None else self.sensitive_codes[mask]
        return np.bincount(codes, minlength=self._schema.sensitive_domain_size).astype(np.int64)

    def sensitive_frequencies(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Fractional frequencies of each SA value (zeros for an empty selection)."""
        counts = self.sensitive_counts(mask)
        total = counts.sum()
        if total == 0:
            return np.zeros_like(counts, dtype=float)
        return counts / total

    def records(self) -> list[tuple[str, ...]]:
        """Decode all records back to string tuples (NA values then SA value)."""
        return [self._schema.decode_record(row) for row in self._codes]
