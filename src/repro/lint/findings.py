"""Findings, severities and suppression comments of the contract linter.

A :class:`Finding` is one diagnostic anchored to a ``path:line:col`` with a
rule code (``RPR001``…); a suppression is a ``# repro-lint: ignore[RPR001]``
comment on the offending line.  Suppressions are themselves checked: one that
never matches a finding is reported as :data:`UNUSED_SUPPRESSION_CODE`, and a
marker that does not parse is reported as :data:`MALFORMED_SUPPRESSION_CODE`
— silencing the linter is a visible, reviewable act.
"""

from __future__ import annotations

import io
import re
import tokenize
from collections.abc import Iterator
from dataclasses import dataclass
from enum import Enum
from typing import Any

#: Reserved meta-rule code: a suppression comment that suppressed nothing.
UNUSED_SUPPRESSION_CODE = "RPR900"

#: Reserved meta-rule code: a ``repro-lint:`` marker that does not parse.
MALFORMED_SUPPRESSION_CODE = "RPR901"

#: Reserved meta-rule code: a file the analyzer could not parse.
PARSE_ERROR_CODE = "RPR902"

_CODE_RE = re.compile(r"^RPR\d{3}$")

#: The strict suppression grammar, matched against a whole comment token:
#: ``# repro-lint: ignore[RPR001]`` or ``# repro-lint: ignore[RPR001, RPR004]``.
_SUPPRESSION_RE = re.compile(r"^#\s*repro-lint:\s*ignore\[([^\]]*)\]\s*$")

#: A comment that *starts* like a marker; used to catch malformed variants.
#: Matching real comment tokens (not raw lines) keeps prose that merely
#: mentions the marker — docstrings, nested mentions — out of scope.
_MARKER_RE = re.compile(r"^#\s*repro-lint:")


class Severity(str, Enum):
    """How hard a rule fails: ``error`` gates CI, ``warning`` informs."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violation anchored to a source location."""

    path: str
    line: int
    col: int
    code: str
    severity: Severity
    rule: str
    message: str

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation (the ``--format json`` record shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity.value,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line text rendering: ``path:line:col: CODE [sev] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity.value}] {self.message}"
        )


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: ignore[...]`` comment."""

    line: int
    codes: tuple[str, ...]


def _comment_tokens(source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(line, comment_text)`` for every real comment in ``source``.

    Tokenizing (rather than scanning raw lines) keeps docstrings and string
    literals that merely *mention* the marker out of suppression parsing.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string.strip()
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files are reported separately (RPR902); no comments.
        return


def parse_suppressions(source: str) -> tuple[list[Suppression], list[tuple[int, str]]]:
    """Extract suppression comments from ``source``.

    Returns ``(suppressions, malformed)`` where ``malformed`` carries
    ``(line, reason)`` pairs for markers that do not follow the strict
    ``ignore[RPRxxx, ...]`` grammar (including unknown-looking codes).
    """
    suppressions: list[Suppression] = []
    malformed: list[tuple[int, str]] = []
    for lineno, text in _comment_tokens(source):
        if not _MARKER_RE.match(text):
            continue
        match = _SUPPRESSION_RE.match(text)
        if match is None:
            malformed.append(
                (lineno, "marker must be '# repro-lint: ignore[RPRxxx]' at end of line")
            )
            continue
        codes = tuple(code.strip() for code in match.group(1).split(",") if code.strip())
        if not codes:
            malformed.append((lineno, "suppression lists no rule codes"))
            continue
        bad = [code for code in codes if not _CODE_RE.match(code)]
        if bad:
            malformed.append((lineno, f"invalid rule code(s) {bad!r} (expected RPRnnn)"))
            continue
        suppressions.append(Suppression(line=lineno, codes=codes))
    return suppressions, malformed
