"""``repro-lint`` — command-line front end of the contract analyzer.

Exit codes: ``0`` clean (or ``--warn-only``), ``1`` at least one error-level
finding survived suppression, ``2`` usage error (bad paths, unknown rule
codes).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.lint.engine import RULES, LintResult, run_lint


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Contract-aware static analyzer for the repro codebase: RNG "
            "discipline, kernel purity, picklability, span accounting, "
            "registry hygiene and import-time side effects."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: src/)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write JSON findings to FILE (for CI artifacts)",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report findings but always exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--version", action="store_true",
        help="print the analyzer version and exit",
    )
    return parser


def _result_payload(result: LintResult, warn_only: bool) -> dict[str, object]:
    return {
        "files_checked": result.files_checked,
        "errors": result.errors,
        "warnings": result.warnings,
        "suppressed": result.suppressed,
        "exit_code": result.exit_code(warn_only),
        "findings": [finding.to_json() for finding in result.findings],
    }


def _render_text(result: LintResult, warn_only: bool) -> str:
    lines = [finding.render() for finding in result.findings]
    summary = (
        f"{result.files_checked} file(s) checked: "
        f"{result.errors} error(s), {result.warnings} warning(s), "
        f"{result.suppressed} suppressed"
    )
    if warn_only and result.errors:
        summary += " [warn-only: exiting 0]"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def _list_rules() -> str:
    # Import for the registration side effect (the rules live in their own
    # module so the engine stays rule-agnostic).
    from repro.lint import rules as _rules  # noqa: F401

    lines = [
        f"{rule.code}  {rule.name:<22} [{rule.severity.value}]  {rule.description}"
        for rule in RULES.values()
    ]
    return "\n".join(lines) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-lint`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.version:
        from repro import __version__

        sys.stdout.write(f"repro-lint {__version__}\n")
        return 0
    if args.list_rules:
        sys.stdout.write(_list_rules())
        return 0

    paths = [Path(p) for p in args.paths] or [Path("src")]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        sys.stderr.write(f"repro-lint: no such path(s): {', '.join(missing)}\n")
        return 2

    select = None
    if args.select is not None:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    try:
        result = run_lint(paths, select=select)
    except ValueError as exc:
        sys.stderr.write(f"repro-lint: {exc}\n")
        return 2

    if args.output is not None:
        payload = _result_payload(result, args.warn_only)
        Path(args.output).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        sys.stdout.write(
            json.dumps(_result_payload(result, args.warn_only), indent=2) + "\n"
        )
    else:
        sys.stdout.write(_render_text(result, args.warn_only))
    return result.exit_code(args.warn_only)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
