"""repro.lint — contract-aware static analysis for the repro codebase.

The analyzer encodes the repo's determinism contracts as AST-level rules
(``RPR001``…): RNG discipline, wall-clock bans in chunk kernels,
pool-boundary picklability, span-derived timing accounting, strategy
registry hygiene and side-effect-free imports.  Run it as ``repro-lint`` or
``python -m repro.lint``; see ``docs/static-analysis.md`` for every rule
code with offending and sanctioned snippets.
"""

from __future__ import annotations

from repro.lint.engine import RULES, LintResult, Rule, register_rule, run_lint
from repro.lint.findings import Finding, Severity, Suppression, parse_suppressions
from repro.lint.project import ModuleInfo, Project

__all__ = [
    "RULES",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Rule",
    "Severity",
    "Suppression",
    "parse_suppressions",
    "register_rule",
    "run_lint",
]
