"""The repo-contract rules (``RPR001``–``RPR008``).

Each rule encodes one invariant the byte-identity test suite otherwise only
checks dynamically; ``docs/static-analysis.md`` documents every code with an
offending snippet and the sanctioned pattern.  Resolution is static and
name-based (see :mod:`repro.lint.project`), so the rules are conservative:
they follow calls they can resolve and say nothing about dynamic dispatch.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.engine import Rule, register_rule
from repro.lint.findings import Finding
from repro.lint.project import ClassEntry, FunctionEntry, ModuleInfo, Project

# --------------------------------------------------------------------- #
# Shared configuration
# --------------------------------------------------------------------- #

#: Modules allowed to construct generators: the chunk-seeding contract
#: (``chunk_rngs``/``seeded_rng``) and the seed-normalisation helpers.
RNG_FACTORY_MODULES = frozenset({"repro.pipeline.execution", "repro.utils.rng"})

#: ``numpy.random`` attributes that are *types/seeding machinery*, not the
#: legacy module-level global-state API.
NP_RANDOM_ALLOWED = frozenset({
    "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: Calls that read wall-clock time or OS entropy — banned in chunk kernels.
NONDETERMINISTIC_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.date.today",
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.choice",
})

#: Kernel-shaped classes that are *sanctioned* timing wrappers: the traced
#: kernel wrapper times worker-side chunks for :mod:`repro.obs` by design.
SANCTIONED_KERNEL_CLASSES = frozenset({"repro.parallel.scheduler._TimedKernel"})

#: Raw time sources that must not feed ``timings[...]`` bookkeeping.
RAW_TIMER_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
})

#: Registry-registration callables a module may invoke at import time (the
#: sanctioned import-time side effect: populating a process-local registry
#: with objects the module itself defines).
SANCTIONED_IMPORT_CALLS = frozenset({
    "register_strategy", "register_rule", "register_backend",
    "register_scenario", "_register",
})

#: Call targets that do I/O — never acceptable at import time.
IMPORT_IO_CALLS = frozenset({
    "open", "io.open", "gzip.open", "bz2.open", "lzma.open",
    "os.remove", "os.unlink", "os.makedirs", "os.mkdir", "os.rmdir",
    "os.system", "os.popen", "shutil.rmtree", "shutil.copy", "shutil.move",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.socket", "urllib.request.urlopen", "print",
    "tempfile.TemporaryFile", "tempfile.NamedTemporaryFile", "tempfile.mkdtemp",
    "tempfile.mkstemp",
})

#: ``pathlib`` methods that do I/O when they appear in import-time code.
IMPORT_IO_ATTRS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
    "mkdir", "rmdir", "unlink", "touch", "symlink_to", "rename",
})


def _in_repro(module: ModuleInfo) -> bool:
    return module.name == "repro" or module.name.startswith("repro.")


def _own_body(entry_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested ``def``s.

    Nested functions are indexed as their own :class:`FunctionEntry`, so a
    rule that iterates over every function and walked whole subtrees would
    report each nested-body node twice.  Lambdas are not separate entries
    and stay in scope.
    """
    stack: list[ast.AST] = [entry_node]
    while stack:
        node = stack.pop()
        if node is not entry_node and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _resolve_call_target(module: ModuleInfo, call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return module.resolve_name(call.func.id)
    if isinstance(call.func, ast.Attribute):
        return module.resolve_attribute(call.func)
    return None


# --------------------------------------------------------------------- #
# RPR001 — RNG discipline
# --------------------------------------------------------------------- #

@register_rule
class RngDisciplineRule(Rule):
    """Generators flow in as parameters; construction is centralised.

    Inside ``repro.*``, the legacy ``numpy.random`` module-level API and the
    stdlib ``random`` module are forbidden everywhere, and
    ``numpy.random.default_rng`` may only be called in the sanctioned
    seeding modules (:data:`RNG_FACTORY_MODULES`).  Everything else receives
    its generator as a parameter — the ``chunk_rngs`` contract that makes
    published bytes a pure function of ``(seed, chunk_size)``.
    """

    code = "RPR001"
    name = "rng-discipline"
    description = (
        "no stdlib random, no numpy.random module-level state, and "
        "default_rng only in the sanctioned seeding modules"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if not _in_repro(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            "stdlib random is banned in repro.*: its global state "
                            "breaks the seed contract; take a numpy Generator "
                            "parameter instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and (node.module or "") == "random":
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "stdlib random is banned in repro.*: its global state "
                        "breaks the seed contract; take a numpy Generator "
                        "parameter instead",
                    )
            elif isinstance(node, ast.Call):
                target = _resolve_call_target(module, node)
                if target is None:
                    continue
                if target.startswith("random."):
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"stdlib {target}() draws from hidden global state; "
                        "use the generator handed in by the chunk contract",
                    )
                elif target.startswith("numpy.random."):
                    attr = target[len("numpy.random."):]
                    if attr in NP_RANDOM_ALLOWED:
                        continue
                    if attr == "default_rng":
                        if module.name in RNG_FACTORY_MODULES:
                            continue
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            "numpy.random.default_rng() outside the sanctioned "
                            "seeding modules; construct generators via "
                            "repro.pipeline.execution (chunk_rngs / seeded_rng) "
                            "or repro.utils.rng.default_rng, or accept one as "
                            "a parameter",
                        )
                    else:
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            f"numpy.random.{attr}() uses numpy's module-level "
                            "RNG state; draw from an explicit Generator "
                            "parameter instead",
                        )


# --------------------------------------------------------------------- #
# RPR002 — wall-clock / nondeterminism ban in chunk kernels
# --------------------------------------------------------------------- #

def _kernel_entry_points(project: Project) -> dict[str, str]:
    """Map function qualname → the kernel root that makes it an entry point.

    Entry points: the body of every ``chunk_publisher`` method, every
    function *defined inside* one (the closures the method returns), the
    ``__call__``/methods of ``*Kernel`` classes, and module-level functions
    passed by name to the chunk runners.
    """
    entries: dict[str, str] = {}
    runner_names = {
        "repro.pipeline.execution.run_chunks_serial",
        "repro.parallel.scheduler.run_chunks",
        "repro.parallel.scheduler.iter_chunk_results",
        "repro.parallel.scheduler.iter_ordered_map",
        "repro.parallel.run_chunks",
    }
    for qualname, entry in project.functions.items():
        if entry.node.name == "chunk_publisher" and entry.owner_class is not None:
            entries[qualname] = qualname
        parent = qualname.rsplit(".", 1)[0] if "." in qualname else ""
        if parent.endswith(".chunk_publisher"):
            entries[qualname] = parent
        if entry.owner_class is not None:
            class_name = entry.owner_class.rsplit(".", 1)[-1]
            if (
                class_name.endswith("Kernel")
                and entry.owner_class not in SANCTIONED_KERNEL_CLASSES
            ):
                entries[qualname] = entry.owner_class
    # Module-level functions handed to a chunk runner by name.
    for qualname, entry in project.functions.items():
        for node in ast.walk(entry.node):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_call_target(entry.module, node)
            if target not in runner_names:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    resolved = entry.module.resolve_name(arg.id)
                    if resolved in project.functions:
                        entries.setdefault(resolved, resolved)
    return entries


@register_rule
class KernelWallClockRule(Rule):
    """No wall-clock or OS-entropy calls reachable from chunk kernels.

    A chunk kernel's output must be a pure function of ``(chunk, rng)`` —
    that is what makes publishes byte-identical at any worker count.  Timing
    belongs to :mod:`repro.obs` spans (the scheduler's traced wrapper times
    worker chunks); entropy belongs to the seeded chunk generator.
    """

    code = "RPR002"
    name = "kernel-wall-clock"
    description = (
        "time/datetime/os.urandom calls must not be reachable from "
        "chunk_publisher kernels or *Kernel classes"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        cache_key = "rpr002"
        if cache_key not in project.cache:
            entries = _kernel_entry_points(project)
            reachable = project.reachable_from(entries)
            roots: dict[str, str] = {}
            for qualname in reachable:
                roots[qualname] = entries.get(qualname, "a chunk kernel")
            project.cache[cache_key] = roots
        roots = project.cache[cache_key]
        for qualname, entry in project.functions.items():
            if entry.module is not module or qualname not in roots:
                continue
            for node in _own_body(entry.node):
                if not isinstance(node, ast.Call):
                    continue
                target = _resolve_call_target(module, node)
                if target in NONDETERMINISTIC_CALLS:
                    root = roots[qualname]
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"{target}() is reachable from chunk kernel {root}; "
                        "kernels must be pure functions of (chunk, rng) — "
                        "timing belongs to repro.obs spans, entropy to the "
                        "seeded chunk generator",
                    )


# --------------------------------------------------------------------- #
# RPR003 — picklability of pool-boundary classes
# --------------------------------------------------------------------- #

def _is_pool_boundary_class(entry: ClassEntry) -> bool:
    name = entry.qualname.rsplit(".", 1)[-1]
    if entry.qualname in SANCTIONED_KERNEL_CLASSES:
        return False
    return name.endswith("Kernel") or entry.module.name == "repro.parallel.kernels"


def _module_level_mutables(module: ModuleInfo) -> set[str]:
    mutables: set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
            value = node.value
        else:
            continue
        if value is None:
            continue
        is_mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in {"dict", "list", "set", "defaultdict", "deque"}
        )
        if is_mutable:
            mutables.update(targets)
    return mutables


def _file_handle_call(module: ModuleInfo, node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    target = _resolve_call_target(module, node)
    if target in {
        "open", "io.open", "gzip.open", "bz2.open", "lzma.open",
        "tempfile.TemporaryFile", "tempfile.NamedTemporaryFile",
    }:
        return True
    return isinstance(node.func, ast.Attribute) and node.func.attr == "open"


@register_rule
class PicklabilityRule(Rule):
    """Pool-boundary kernels must stay picklable by construction.

    Classes shipped across the process-pool boundary (``*Kernel`` classes
    and everything in :mod:`repro.parallel.kernels`) may not capture
    lambdas, locally-defined functions, open file handles, or module-level
    mutable state in ``__init__`` or as class-level defaults — each of those
    either fails ``pickle.dumps`` outright or silently forks shared state
    per worker.
    """

    code = "RPR003"
    name = "kernel-picklability"
    description = (
        "*Kernel classes must not capture lambdas, local functions, open "
        "files, or module-level mutable state"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        mutables = _module_level_mutables(module)
        for entry in project.classes.values():
            if entry.module is not module or not _is_pool_boundary_class(entry):
                continue
            yield from self._check_class_body(module, entry, mutables)
            init = project.functions.get(f"{entry.qualname}.__init__")
            if init is not None:
                yield from self._check_init(module, entry, init, mutables)

    def _check_class_body(
        self, module: ModuleInfo, entry: ClassEntry, mutables: set[str]
    ) -> Iterator[Finding]:
        for stmt in entry.node.body:
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            else:
                continue
            if value is None:
                continue
            if isinstance(value, ast.Lambda):
                yield self.finding(
                    module, value.lineno, value.col_offset,
                    f"{entry.qualname} default captures a lambda; lambdas do "
                    "not pickle across the pool boundary — use a module-level "
                    "function or a dataclass field",
                )
            elif isinstance(value, ast.Name) and value.id in mutables:
                yield self.finding(
                    module, value.lineno, value.col_offset,
                    f"{entry.qualname} default aliases module-level mutable "
                    f"state {value.id!r}; each worker process gets its own "
                    "silently-diverging copy — pass an immutable snapshot in",
                )

    def _check_init(
        self,
        module: ModuleInfo,
        entry: ClassEntry,
        init: FunctionEntry,
        mutables: set[str],
    ) -> Iterator[Finding]:
        local_defs = {
            child.name for child in ast.walk(init.node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not init.node
        }
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign):
                continue
            stores_on_self = any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name) and t.value.id == "self"
                for t in node.targets
            )
            if not stores_on_self:
                continue
            value = node.value
            if isinstance(value, ast.Lambda):
                yield self.finding(
                    module, value.lineno, value.col_offset,
                    f"{entry.qualname}.__init__ captures a lambda on self; "
                    "it will not pickle to worker processes — use a "
                    "module-level function",
                )
            elif isinstance(value, ast.Name) and value.id in local_defs:
                yield self.finding(
                    module, value.lineno, value.col_offset,
                    f"{entry.qualname}.__init__ captures locally-defined "
                    f"function {value.id!r} on self; local functions do not "
                    "pickle — define it at module level",
                )
            elif _file_handle_call(module, value):
                yield self.finding(
                    module, value.lineno, value.col_offset,
                    f"{entry.qualname}.__init__ stores an open file handle on "
                    "self; handles do not pickle — open files lazily in the "
                    "worker instead",
                )
            elif isinstance(value, ast.Name) and value.id in mutables:
                yield self.finding(
                    module, value.lineno, value.col_offset,
                    f"{entry.qualname}.__init__ captures module-level mutable "
                    f"state {value.id!r}; worker copies diverge silently — "
                    "pass an immutable snapshot in",
                )


# --------------------------------------------------------------------- #
# RPR004 — span-derived timing accounting
# --------------------------------------------------------------------- #

def _writes_timings(node: ast.AST) -> bool:
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                value = target.value
                if isinstance(value, ast.Name) and value.id == "timings":
                    return True
                if isinstance(value, ast.Attribute) and value.attr == "timings":
                    return True
    return False


@register_rule
class SpanAccountingRule(Rule):
    """Stage timings are span-derived, never raw ``perf_counter`` deltas.

    A function that writes a ``timings[...]`` key must obtain its durations
    from :func:`repro.obs.trace.span` (``.duration`` / ``.elapsed()``) so
    that report timings and traces can never disagree.  Any direct raw-timer
    call in such a function is flagged.
    """

    code = "RPR004"
    name = "span-accounting"
    description = (
        "functions writing timings[...] keys must derive them from "
        "repro.obs spans, not raw perf_counter calls"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for qualname, entry in project.functions.items():
            if entry.module is not module:
                continue
            if not any(_writes_timings(node) for node in _own_body(entry.node)):
                continue
            for node in _own_body(entry.node):
                if not isinstance(node, ast.Call):
                    continue
                target = _resolve_call_target(module, node)
                if target in RAW_TIMER_CALLS:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"{qualname} writes timings[...] but calls {target}() "
                        "directly; derive stage durations from "
                        "repro.obs.trace.span (.duration / .elapsed()) so "
                        "reports and traces cannot disagree",
                    )


# --------------------------------------------------------------------- #
# RPR005 — strategy registry hygiene
# --------------------------------------------------------------------- #

def _is_paramspec_expr(module: ModuleInfo, node: ast.expr, depth: int = 0) -> bool:
    """Whether an expression statically reads as a tuple of ParamSpec decls."""
    if depth > 8:
        return False
    if isinstance(node, ast.Tuple):
        return all(_is_paramspec_expr(module, elt, depth + 1) for elt in node.elts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return (
            _is_paramspec_expr(module, node.left, depth + 1)
            and _is_paramspec_expr(module, node.right, depth + 1)
        )
    if isinstance(node, ast.Call):
        target = _resolve_call_target(module, node)
        if target is None:
            return False
        parts = target.split(".")
        return "ParamSpec" in parts
    if isinstance(node, ast.Name):
        assigned = module.top_level.get(node.id)
        if isinstance(assigned, ast.Assign):
            return _is_paramspec_expr(module, assigned.value, depth + 1)
        if isinstance(assigned, ast.AnnAssign) and assigned.value is not None:
            return _is_paramspec_expr(module, assigned.value, depth + 1)
        return False
    if isinstance(node, ast.Starred):
        return _is_paramspec_expr(module, node.value, depth + 1)
    return False


def _class_body_assignment(entry: ClassEntry, name: str) -> ast.expr | None:
    for stmt in entry.node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == name for t in stmt.targets):
                return stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                return stmt.value
    return None


def _is_strategy_class(project: Project, entry: ClassEntry) -> bool:
    return any(
        ancestor.qualname.rsplit(".", 1)[-1] == "PublishStrategy"
        for ancestor in project.class_mro(entry.qualname)
    )


@register_rule
class RegistryHygieneRule(Rule):
    """Every concrete strategy declares typed params and a streaming stance.

    Concrete :class:`~repro.pipeline.strategy.PublishStrategy` subclasses
    must declare ``params`` as a tuple of typed ``ParamSpec`` objects and
    either override ``chunk_publisher`` (the group-batch kernel), declare
    ``streams_rows = True`` (the row-stream path), or explicitly opt out of
    streaming with ``streamable = False`` — silence is how a strategy ends
    up half-wired into the streaming engine.
    """

    code = "RPR005"
    name = "registry-hygiene"
    description = (
        "PublishStrategy subclasses need ParamSpec-typed params and an "
        "explicit chunk_publisher / streams_rows / streamable stance"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for entry in project.classes.values():
            if entry.module is not module:
                continue
            name = entry.qualname.rsplit(".", 1)[-1]
            if name == "PublishStrategy" or name.startswith("_"):
                continue
            if not _is_strategy_class(project, entry):
                continue
            yield from self._check_params(module, project, entry)
            yield from self._check_streaming_stance(module, project, entry)

    def _check_params(
        self, module: ModuleInfo, project: Project, entry: ClassEntry
    ) -> Iterator[Finding]:
        for ancestor in project.class_mro(entry.qualname):
            value = _class_body_assignment(ancestor, "params")
            if value is None:
                continue
            if isinstance(value, ast.Tuple) and not value.elts:
                return  # explicit "no parameters" is a valid declaration
            if not _is_paramspec_expr(ancestor.module, value):
                yield self.finding(
                    module, entry.node.lineno, entry.node.col_offset,
                    f"{entry.qualname}.params must be a tuple of typed "
                    "ParamSpec declarations (ParamSpec.floating / .integer / "
                    "...), so the registry can validate and document them",
                )
            return
        yield self.finding(
            module, entry.node.lineno, entry.node.col_offset,
            f"{entry.qualname} declares no params tuple anywhere in its "
            "resolvable bases; declare params = () explicitly if the "
            "strategy truly has no knobs",
        )

    def _check_streaming_stance(
        self, module: ModuleInfo, project: Project, entry: ClassEntry
    ) -> Iterator[Finding]:
        for ancestor in project.class_mro(entry.qualname):
            is_base = ancestor.qualname.rsplit(".", 1)[-1] == "PublishStrategy"
            if not is_base and f"{ancestor.qualname}.chunk_publisher" in project.functions:
                return
            for attr in ("streams_rows", "streamable"):
                value = _class_body_assignment(ancestor, attr)
                if value is None:
                    continue
                if attr == "streams_rows" and _is_true(value):
                    return
                if attr == "streamable" and _is_false(value):
                    return
        yield self.finding(
            module, entry.node.lineno, entry.node.col_offset,
            f"{entry.qualname} takes no streaming stance: override "
            "chunk_publisher (group-batch kernel), declare "
            "streams_rows = True (row-stream path), or opt out explicitly "
            "with streamable = False",
        )


def _is_true(node: ast.expr | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


def _is_false(node: ast.expr | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is False


# --------------------------------------------------------------------- #
# RPR006 — side-effect-free imports
# --------------------------------------------------------------------- #

def _import_time_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Statements that execute at import time.

    Recurses into ``if``/``try``/``for``/``while``/``with`` blocks *and*
    class bodies (both run on import) but skips ``if __name__ ==
    "__main__":`` bodies (those run as a script, not on import) and
    function bodies (defining a function executes nothing).
    """
    def walk(stmts: Iterable[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in stmts:
            if isinstance(stmt, ast.If) and _is_main_guard(stmt.test):
                yield from walk(stmt.orelse)
                continue
            yield stmt
            if isinstance(stmt, (ast.If, ast.While)):
                yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.For):
                yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                yield from walk(stmt.body)
                yield from walk(stmt.orelse)
                yield from walk(stmt.finalbody)
                for handler in stmt.handlers:
                    yield from walk(handler.body)
            elif isinstance(stmt, ast.With):
                yield from walk(stmt.body)
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body)

    yield from walk(tree.body)


def _import_time_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Call expressions in ``stmt`` that actually run at import time.

    Function and lambda *bodies* are pruned (they only run when called);
    their decorators, default values and annotations do execute, so those
    subtrees stay in scope.  Class and function statements reached via
    recursion are handled by :func:`_import_time_statements`, so their
    bodies are skipped here to avoid double-reporting.
    """
    roots: list[ast.AST] = []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        roots.extend(stmt.decorator_list)
        roots.extend(stmt.args.defaults)
        roots.extend(d for d in stmt.args.kw_defaults if d is not None)
    elif isinstance(stmt, ast.ClassDef):
        roots.extend(stmt.decorator_list)
        roots.extend(stmt.bases)
        roots.extend(kw.value for kw in stmt.keywords)
    elif isinstance(stmt, (ast.If, ast.While)):
        # Bodies are yielded as separate statements; scan the test only.
        roots.append(stmt.test)
    elif isinstance(stmt, ast.For):
        roots.append(stmt.iter)
    elif isinstance(stmt, ast.With):
        roots.extend(item.context_expr for item in stmt.items)
    elif isinstance(stmt, ast.Try):
        roots.extend(h.type for h in stmt.handlers if h.type is not None)
    else:
        roots.append(stmt)

    stack: list[ast.AST] = roots
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested definition bodies: not import-time execution
        if isinstance(node, ast.Lambda):
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_main_guard(test: ast.expr) -> bool:
    return (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == "__name__"
    )


@register_rule
class ImportSideEffectRule(Rule):
    """Importing a ``repro.*`` module must not run work or touch the world.

    At import time a module may define names and register its own objects in
    a process-local registry (:data:`SANCTIONED_IMPORT_CALLS`), nothing
    else: no discarded calls, no I/O, no environment mutation.  Side-effect
    imports make behaviour depend on import order — the opposite of a
    deterministic pipeline.
    """

    code = "RPR006"
    name = "import-side-effects"
    description = (
        "no I/O or unsanctioned calls at module import time (registry "
        "registration of the module's own objects is the one exception)"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if not _in_repro(module):
            return
        for stmt in _import_time_statements(module.tree):
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                target = _resolve_call_target(module, stmt.value)
                last = (target or "").rsplit(".", 1)[-1]
                if last in SANCTIONED_IMPORT_CALLS:
                    continue
                shown = target or "a call"
                yield self.finding(
                    module, stmt.lineno, stmt.col_offset,
                    f"import-time statement discards the result of {shown}; "
                    "imports must only define names (sanctioned: registering "
                    "the module's own objects via register_*)",
                )
                continue
            if isinstance(stmt, ast.Assign):
                for target_node in stmt.targets:
                    if _is_environ_store(module, target_node):
                        yield self.finding(
                            module, stmt.lineno, stmt.col_offset,
                            "import-time write to os.environ; configuration "
                            "belongs to the CLIs, not to import side effects",
                        )
            for node in _import_time_calls(stmt):
                target = _resolve_call_target(module, node)
                is_io = target in IMPORT_IO_CALLS or (
                    target is None
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in IMPORT_IO_ATTRS
                )
                if is_io:
                    shown = target or f"*.{node.func.attr}"  # type: ignore[union-attr]
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"import-time I/O via {shown}(); do the work "
                        "lazily inside a function instead",
                    )


def _is_environ_store(module: ModuleInfo, target: ast.expr) -> bool:
    if not isinstance(target, ast.Subscript):
        return False
    resolved = module.resolve_attribute(target.value)
    return resolved == "os.environ"


@register_rule
class DeltaDeterminismRule(Rule):
    """RPR007: the delta engine must never rebuild a full-table group index.

    The whole point of :mod:`repro.delta` is that an append costs work
    proportional to the appended rows and the dirty chunks — the stored
    value-keyed group counts replace a re-read of the base.  Calling
    :func:`repro.dataset.groups.personal_groups` (or constructing a
    :class:`~repro.dataset.groups.GroupIndex`) inside a delta-engine module
    reintroduces the full-table pass the subsystem exists to avoid, and
    worse, does so silently: the output bytes stay identical, so only the
    wall-clock betrays the regression.  Merge appended counts into the
    stored state and feed an :class:`~repro.stream.index.IncrementalGroupIndex`
    the *appended rows only*.
    """

    code = "RPR007"
    name = "delta-determinism"
    description = (
        "delta-engine modules must not rebuild a group index over the full "
        "table (personal_groups/GroupIndex); index appended rows only and "
        "merge into the stored per-group counts"
    )

    _FORBIDDEN = frozenset({"personal_groups", "GroupIndex"})

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if module.name != "repro.delta" and not module.name.startswith("repro.delta."):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_call_target(module, node)
            last = (target or "").rsplit(".", 1)[-1]
            if last in self._FORBIDDEN:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"delta engine calls {last}(), a full-table group-index "
                    "rebuild; merge appended counts into the stored state "
                    "via IncrementalGroupIndex over the appended rows only",
                )


# --------------------------------------------------------------------- #
# RPR008 — storage goes through a connector
# --------------------------------------------------------------------- #


@register_rule
class SnapshotBypassRule(Rule):
    """RPR008: service state persists through a StorageConnector, nothing else.

    ``save_snapshot``/``load_snapshot`` are the pre-connector persistence
    entry points, kept in :mod:`repro.store.legacy` only for backwards
    compatibility.  Calling them anywhere else reintroduces the
    save-at-shutdown model the store was built to replace: state written
    that way has no versioning, no counters and no crash-safety between
    saves, so a ``kill -9`` silently loses everything since the last call.
    Open a connector (:func:`repro.store.open_store`) and write through it
    instead.
    """

    code = "RPR008"
    name = "snapshot-bypass"
    description = (
        "save_snapshot/load_snapshot are legacy compat shims; persist "
        "through a repro.store connector (open_store) instead"
    )

    _FORBIDDEN = frozenset({"save_snapshot", "load_snapshot"})
    _ALLOWED_MODULE = "repro.store.legacy"

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if not module.name.startswith("repro"):
            return
        if module.name == self._ALLOWED_MODULE:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_call_target(module, node)
            last = (target or "").rsplit(".", 1)[-1]
            if last in self._FORBIDDEN:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"{last}() bypasses the storage connector; every "
                    "mutation must persist write-through via "
                    "repro.store.open_store (the legacy shims live in "
                    "repro.store.legacy for compatibility only)",
                )
