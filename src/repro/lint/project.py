"""The analyzer's model of the code under analysis.

A :class:`Project` parses every file once and builds the cross-module tables
the rules share: per-module import maps (local name → fully-qualified dotted
name), a symbol table of every function/method and class (keyed by qualified
name), and an on-demand call graph with *name-based* resolution.

Resolution is deliberately static and conservative: a call is resolved only
when its target can be read off the AST (a local ``def``, an imported name,
an attribute walk rooted at an imported module, or ``self.method`` inside a
class).  Dynamic dispatch that cannot be resolved is simply not followed —
the rules that consume the graph (e.g. the kernel wall-clock ban) document
that limit in :mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path


def module_name_for(path: Path) -> str:
    """Derive a dotted module name from a file path.

    Files under a ``repro`` package directory get their real dotted name
    (``.../src/repro/stream/engine.py`` → ``repro.stream.engine``); anything
    else is named by its path stem so fixture files still participate in the
    symbol table.
    """
    parts = list(path.parts)
    stem = path.stem
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        dotted = [*parts[anchor:-1], stem]
        if stem == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)
    return stem


@dataclass
class FunctionEntry:
    """One function or method definition, keyed by its qualified name."""

    qualname: str
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Qualified name of the enclosing class, if this is a method.
    owner_class: str | None = None


@dataclass
class ClassEntry:
    """One class definition plus its statically-resolved base names."""

    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    #: Fully-qualified base names where resolvable, raw names otherwise.
    bases: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """One parsed source file and its local name bindings."""

    path: Path
    name: str
    source: str
    tree: ast.Module
    #: Local binding → fully qualified dotted name.  ``import numpy as np``
    #: yields ``np → numpy``; ``from time import perf_counter`` yields
    #: ``perf_counter → time.perf_counter``.
    imports: dict[str, str] = field(default_factory=dict)
    #: Names defined at module top level (functions, classes, assignments).
    top_level: dict[str, ast.stmt] = field(default_factory=dict)

    def resolve_name(self, name: str) -> str:
        """Fully qualify a bare name: import binding, local def, or itself."""
        if name in self.imports:
            return self.imports[name]
        if name in self.top_level:
            return f"{self.name}.{name}"
        return name

    def resolve_attribute(self, node: ast.expr) -> str | None:
        """Resolve an expression to a dotted name where statically possible.

        ``np.random.default_rng`` (with ``import numpy as np``) resolves to
        ``numpy.random.default_rng``; unresolvable shapes return ``None``.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(self.resolve_name(current.id))
            return ".".join(reversed(parts))
        return None


def _collect_imports(tree: ast.Module, module_name: str) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a``; resolve ``a`` to ``a``.
                    imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: climb from the module's own package.
                package = module_name.split(".")
                package = package[: len(package) - node.level]
                base = ".".join([*package, base]) if base else ".".join(package)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{base}.{alias.name}" if base else alias.name
    return imports


class Project:
    """Every analyzed module plus the cross-module symbol tables."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionEntry] = {}
        self.classes: dict[str, ClassEntry] = {}
        #: Files that failed to parse: ``(path, message, line)``.
        self.parse_errors: list[tuple[Path, str, int]] = []
        #: Scratch space for rules that build whole-project views once
        #: (e.g. the kernel reachability map), keyed by rule code.
        self.cache: dict[str, object] = {}
        self._callees_cache: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_paths(cls, paths: Sequence[Path | str]) -> "Project":
        """Parse every ``.py`` file under ``paths`` (files or directories)."""
        project = cls()
        for path in _iter_python_files(paths):
            project.add_file(path)
        return project

    def add_file(self, path: Path) -> None:
        """Parse and index one source file."""
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.parse_errors.append((path, exc.msg or "syntax error", exc.lineno or 1))
            return
        name = module_name_for(path)
        info = ModuleInfo(path=path, name=name, source=source, tree=tree)
        info.imports = _collect_imports(tree, name)
        for node in tree.body:
            for bound in _bound_names(node):
                info.top_level[bound] = node
        self.modules[name] = info
        self._index_definitions(info)

    def _index_definitions(self, info: ModuleInfo) -> None:
        def visit(node: ast.AST, prefix: str, owner_class: str | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{child.name}"
                    self.functions[qualname] = FunctionEntry(
                        qualname=qualname, module=info, node=child,
                        owner_class=owner_class,
                    )
                    visit(child, qualname, owner_class)
                elif isinstance(child, ast.ClassDef):
                    qualname = f"{prefix}.{child.name}"
                    bases = tuple(
                        info.resolve_attribute(base) or ast.dump(base)
                        for base in child.bases
                    )
                    self.classes[qualname] = ClassEntry(
                        qualname=qualname, module=info, node=child, bases=bases,
                    )
                    visit(child, qualname, qualname)

        visit(info.tree, info.name, None)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[ModuleInfo]:
        return iter(self.modules.values())

    def class_mro(self, qualname: str) -> list[ClassEntry]:
        """The class plus its statically-resolved ancestors, nearest first."""
        seen: set[str] = set()
        order: list[ClassEntry] = []
        stack = [qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            entry = self.classes.get(current)
            if entry is None:
                continue
            order.append(entry)
            stack.extend(entry.bases)
        return order

    def resolve_call(self, call: ast.Call, entry: FunctionEntry) -> str | None:
        """Resolve a call inside ``entry`` to a qualified name, if possible."""
        func = call.func
        module = entry.module
        if isinstance(func, ast.Name):
            # Nearest enclosing nested def wins over module scope.
            scope = entry.qualname
            while "." in scope:
                candidate = f"{scope}.{func.id}"
                if candidate in self.functions:
                    return candidate
                scope = scope.rsplit(".", 1)[0]
            return module.resolve_name(func.id)
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                if entry.owner_class is not None:
                    for ancestor in self.class_mro(entry.owner_class):
                        candidate = f"{ancestor.qualname}.{func.attr}"
                        if candidate in self.functions:
                            return candidate
                    return f"{entry.owner_class}.{func.attr}"
                return None
            return module.resolve_attribute(func)
        return None

    def callees(self, qualname: str) -> frozenset[str]:
        """Qualified names of every call statically visible in a function."""
        cached = self._callees_cache.get(qualname)
        if cached is not None:
            return cached
        entry = self.functions.get(qualname)
        if entry is None:
            self._callees_cache[qualname] = frozenset()
            return frozenset()
        names: set[str] = set()
        for node in ast.walk(entry.node):
            if isinstance(node, ast.Call):
                resolved = self.resolve_call(node, entry)
                if resolved is not None:
                    names.add(resolved)
        result = frozenset(names)
        self._callees_cache[qualname] = result
        return result

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Project functions transitively reachable from ``roots`` (inclusive)."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for callee in self.callees(current):
                if callee in self.functions and callee not in seen:
                    stack.append(callee)
        return seen


def _bound_names(node: ast.stmt) -> Iterator[str]:
    """Names a top-level statement binds in module scope."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield node.name
    elif isinstance(node, ast.Assign):
        for target in node.targets:
            yield from _target_names(target)
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        yield node.target.id
    elif isinstance(node, (ast.If, ast.Try)):
        bodies = [node.body, node.orelse]
        if isinstance(node, ast.Try):
            bodies.append(node.finalbody)
            for handler in node.handlers:
                bodies.append(handler.body)
        for body in bodies:
            for stmt in body:
                yield from _bound_names(stmt)


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
