"""The rule engine: registry, suppression handling and the lint run driver.

Rules are singletons registered by code (``RPR001``…); :func:`run_lint`
parses the target paths into a :class:`~repro.lint.project.Project`, runs
every selected rule over every module, then applies the per-line
``# repro-lint: ignore[RPRxxx]`` suppressions — reporting any suppression
that suppressed nothing (:data:`~repro.lint.findings.UNUSED_SUPPRESSION_CODE`)
or failed to parse (:data:`~repro.lint.findings.MALFORMED_SUPPRESSION_CODE`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import (
    MALFORMED_SUPPRESSION_CODE,
    PARSE_ERROR_CODE,
    UNUSED_SUPPRESSION_CODE,
    Finding,
    Severity,
    parse_suppressions,
)
from repro.lint.project import ModuleInfo, Project


class Rule(ABC):
    """One contract check, identified by a stable ``RPRnnn`` code."""

    #: Stable rule code (``RPR001``…); suppression comments name this.
    code: str
    #: Short kebab-case rule name (shown in listings and JSON output).
    name: str
    #: Default severity of the rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line description for ``repro-lint --list-rules`` and the docs.
    description: str = ""

    @abstractmethod
    def check(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        """Yield findings for one module (the project gives cross-module views)."""

    def finding(self, module: ModuleInfo, line: int, col: int, message: str) -> Finding:
        """Build a finding of this rule at ``line:col`` of ``module``."""
        return Finding(
            path=str(module.path),
            line=line,
            col=col,
            code=self.code,
            severity=self.severity,
            rule=self.name,
            message=message,
        )


#: Every registered rule, keyed by code, in registration order.
RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule under its code."""
    rule = cls()
    if not getattr(rule, "code", ""):
        raise ValueError(f"rule {cls.__name__} must declare a code")
    if rule.code in RULES:
        raise ValueError(f"rule code {rule.code!r} is already registered")
    RULES[rule.code] = rule
    return cls


@dataclass
class LintResult:
    """Outcome of one lint run: surviving findings plus run statistics."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    def exit_code(self, warn_only: bool = False) -> int:
        """``0`` clean (or warn-only), ``1`` when any error survived."""
        if warn_only:
            return 0
        return 1 if self.errors else 0


def _select_rules(select: Sequence[str] | None) -> list[Rule]:
    if select is None:
        return list(RULES.values())
    unknown = [code for code in select if code not in RULES]
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {unknown!r}; known: {sorted(RULES)}"
        )
    return [RULES[code] for code in select]


def run_lint(
    paths: Sequence[Path | str],
    select: Sequence[str] | None = None,
) -> LintResult:
    """Run the selected rules (default: all) over every ``.py`` under ``paths``."""
    # Import for the registration side effect — the one sanctioned lazy
    # registry mutation of this package (mirrors the strategy registry).
    from repro.lint import rules as _rules  # noqa: F401

    project = Project.from_paths(paths)
    active = _select_rules(select)
    result = LintResult(files_checked=len(project.modules) + len(project.parse_errors))

    raw: list[Finding] = []
    for path, message, line in project.parse_errors:
        raw.append(
            Finding(
                path=str(path), line=line, col=0,
                code=PARSE_ERROR_CODE, severity=Severity.ERROR,
                rule="parse-error", message=f"file does not parse: {message}",
            )
        )
    for module in project:
        for rule in active:
            raw.extend(rule.check(module, project))

    result.findings = _apply_suppressions(raw, project)
    result.suppressed = len(raw) - sum(
        1 for f in result.findings if f.code not in
        (UNUSED_SUPPRESSION_CODE, MALFORMED_SUPPRESSION_CODE)
    )
    result.findings.sort()
    return result


def _apply_suppressions(raw: list[Finding], project: Project) -> list[Finding]:
    """Drop findings covered by a suppression; report unused/malformed ones."""
    kept: list[Finding] = []
    by_path: dict[str, list[Finding]] = {}
    for finding in raw:
        by_path.setdefault(finding.path, []).append(finding)

    handled_paths: set[str] = set()
    for module in project:
        path = str(module.path)
        handled_paths.add(path)
        suppressions, malformed = parse_suppressions(module.source)
        for line, reason in malformed:
            kept.append(
                Finding(
                    path=path, line=line, col=0,
                    code=MALFORMED_SUPPRESSION_CODE, severity=Severity.WARNING,
                    rule="malformed-suppression", message=reason,
                )
            )
        findings_here = by_path.get(path, [])
        suppressed_ids: set[int] = set()
        for suppression in suppressions:
            matched = False
            for finding in findings_here:
                if finding.line == suppression.line and finding.code in suppression.codes:
                    suppressed_ids.add(id(finding))
                    matched = True
            if not matched:
                kept.append(
                    Finding(
                        path=path, line=suppression.line, col=0,
                        code=UNUSED_SUPPRESSION_CODE, severity=Severity.WARNING,
                        rule="unused-suppression",
                        message=(
                            "suppression matches no finding on this line "
                            f"(codes {', '.join(suppression.codes)}); remove it"
                        ),
                    )
                )
        kept.extend(f for f in findings_here if id(f) not in suppressed_ids)

    # Findings in files the project failed to parse (no suppression scan).
    for path, findings_here in by_path.items():
        if path not in handled_paths:
            kept.extend(findings_here)
    return kept
