"""The unified result of one publishing run.

:class:`PublishReport` subsumes the legacy ``PublishResult`` (library) and
``BackendResult`` (service) bundles: whichever entry point ran the pipeline,
the caller gets the published table together with the audit, the per-group
SPS bookkeeping, the generalisation decisions, per-stage wall-clock timings
and the strategy's own metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.criterion import PrivacySpec
from repro.core.sps import GroupPublication, SPSResult
from repro.core.testing import PrivacyAudit
from repro.dataset.table import Table
from repro.generalization.merging import GeneralizationResult


@dataclass(frozen=True)
class PublishReport:
    """Everything one run of a :class:`~repro.pipeline.PublishPipeline` produced.

    Attributes
    ----------
    strategy:
        Name of the strategy that published the data.
    params:
        The resolved (typed, validated, defaults-filled) parameters.
    seed:
        The integer root seed all chunk generators were derived from.
    published:
        The published table handed to the analyst.
    prepared:
        The table the strategy actually enforced on (the generalised table
        when the generalize stage ran, otherwise the input table).
    spec:
        The ``(lambda, delta, p, m)`` privacy spec, when the strategy has one
        (the DP strategies do not).
    generalization:
        The chi-square merge decisions, when the generalize stage ran.
    audit:
        The pre-publication audit of ``prepared``, when the audit stage ran.
    groups:
        Per-group SPS bookkeeping records (empty for non-SPS strategies).
    metadata:
        Strategy-specific extras (mechanism scales, sampling stats, merged
        domain sizes, ...).
    timings:
        Wall-clock seconds per pipeline stage.
    group_index_cached:
        Whether the personal-group index was supplied pre-built (e.g. from
        the service's dataset cache) instead of built by this run.
    """

    strategy: str
    params: dict[str, Any]
    seed: int
    published: Table
    prepared: Table
    spec: PrivacySpec | None = None
    generalization: GeneralizationResult | None = None
    audit: PrivacyAudit | None = None
    groups: tuple[GroupPublication, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    group_index_cached: bool = False

    @property
    def n_sampled_groups(self) -> int:
        """How many groups SPS actually sampled (``|g| > s_g``)."""
        return sum(1 for g in self.groups if g.sampled)

    @property
    def sampled_fraction(self) -> float:
        """Fraction of groups that needed sampling."""
        if not self.groups:
            return 0.0
        return self.n_sampled_groups / len(self.groups)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across all recorded stages."""
        return float(sum(self.timings.values()))

    @property
    def sps(self) -> SPSResult:
        """The run repackaged as a legacy :class:`~repro.core.sps.SPSResult`.

        Only meaningful for SPS-family strategies (those with a spec and
        per-group records).
        """
        if self.spec is None:
            raise ValueError(
                f"strategy {self.strategy!r} has no privacy spec; "
                "there is no SPS view of this report"
            )
        return SPSResult(published=self.published, groups=self.groups, spec=self.spec)

    def summary(self) -> dict[str, Any]:
        """A compact JSON-compatible digest (for logs and service responses)."""
        data: dict[str, Any] = {
            "strategy": self.strategy,
            "params": dict(self.params),
            "seed": self.seed,
            "published_records": len(self.published),
            "timings": dict(self.timings),
            "group_index_cached": self.group_index_cached,
            "metadata": dict(self.metadata),
        }
        if self.audit is not None:
            data["audit"] = {
                "n_groups": self.audit.n_groups,
                "n_violating_groups": len(self.audit.violating_groups),
                "group_violation_rate": float(self.audit.group_violation_rate),
                "record_violation_rate": float(self.audit.record_violation_rate),
                "is_private": self.audit.is_private,
            }
        if self.groups:
            data["n_sampled_groups"] = self.n_sampled_groups
            data["sampled_fraction"] = self.sampled_fraction
        return data
