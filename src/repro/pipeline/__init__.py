"""repro.pipeline — the strategy-first publishing API.

One composable pipeline (prepare → generalize → audit → enforce → report)
behind one registry of named strategies, shared by the library
(:func:`repro.publish`), the service backends, the CLI/HTTP front ends and
the experiment harness.  Registering a :class:`PublishStrategy` once makes it
available everywhere.
"""

from repro.pipeline.execution import (
    DEFAULT_CHUNK_SIZE,
    ChunkRunner,
    chunk_items,
    chunk_rngs,
    coerce_seed,
    run_chunks_serial,
)
from repro.pipeline.params import KINDS, ParamError, ParamSpec, resolve_params
from repro.pipeline.pipeline import PublishPipeline, publish
from repro.pipeline.report import PublishReport
from repro.pipeline.strategy import (
    DPGaussianStrategy,
    DPLaplaceStrategy,
    GeneralizeSPSStrategy,
    PublishStrategy,
    SPSStrategy,
    StrategyOutcome,
    UniformStrategy,
    UnknownStrategyError,
    available_strategies,
    get_strategy,
    register_strategy,
    strategy_descriptions,
    unregister_strategy,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ChunkRunner",
    "DPGaussianStrategy",
    "DPLaplaceStrategy",
    "GeneralizeSPSStrategy",
    "KINDS",
    "ParamError",
    "ParamSpec",
    "PublishPipeline",
    "PublishReport",
    "PublishStrategy",
    "SPSStrategy",
    "StrategyOutcome",
    "UniformStrategy",
    "UnknownStrategyError",
    "available_strategies",
    "chunk_items",
    "chunk_rngs",
    "coerce_seed",
    "get_strategy",
    "publish",
    "register_strategy",
    "resolve_params",
    "run_chunks_serial",
    "strategy_descriptions",
    "unregister_strategy",
]
